//! The farm service: admission, fair-share scheduling, eviction, rotation.
//!
//! [`Farm`] multiplexes many tenant sessions over a shared [`BoardPool`].
//! The paper's GRAPE clusters were operated exactly this way — a handful
//! of host+board units shared by a department of simulators — and the
//! operational problems are the classic ones:
//!
//! * **admission control** — a multiprogramming ceiling plus a bounded
//!   per-tenant submission queue; everything beyond is rejected with a
//!   typed [`FarmError`] the client can act on (backpressure);
//! * **fair sharing** — a deficit weighted-round-robin scheduler grants
//!   work quanta (blocksteps) to tenants in proportion to their weight;
//! * **eviction** — when sessions outnumber boards, the least-recently
//!   granted resident session is checkpointed and parked; resuming is a
//!   bitwise-exact [`restore_migrate`] onto whatever board is free next;
//! * **board rotation** — a board that fails the known-answer self-test
//!   at activation, or on which a session's recovery ladder is
//!   exhausted, is retired from the pool; its session resumes elsewhere
//!   from its last checkpoint.
//!
//! Because checkpoints are bitwise-exact and §3.4 block-FP summation
//! makes masking and j-redistribution invisible in the force bits, a
//! tenant's final particle state is **bitwise identical** to a dedicated
//! single-tenant run — no matter how often it was evicted, migrated, or
//! replayed past a board failure.  `tests/farm_bitwise.rs` and the
//! `farm_soak` bench binary assert exactly that.
//!
//! Everything is driven in *virtual* time with seeded randomness (the
//! retry backoff jitter comes from the fault subsystem's deterministic
//! [`mix`]), so a farm run is reproducible bit for bit.

use std::collections::{BTreeMap, VecDeque};

use grape6_core::{
    restore_migrate, CheckpointPolicy, Grape6Engine, HermiteIntegrator, IntegratorConfig,
    RunSupervisor, SupervisorConfig,
};
use grape6_fault::rng::mix;
use grape6_fault::FaultPlan;
use grape6_model::calib::{GrapeTiming, HostProfile};
use grape6_system::machine::MachineConfig;
use grape6_trace::{HostRates, MeasuredBlockTime, Phase, Span, Tracer};
use nbody_core::force::{EngineError, ForceEngine};

use crate::error::FarmError;
use crate::pool::BoardPool;
use crate::session::{Job, Session, SessionId, SessionOutcome, SessionState, TenantId};
use crate::stats::{FarmReport, TenantReport};

/// Everything a farm needs to be built.  `new(board_machine)` gives
/// usable defaults; override fields before constructing the [`Farm`].
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Geometry of one pool unit (typically a single board).
    pub board_machine: MachineConfig,
    /// Units in the pool.
    pub boards: usize,
    /// Fault plans for the first units (rest are healthy).
    pub board_plans: Vec<Option<FaultPlan>>,
    /// Per-tenant bound on concurrently live sessions (backpressure).
    pub queue_depth: usize,
    /// Farm-wide multiprogramming ceiling (admission control).
    pub max_live_sessions: usize,
    /// Blocksteps per scheduler grant.
    pub quantum: u64,
    /// Supervisor checkpoint cadence (blocksteps).
    pub ckpt_every: u64,
    /// Kill a session after this many grants (`None` = no deadline).
    pub deadline_grants: Option<u64>,
    /// Supervisor step failures retried (with backoff) per grant before
    /// the board is rotated out.
    pub max_grant_retries: u32,
    /// First retry backoff, virtual seconds (doubles per attempt).
    pub backoff_base: f64,
    /// Deterministic jitter added to each backoff, in permille of the
    /// exponential term.
    pub backoff_jitter_permille: u64,
    /// Integrator accuracy/scheduling parameters for every session.
    pub icfg: IntegratorConfig,
    /// Timing model charging checkpoints, reloads and self-tests.
    pub timing: GrapeTiming,
    /// Host profile for the per-tenant measured breakdown.
    pub host: HostProfile,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Record per-tenant spans (the six-term breakdown needs this).
    pub trace: bool,
}

impl FarmConfig {
    /// Defaults around one board geometry: 2 boards, queue depth 4,
    /// ceiling 8 sessions, 8-blockstep quanta and checkpoints, 2 retries.
    pub fn new(board_machine: MachineConfig) -> Self {
        Self {
            board_machine,
            boards: 2,
            board_plans: Vec::new(),
            queue_depth: 4,
            max_live_sessions: 8,
            quantum: 8,
            ckpt_every: 8,
            deadline_grants: None,
            max_grant_retries: 2,
            backoff_base: 1e-3,
            backoff_jitter_permille: 250,
            icfg: IntegratorConfig::default(),
            timing: GrapeTiming::paper_host(),
            host: HostProfile::athlon_xp_1800(),
            seed: 0,
            trace: true,
        }
    }
}

/// Scheduler-side tenant bookkeeping.
struct Tenant {
    weight: u32,
    /// Deficit-WRR credit (grants owed this round).
    credit: u32,
    /// Round-robin rotation of this tenant's live sessions.
    rotation: VecDeque<SessionId>,
    /// Next per-tenant session index.
    next_index: u32,
}

/// How one grant ended.
enum GrantEnd {
    /// Reached `t_end`.
    Finished,
    /// Quantum used up; session stays resident.
    Quantum,
    /// Retries exhausted: the board is suspect.
    BoardFault(String),
}

/// Why a session could not be activated on a particular board.
enum ActivationError {
    /// The board is at fault (self-test capacity loss, hardware fault):
    /// retire it and try the next one.
    BoardUnusable(String),
    /// The session itself is broken; no board will help.
    SessionBroken(String),
}

fn classify_engine_error(e: &EngineError) -> ActivationError {
    match e {
        EngineError::InsufficientCapacity { .. } | EngineError::HardwareFault { .. } => {
            ActivationError::BoardUnusable(e.to_string())
        }
        other => ActivationError::SessionBroken(other.to_string()),
    }
}

/// The multi-tenant farm service.  See the module docs for the model.
pub struct Farm {
    cfg: FarmConfig,
    pool: BoardPool,
    tenants: BTreeMap<TenantId, Tenant>,
    sessions: BTreeMap<SessionId, Session>,
    report: FarmReport,
    /// Global grant sequence (LRU eviction key).
    grant_seq: u64,
    next_tenant: TenantId,
    /// Tenant-tagged span log (`Span::track` = tenant id).
    spans: Vec<Span>,
}

impl Farm {
    /// Build a farm.  Fails with [`FarmError::BadConfig`] on unusable
    /// parameters (zero boards, zero quantum, zero queue depth…).
    pub fn new(cfg: FarmConfig) -> Result<Self, FarmError> {
        for (what, bad) in [
            ("boards", cfg.boards == 0),
            ("quantum", cfg.quantum == 0),
            ("ckpt_every", cfg.ckpt_every == 0),
            ("queue_depth", cfg.queue_depth == 0),
            ("max_live_sessions", cfg.max_live_sessions == 0),
        ] {
            if bad {
                return Err(FarmError::BadConfig {
                    reason: format!("{what} must be nonzero"),
                });
            }
        }
        let pool = BoardPool::new(cfg.board_machine, cfg.boards, cfg.board_plans.clone());
        Ok(Self {
            cfg,
            pool,
            tenants: BTreeMap::new(),
            sessions: BTreeMap::new(),
            report: FarmReport::default(),
            grant_seq: 0,
            next_tenant: 0,
            spans: Vec::new(),
        })
    }

    /// Register a tenant with a scheduler weight (`0` is clamped to 1).
    /// Returns the id used in [`submit`](Self::submit).
    pub fn add_tenant(&mut self, weight: u32) -> TenantId {
        let id = self.next_tenant;
        self.next_tenant += 1;
        self.tenants.insert(
            id,
            Tenant {
                weight: weight.max(1),
                credit: 0,
                rotation: VecDeque::new(),
                next_index: 0,
            },
        );
        self.report.tenants.insert(
            id,
            TenantReport {
                weight: weight.max(1),
                ..TenantReport::default()
            },
        );
        id
    }

    /// The board pool (inspection).
    pub fn pool(&self) -> &BoardPool {
        &self.pool
    }

    /// Farm-wide counters so far.
    pub fn stats(&self) -> &crate::stats::FarmStats {
        &self.report.stats
    }

    /// Per-tenant accounting so far.
    pub fn tenant_report(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.report.tenants.get(&tenant)
    }

    /// Tenant-tagged spans recorded so far (`Span::track` = tenant id).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sessions not yet terminal.
    pub fn live_sessions(&self) -> usize {
        self.sessions.values().filter(|s| s.state.is_live()).count()
    }

    /// Offer a job.  Checks run in order: tenant known → job well-formed
    /// → per-tenant queue depth ([`FarmError::QueueFull`]) → farm-wide
    /// ceiling ([`FarmError::Saturated`]).  An accepted job becomes a
    /// queued session awaiting its first grant.
    pub fn submit(&mut self, tenant: TenantId, job: Job) -> Result<SessionId, FarmError> {
        self.report.stats.submitted += 1;
        if !self.tenants.contains_key(&tenant) {
            self.report.stats.rejected_invalid += 1;
            return Err(FarmError::UnknownTenant(tenant));
        }
        let n = job.set.n();
        if let Some(reason) = validate_job(&job) {
            self.report.stats.rejected_invalid += 1;
            return Err(reason);
        }
        let capacity = self.pool.unit_capacity();
        if n > capacity {
            self.report.stats.rejected_invalid += 1;
            return Err(FarmError::JobTooLarge { n, capacity });
        }
        let tenant_live = self
            .sessions
            .values()
            .filter(|s| s.id.tenant == tenant && s.state.is_live())
            .count();
        if tenant_live >= self.cfg.queue_depth {
            self.report.stats.rejected_queue_full += 1;
            return Err(FarmError::QueueFull {
                tenant,
                depth: self.cfg.queue_depth,
            });
        }
        let live = self.live_sessions();
        if live >= self.cfg.max_live_sessions {
            self.report.stats.rejected_saturated += 1;
            // Load-derived, deterministic: one checkpoint-write worth of
            // virtual time per quantum each session ahead of this one
            // still has to run.  Coarse, but monotonic in both load and
            // job size — exactly what a polite client needs.
            let excess = (live + 1 - self.cfg.max_live_sessions) as f64;
            let per_grant = self
                .cfg
                .timing
                .checkpoint_time(n)
                .max(self.cfg.backoff_base);
            let retry_after = excess * self.cfg.quantum as f64 * per_grant;
            return Err(FarmError::Saturated { retry_after });
        }
        let t = self.tenants.get_mut(&tenant).expect("checked above");
        let index = t.next_index;
        t.next_index += 1;
        let sid = SessionId { tenant, index };
        t.rotation.push_back(sid);
        self.sessions.insert(
            sid,
            Session {
                id: sid,
                t_end: job.t_end,
                label: job.label,
                n,
                state: SessionState::Queued {
                    set: Box::new(job.set),
                },
                grants_used: 0,
                blocksteps: 0,
                last_grant_seq: 0,
                resumes: 0,
            },
        );
        self.report.stats.admitted += 1;
        Ok(sid)
    }

    /// Drive every admitted session to a terminal state and return the
    /// report.  Fails only on a scheduler deadlock
    /// ([`FarmError::Stalled`]) — board failures and deadline kills are
    /// *outcomes*, not errors.
    pub fn run(&mut self) -> Result<FarmReport, FarmError> {
        while self.live_sessions() > 0 {
            let grants = self.round()?;
            if grants == 0 && self.live_sessions() > 0 {
                return Err(FarmError::Stalled {
                    round: self.report.stats.rounds,
                });
            }
        }
        let report = std::mem::take(&mut self.report);
        // Keep tenant registrations alive for a next batch.
        for (id, t) in &self.tenants {
            self.report.tenants.insert(
                *id,
                TenantReport {
                    weight: t.weight,
                    ..TenantReport::default()
                },
            );
        }
        Ok(report)
    }

    /// One deficit-WRR scheduler round: every tenant accrues `weight`
    /// credits and spends them on quanta for its live sessions, round
    /// robin.  Returns the number of quanta granted.  Public so a
    /// service loop can interleave [`submit`](Self::submit) with
    /// scheduling instead of batching everything through
    /// [`run`](Self::run).
    pub fn round(&mut self) -> Result<usize, FarmError> {
        self.report.stats.rounds += 1;
        let mut grants = 0usize;
        let tids: Vec<TenantId> = self.tenants.keys().copied().collect();
        for tid in tids {
            {
                let t = self.tenants.get_mut(&tid).expect("registered");
                t.credit += t.weight;
            }
            loop {
                let t = self.tenants.get_mut(&tid).expect("registered");
                if t.credit == 0 {
                    break;
                }
                let Some(sid) = pick_live(t, &self.sessions) else {
                    // Nothing runnable: credit does not bank while idle.
                    t.credit = 0;
                    break;
                };
                t.credit -= 1;
                match self.ensure_resident(sid) {
                    Ok(true) => {
                        self.grant(sid);
                        grants += 1;
                    }
                    Ok(false) => {} // session failed during activation
                    Err(FarmError::PoolExhausted) => {
                        self.fail_all_live("board pool exhausted");
                        return Ok(grants);
                    }
                    Err(e) => return Err(e),
                }
                if self.sessions.get(&sid).is_some_and(|s| s.state.is_live()) {
                    self.tenants
                        .get_mut(&tid)
                        .expect("registered")
                        .rotation
                        .push_back(sid);
                }
            }
        }
        Ok(grants)
    }

    /// Make `sid` resident, evicting the least-recently-granted resident
    /// session if no board is free and retiring boards that fail
    /// activation.  `Ok(false)` means the session itself died trying.
    fn ensure_resident(&mut self, sid: SessionId) -> Result<bool, FarmError> {
        if matches!(
            self.sessions.get(&sid).map(|s| &s.state),
            Some(SessionState::Resident { .. })
        ) {
            return Ok(true);
        }
        loop {
            let slot = match self.pool.free_slot() {
                Some(i) => i,
                None => {
                    if self.pool.in_service() == 0 {
                        return Err(FarmError::PoolExhausted);
                    }
                    match self.evict_lru(sid) {
                        Some(i) => i,
                        None => return Err(FarmError::PoolExhausted),
                    }
                }
            };
            match self.activate_on(sid, slot) {
                Ok(masked) => {
                    self.pool.note_masked(slot, masked);
                    self.pool.occupy(slot, sid);
                    return Ok(true);
                }
                Err(ActivationError::BoardUnusable(detail)) => {
                    // Fault-aware rotation: the board flunked its
                    // known-answer self-test (or lost too much capacity);
                    // pull it and try the next one.
                    self.pool.retire(slot, detail);
                    self.report.stats.board_rotations += 1;
                }
                Err(ActivationError::SessionBroken(detail)) => {
                    self.finish_failed(sid, detail);
                    return Ok(false);
                }
            }
        }
    }

    /// Build (or restore) `sid`'s supervised integrator on pool `slot`.
    /// Returns the number of units the activation self-test masked.
    fn activate_on(&mut self, sid: SessionId, slot: usize) -> Result<usize, ActivationError> {
        let plan = self.pool.slots()[slot].plan.clone();
        let machine = *self.pool.machine();
        let icfg = self.cfg.icfg;
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Moving);
        let (it, resumed) = match state {
            SessionState::Queued { set } => {
                let engine = match &plan {
                    Some(p) => Grape6Engine::with_fault_plan(&machine, sess.n, p),
                    None => Grape6Engine::try_new(&machine, sess.n),
                };
                match engine.and_then(|e| HermiteIntegrator::try_new(e, (*set).clone(), icfg)) {
                    Ok(it) => (it, false),
                    Err(e) => {
                        sess.state = SessionState::Queued { set };
                        return Err(classify_engine_error(&e));
                    }
                }
            }
            SessionState::Parked { ckpt } => {
                match restore_migrate(&machine, plan.as_ref(), icfg, &ckpt) {
                    Ok(it) => (it, true),
                    Err(e) => {
                        sess.state = SessionState::Parked { ckpt };
                        return Err(match &e {
                            grape6_core::RestoreError::Engine(ee) => classify_engine_error(ee),
                            grape6_core::RestoreError::Mismatch(m) => {
                                ActivationError::SessionBroken(m.clone())
                            }
                        });
                    }
                }
            }
            other => {
                sess.state = other;
                return Err(ActivationError::SessionBroken(
                    "activation from a non-activatable state".into(),
                ));
            }
        };
        let mut it = it;
        let masked = it.engine().self_test_report().map_or(0, |r| r.masked.len());
        it.engine_mut()
            .set_timebase(self.cfg.timing.engine_timebase());
        if self.cfg.trace {
            it.engine_mut().set_tracer(Tracer::enabled());
            it.set_tracer(Tracer::enabled());
            it.set_host_rates(HostRates {
                t_block_fixed: self.cfg.host.t_block_fixed,
                t_step: self.cfg.host.t_step(sess.n as f64),
            });
        }
        let mut scfg = SupervisorConfig::for_machine(machine);
        scfg.policy = CheckpointPolicy {
            every_blocksteps: Some(self.cfg.ckpt_every),
            every_virtual_seconds: None,
        };
        scfg.plan = plan;
        scfg.timing = self.cfg.timing;
        scfg.label = format!("farm {} {}", sid, sess.label);
        let sup = RunSupervisor::new(it, scfg);
        sess.state = SessionState::Resident {
            sup: Box::new(sup),
            board: slot,
        };
        if resumed {
            sess.resumes += 1;
            self.report.stats.resumes += 1;
        }
        Ok(masked)
    }

    /// Checkpoint-evict the least-recently-granted resident session
    /// other than `protect`; returns the freed slot.
    fn evict_lru(&mut self, protect: SessionId) -> Option<usize> {
        let victim = self
            .sessions
            .values()
            .filter(|s| s.id != protect && matches!(s.state, SessionState::Resident { .. }))
            .min_by_key(|s| (s.last_grant_seq, s.id))?
            .id;
        Some(self.park(victim))
    }

    /// Resident → Parked: checkpoint (cost charged in virtual time by
    /// the supervisor), drop the engine, free the board.
    fn park(&mut self, sid: SessionId) -> usize {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Moving);
        let SessionState::Resident { mut sup, board } = state else {
            unreachable!("park() called on a non-resident session");
        };
        let ckpt = sup.checkpoint_now().clone();
        let spans = sup.integrator_mut().take_spans();
        sess.state = SessionState::Parked {
            ckpt: Box::new(ckpt),
        };
        self.pool.release(board);
        self.report.stats.evictions += 1;
        self.fold_spans(sid.tenant, spans);
        board
    }

    /// One scheduler grant: up to `quantum` supervised blocksteps, with
    /// farm-level retry + deterministic-jitter backoff around supervisor
    /// failures.  Handles completion, deadline kill, and board rotation.
    fn grant(&mut self, sid: SessionId) {
        self.grant_seq += 1;
        self.report.stats.grants += 1;
        let quantum = self.cfg.quantum;
        let max_retries = self.cfg.max_grant_retries;
        let backoff_base = self.cfg.backoff_base;
        let jitter_permille = self.cfg.backoff_jitter_permille;
        let seed = self.cfg.seed;
        let deadline = self.cfg.deadline_grants;

        let sess = self.sessions.get_mut(&sid).expect("session exists");
        sess.grants_used += 1;
        sess.last_grant_seq = self.grant_seq;
        if let Some(d) = deadline {
            if sess.grants_used > d {
                self.report.stats.deadline_failures += 1;
                self.finish_failed(sid, format!("deadline exceeded after {d} grants"));
                return;
            }
        }
        let t_end = sess.t_end;
        let grants_used = sess.grants_used;
        let SessionState::Resident { ref mut sup, .. } = sess.state else {
            unreachable!("grant() called on a non-resident session");
        };

        let mut steps = 0u64;
        let mut retries_local = 0u64;
        let mut backoff_local = 0.0f64;
        let end = 'quantum: loop {
            if steps >= quantum {
                break GrantEnd::Quantum;
            }
            if sup.integrator().time() >= t_end {
                break GrantEnd::Finished;
            }
            let mut attempt: u32 = 0;
            loop {
                match sup.step() {
                    Ok(_) => {
                        steps += 1;
                        break;
                    }
                    Err(e) => {
                        attempt += 1;
                        retries_local += 1;
                        // Exponential backoff with the fault subsystem's
                        // deterministic jitter: same seed, same stream.
                        let jitter = mix(
                            seed,
                            u64::from(sid.tenant),
                            u64::from(sid.index),
                            grants_used,
                            u64::from(attempt),
                        ) % (jitter_permille + 1);
                        let dur = backoff_base
                            * f64::from(1u32 << (attempt - 1).min(16))
                            * (1.0 + jitter as f64 / 1000.0);
                        backoff_local += dur;
                        let it = sup.integrator_mut();
                        let t0 = it.engine().vt();
                        it.engine_mut().set_vt(t0 + dur);
                        it.engine_mut().tracer_mut().record(Span::new(
                            Phase::Backoff,
                            t0,
                            t0 + dur,
                        ));
                        if attempt > max_retries {
                            break 'quantum GrantEnd::BoardFault(e.to_string());
                        }
                    }
                }
            }
        };
        sess.blocksteps += steps;
        self.report.stats.grant_retries += retries_local;
        self.report.stats.backoff_seconds += backoff_local;
        {
            let tr = self
                .report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered");
            tr.grants += 1;
            tr.blocksteps += steps;
        }
        let spans = sup.integrator_mut().take_spans();
        self.fold_spans(sid.tenant, spans);
        match end {
            GrantEnd::Quantum => {}
            GrantEnd::Finished => self.finish_completed(sid),
            GrantEnd::BoardFault(detail) => {
                // The supervisor's whole ladder failed repeatedly on this
                // board: park the session at its last good checkpoint and
                // pull the board from rotation.  The session resumes on
                // another board at its next grant.
                let sess = self.sessions.get_mut(&sid).expect("session exists");
                let state = std::mem::replace(&mut sess.state, SessionState::Moving);
                let SessionState::Resident { sup, board } = state else {
                    unreachable!("board fault on a non-resident session");
                };
                let ckpt = sup
                    .last_checkpoint()
                    .cloned()
                    .expect("supervisor always holds a baseline checkpoint");
                sess.state = SessionState::Parked {
                    ckpt: Box::new(ckpt),
                };
                self.pool.retire(board, detail);
                self.report.stats.board_rotations += 1;
            }
        }
    }

    /// Resident → Done: record the outcome, free the board.
    fn finish_completed(&mut self, sid: SessionId) {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Done);
        let SessionState::Resident { mut sup, board } = state else {
            unreachable!("finish_completed() on a non-resident session");
        };
        let spans = sup.integrator_mut().take_spans();
        let particles = sup.integrator().particles().clone();
        let stats = sup.integrator().stats().clone();
        self.pool.release(board);
        self.report.stats.completed += 1;
        {
            let tr = self
                .report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered");
            tr.completed += 1;
            tr.absorb_recovery(&stats.recovery);
        }
        self.report.outcomes.insert(
            sid,
            SessionOutcome::Completed {
                particles: Box::new(particles),
                stats: Box::new(stats),
            },
        );
        self.fold_spans(sid.tenant, spans);
    }

    /// Any live state → Failed: record the reason, free the board.
    fn finish_failed(&mut self, sid: SessionId, reason: String) {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Failed);
        let mut spans = Vec::new();
        if let SessionState::Resident { mut sup, board } = state {
            spans = sup.integrator_mut().take_spans();
            let recovery = sup.integrator().stats().recovery;
            self.report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered")
                .absorb_recovery(&recovery);
            self.pool.release(board);
        }
        self.report.stats.failed += 1;
        self.report
            .tenants
            .get_mut(&sid.tenant)
            .expect("tenant registered")
            .failed += 1;
        self.report
            .outcomes
            .insert(sid, SessionOutcome::Failed { reason });
        self.fold_spans(sid.tenant, spans);
    }

    fn fail_all_live(&mut self, reason: &str) {
        let live: Vec<SessionId> = self
            .sessions
            .values()
            .filter(|s| s.state.is_live())
            .map(|s| s.id)
            .collect();
        for sid in live {
            self.finish_failed(sid, reason.to_string());
        }
    }

    /// Retag a grant's spans with the tenant id and fold them into the
    /// tenant's six-term measured breakdown.
    fn fold_spans(&mut self, tenant: TenantId, mut spans: Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        for s in &mut spans {
            s.track = tenant;
        }
        let mbt = MeasuredBlockTime::from_spans(&spans);
        self.report
            .tenants
            .get_mut(&tenant)
            .expect("tenant registered")
            .breakdown
            .add(&mbt);
        self.spans.extend(spans);
    }
}

/// Pop the next live session from the tenant's rotation, discarding
/// finished ones.
fn pick_live(t: &mut Tenant, sessions: &BTreeMap<SessionId, Session>) -> Option<SessionId> {
    while let Some(sid) = t.rotation.pop_front() {
        if sessions.get(&sid).is_some_and(|s| s.state.is_live()) {
            return Some(sid);
        }
    }
    None
}

/// Shape checks that do not depend on farm state.  `None` means valid.
fn validate_job(job: &Job) -> Option<FarmError> {
    let n = job.set.n();
    if n < 2 {
        return Some(FarmError::InvalidJob {
            reason: format!("need at least two particles, got {n}"),
        });
    }
    if !job.set.validate_finite() {
        return Some(FarmError::InvalidJob {
            reason: "non-finite particle data".into(),
        });
    }
    // The engine's fixed-point coordinate box covers ±64 length units.
    // (`validate_finite` above already rejected NaN coordinates.)
    let mc = job.set.max_coordinate();
    if mc >= 64.0 {
        return Some(FarmError::InvalidJob {
            reason: format!("coordinate {mc:.3} outside the ±64 fixed-point box"),
        });
    }
    if !job.t_end.is_finite() || job.t_end <= 0.0 {
        return Some(FarmError::InvalidJob {
            reason: format!("t_end must be finite and positive, got {}", job.t_end),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::particle::ParticleSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One-board unit: 2 modules × 2 chips × 16 j-slots = 64 slots; a
    /// dead module costs 32 of them.
    fn unit() -> MachineConfig {
        MachineConfig::builder()
            .boards(1)
            .modules_per_board(2)
            .chips_per_module(2)
            .jmem_capacity(16)
            .build()
            .unwrap()
    }

    fn ic(n: usize, seed: u64) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(seed))
    }

    fn job(n: usize, seed: u64, t_end: f64) -> Job {
        Job {
            set: ic(n, seed),
            t_end,
            label: format!("test seed {seed}"),
        }
    }

    fn bits_equal(a: &ParticleSet, b: &ParticleSet) -> bool {
        a.n() == b.n()
            && a.pos == b.pos
            && a.vel == b.vel
            && a.acc == b.acc
            && a.jerk == b.jerk
            && (0..a.n()).all(|i| a.t[i].to_bits() == b.t[i].to_bits())
            && (0..a.n()).all(|i| a.dt[i].to_bits() == b.dt[i].to_bits())
    }

    /// The reference every farm outcome must match bitwise: the same
    /// job on a dedicated healthy board, uninterrupted.
    fn dedicated(n: usize, seed: u64, t_end: f64) -> ParticleSet {
        let engine = Grape6Engine::try_new(&unit(), n).unwrap();
        let mut it = HermiteIntegrator::new(engine, ic(n, seed), IntegratorConfig::default());
        it.run_until(t_end);
        it.particles().clone()
    }

    #[test]
    fn admission_typed_rejections() {
        let mut cfg = FarmConfig::new(unit());
        cfg.max_live_sessions = 2;
        cfg.queue_depth = 1;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        let t1 = farm.add_tenant(1);
        let t2 = farm.add_tenant(1);

        assert!(farm.submit(t0, job(8, 1, 0.125)).is_ok());
        // Per-tenant queue bound fires before the global ceiling.
        match farm.submit(t0, job(8, 2, 0.125)) {
            Err(FarmError::QueueFull { tenant, depth }) => {
                assert_eq!((tenant, depth), (t0, 1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(farm.submit(t1, job(8, 3, 0.125)).is_ok());
        // Farm-wide ceiling with a positive, load-derived retry hint.
        match farm.submit(t2, job(8, 4, 0.125)) {
            Err(FarmError::Saturated { retry_after }) => assert!(retry_after > 0.0),
            other => panic!("expected Saturated, got {other:?}"),
        }
        // Malformed jobs are typed, too.
        let mut lonely = ParticleSet::with_capacity(1);
        lonely.push(1.0, [0.0; 3].into(), [0.0; 3].into());
        let bad = Job {
            set: lonely,
            t_end: 0.125,
            label: "one particle".into(),
        };
        match farm.submit(t2, bad) {
            Err(FarmError::InvalidJob { .. }) => {}
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        match farm.submit(t2, job(128, 6, 0.125)) {
            Err(FarmError::JobTooLarge { n, capacity }) => {
                assert_eq!((n, capacity), (128, 64));
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
        match farm.submit(99, job(8, 7, 0.125)) {
            Err(FarmError::UnknownTenant(99)) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        let stats = farm.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.rejected_saturated, 1);
        assert_eq!(stats.rejected_invalid, 3);
    }

    #[test]
    fn single_session_matches_dedicated_run() {
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 1;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        let sid = farm.submit(t0, job(16, 42, 0.25)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed());
        let got = report.outcomes[&sid].particles().unwrap();
        assert!(bits_equal(got, &dedicated(16, 42, 0.25)));
    }

    #[test]
    fn eviction_and_resume_stay_bitwise_identical() {
        // Three sessions share ONE board: every grant for a non-resident
        // session evicts the current occupant.
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 1;
        cfg.quantum = 4;
        cfg.ckpt_every = 4;
        let mut farm = Farm::new(cfg).unwrap();
        let tenants: Vec<TenantId> = (0..3).map(|_| farm.add_tenant(1)).collect();
        let mut sids = Vec::new();
        for (k, &t) in tenants.iter().enumerate() {
            sids.push((k, farm.submit(t, job(12, 100 + k as u64, 0.125)).unwrap()));
        }
        let report = farm.run().unwrap();
        assert!(report.all_completed(), "failed: {:?}", report.stats);
        assert!(report.stats.evictions >= 2, "stats: {:?}", report.stats);
        assert!(report.stats.resumes >= 2, "stats: {:?}", report.stats);
        for (k, sid) in sids {
            let got = report.outcomes[&sid].particles().unwrap();
            assert!(
                bits_equal(got, &dedicated(12, 100 + k as u64, 0.125)),
                "session {sid} diverged from its dedicated run"
            );
        }
    }

    #[test]
    fn power_on_self_test_failure_rotates_board() {
        // Board 0 powers on with a dead module: 32 of 64 slots gone, so
        // a 48-particle session cannot fit and the board is retired at
        // first activation.  The session completes on board 1.
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 2;
        cfg.board_plans = vec![Some(FaultPlan::none().with_dead_module(0, 0))];
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        let sid = farm.submit(t0, job(48, 7, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed());
        assert_eq!(report.stats.board_rotations, 1);
        assert_eq!(farm.pool().in_service(), 1);
        assert!(farm.pool().slots()[0].retired_reason.is_some());
        let got = report.outcomes[&sid].particles().unwrap();
        assert!(bits_equal(got, &dedicated(48, 7, 0.125)));
    }

    #[test]
    fn midrun_board_death_rotates_and_resumes_bitwise() {
        // Board 0 loses a module mid-run.  With 48 particles the
        // redistribution cannot fit on the surviving 32 slots, the
        // supervisor ladder is exhausted, and the farm parks the session
        // at its last checkpoint, retires the board, and resumes on
        // board 1 — with the particle bits of an uninterrupted run.
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 2;
        cfg.board_plans = vec![Some(FaultPlan::none().with_midrun_death(vec![0, 0], 40))];
        cfg.ckpt_every = 4;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        let sid = farm.submit(t0, job(48, 11, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed(), "stats: {:?}", report.stats);
        assert!(
            report.stats.board_rotations >= 1,
            "stats: {:?}",
            report.stats
        );
        assert!(report.stats.resumes >= 1, "stats: {:?}", report.stats);
        assert!(report.stats.grant_retries >= 1, "stats: {:?}", report.stats);
        assert!(report.stats.backoff_seconds > 0.0);
        let got = report.outcomes[&sid].particles().unwrap();
        assert!(bits_equal(got, &dedicated(48, 11, 0.125)));
    }

    #[test]
    fn deadline_kills_slow_session() {
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 1;
        cfg.deadline_grants = Some(2);
        cfg.quantum = 2;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        let sid = farm.submit(t0, job(16, 9, 4.0)).unwrap();
        let report = farm.run().unwrap();
        assert_eq!(report.stats.deadline_failures, 1);
        assert_eq!(report.stats.failed, 1);
        match &report.outcomes[&sid] {
            SessionOutcome::Failed { reason } => assert!(reason.contains("deadline")),
            other => panic!("expected deadline failure, got {other:?}"),
        }
    }

    #[test]
    fn pool_exhaustion_fails_sessions_gracefully() {
        // Every board is missing a module; 48-particle jobs fit nowhere.
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 2;
        cfg.board_plans = vec![
            Some(FaultPlan::none().with_dead_module(0, 0)),
            Some(FaultPlan::none().with_dead_module(0, 1)),
        ];
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        farm.submit(t0, job(48, 3, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert_eq!(report.stats.completed, 0);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.board_rotations, 2);
        assert!(report
            .outcomes
            .values()
            .all(|o| matches!(o, SessionOutcome::Failed { .. })));
    }

    #[test]
    fn weighted_round_robin_is_proportional() {
        // Drive rounds by hand: while both tenants are live, grants
        // accrue exactly in weight proportion (3:1).
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 2;
        cfg.quantum = 2;
        let mut farm = Farm::new(cfg).unwrap();
        let light = farm.add_tenant(1);
        let heavy = farm.add_tenant(3);
        farm.submit(light, job(12, 21, 0.5)).unwrap();
        farm.submit(heavy, job(12, 22, 0.5)).unwrap();
        let mut checked = 0;
        while farm.live_sessions() == 2 {
            farm.round().unwrap();
            let g_light = farm.tenant_report(light).unwrap().grants;
            let g_heavy = farm.tenant_report(heavy).unwrap().grants;
            if farm.live_sessions() == 2 {
                assert_eq!(g_heavy, 3 * g_light, "round-by-round WRR proportion");
                checked += 1;
            }
        }
        assert!(checked > 0, "never observed both tenants live");
        // Drain the survivor.
        let report = farm.run().unwrap();
        assert!(report.all_completed());
    }

    #[test]
    fn per_tenant_breakdown_accumulates() {
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 1;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(1);
        farm.submit(t0, job(16, 5, 0.125)).unwrap();
        let report = farm.run().unwrap();
        let tr = &report.tenants[&t0];
        assert!(tr.blocksteps > 0);
        assert!(tr.breakdown.total() > 0.0, "breakdown: {:?}", tr.breakdown);
        assert!(tr.recovery.checkpoints_taken >= 1);
        // Every recorded span carries the tenant's track id.
        assert!(!farm.spans().is_empty());
        assert!(farm.spans().iter().all(|s| s.track == t0));
    }
}
