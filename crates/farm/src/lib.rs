//! # grape6-farm — a multi-tenant GRAPE farm
//!
//! The SC'03 paper's machines were *shared*: a few host+GRAPE units
//! served a whole institute, and the host software's real job was to
//! keep many users' week-long runs alive on hardware that failed weekly
//! (§2).  This crate reproduces that operational layer as a
//! deterministic, virtual-time service:
//!
//! * [`Farm`] multiplexes many sessions (each the same supervised
//!   integrator+engine pair a `G6` session wraps) over a shared
//!   [`BoardPool`];
//! * **admission control** rejects work beyond a multiprogramming
//!   ceiling with [`FarmError::Saturated`] (carrying a deterministic
//!   `retry_after`) and beyond a per-tenant queue depth with
//!   [`FarmError::QueueFull`] — typed backpressure, not panics;
//! * a **deficit weighted-round-robin scheduler** grants quanta of
//!   blocksteps in proportion to tenant weights, enforces per-session
//!   grant deadlines, and retries transient failures with the fault
//!   subsystem's deterministic-jitter exponential backoff;
//! * **checkpoint eviction**: when sessions outnumber boards, the
//!   least-recently-granted session is parked as a bitwise-exact
//!   checkpoint and later resumed — possibly on a *different* board —
//!   via `restore_migrate`;
//! * **fault-aware rotation**: boards failing the known-answer
//!   self-test, or on which the supervisor's recovery ladder is
//!   exhausted, are retired from the pool and their sessions
//!   redistributed.
//!
//! The §3.4 block floating-point force summation makes all of this
//! invisible in the particle bits: every tenant finishes **bitwise
//! identical** to a dedicated single-tenant run, which the crate's
//! tests, `tests/farm_bitwise.rs`, and the `farm_soak` bench binary all
//! assert.
//!
//! Since PR 9 the farm is also a *network service*: [`server::FarmServer`]
//! accepts sessions over TCP/UDS (the `grape6-net` stream transport) and
//! [`client::FarmClient`] is the typed submit/poll/fetch/cancel RPC
//! surface.  The wire protocol ([`wire::FarmFrame`]) rides the same
//! little-endian `grape6-ckpt` encoding as checkpoints, and every
//! admission rejection crosses the wire as a typed
//! [`wire::DenyReason`] — never a closed socket.  A client that dies
//! mid-job (missed heartbeats) triggers the checkpoint-eviction path:
//! its board is reclaimed, its session parked.

pub mod client;
pub mod error;
pub mod farm;
pub mod pool;
pub mod server;
pub mod session;
pub mod stats;
pub mod wire;

pub use client::{FarmClient, FarmClientBuilder, FarmClientError};
pub use error::{FarmError, RetryAfter};
pub use farm::{Farm, FarmConfig, FarmConfigBuilder, TenantSpec};
pub use pool::{BoardHealth, BoardPool, BoardSlot};
pub use server::{FarmServer, FarmServerConfig, ServeOptions, ServeReport, ServerError};
pub use session::{
    Job, JobBuilder, JobResult, SessionId, SessionOutcome, SessionPhase, SessionStatus, TenantId,
};
pub use stats::{FarmReport, FarmStats, TenantReport};
pub use wire::{particles_digest, DenyReason, FarmFrame, FARM_PROTO};
