//! # grape6-farm — a multi-tenant GRAPE farm
//!
//! The SC'03 paper's machines were *shared*: a few host+GRAPE units
//! served a whole institute, and the host software's real job was to
//! keep many users' week-long runs alive on hardware that failed weekly
//! (§2).  This crate reproduces that operational layer as a
//! deterministic, virtual-time service:
//!
//! * [`Farm`] multiplexes many sessions (each the same supervised
//!   integrator+engine pair a `G6` session wraps) over a shared
//!   [`BoardPool`];
//! * **admission control** rejects work beyond a multiprogramming
//!   ceiling with [`FarmError::Saturated`] (carrying a deterministic
//!   `retry_after`) and beyond a per-tenant queue depth with
//!   [`FarmError::QueueFull`] — typed backpressure, not panics;
//! * a **deficit weighted-round-robin scheduler** grants quanta of
//!   blocksteps in proportion to tenant weights, enforces per-session
//!   grant deadlines, and retries transient failures with the fault
//!   subsystem's deterministic-jitter exponential backoff;
//! * **checkpoint eviction**: when sessions outnumber boards, the
//!   least-recently-granted session is parked as a bitwise-exact
//!   checkpoint and later resumed — possibly on a *different* board —
//!   via `restore_migrate`;
//! * **fault-aware rotation**: boards failing the known-answer
//!   self-test, or on which the supervisor's recovery ladder is
//!   exhausted, are retired from the pool and their sessions
//!   redistributed.
//!
//! The §3.4 block floating-point force summation makes all of this
//! invisible in the particle bits: every tenant finishes **bitwise
//! identical** to a dedicated single-tenant run, which the crate's
//! tests, `tests/farm_bitwise.rs`, and the `farm_soak` bench binary all
//! assert.

pub mod error;
pub mod farm;
pub mod pool;
pub mod session;
pub mod stats;

pub use error::FarmError;
pub use farm::{Farm, FarmConfig};
pub use pool::{BoardHealth, BoardPool, BoardSlot};
pub use session::{Job, SessionId, SessionOutcome, TenantId};
pub use stats::{FarmReport, FarmStats, TenantReport};
