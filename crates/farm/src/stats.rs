//! Farm-wide and per-tenant accounting.
//!
//! Everything here is deterministic: counters advance with scheduler
//! decisions and virtual-time charges, never with wall-clock reads, so
//! two runs of the same seeded scenario produce byte-identical reports.

use std::collections::BTreeMap;

use grape6_core::RecoveryStats;
use grape6_trace::MeasuredBlockTime;

use crate::session::{SessionId, SessionOutcome, TenantId};

/// Farm-wide counters.
#[derive(Clone, Debug, Default)]
pub struct FarmStats {
    /// Jobs offered to `submit`.
    pub submitted: u64,
    /// Jobs admitted (a session was created).
    pub admitted: u64,
    /// Rejections: multiprogramming ceiling.
    pub rejected_saturated: u64,
    /// Rejections: per-tenant queue depth.
    pub rejected_queue_full: u64,
    /// Rejections: malformed or oversized jobs.
    pub rejected_invalid: u64,
    /// Sessions that reached their target time.
    pub completed: u64,
    /// Sessions that gave up (deadline, pool exhaustion, engine error).
    pub failed: u64,
    /// Scheduler quanta granted.
    pub grants: u64,
    /// Scheduler rounds driven.
    pub rounds: u64,
    /// Checkpoint-evictions (resident → parked to free a board).
    pub evictions: u64,
    /// Parked → resident restores (bitwise-exact migrations included).
    pub resumes: u64,
    /// Boards pulled from rotation.
    pub board_rotations: u64,
    /// Supervisor step failures retried at farm level with backoff.
    pub grant_retries: u64,
    /// Virtual seconds spent in farm-level retry backoff.
    pub backoff_seconds: f64,
    /// Sessions killed by their grant deadline.
    pub deadline_failures: u64,
    /// Live sessions cancelled by their client.
    pub cancelled: u64,
    /// Sessions detached (client vanished; checkpoint retained).
    pub detached: u64,
}

/// Per-tenant accounting.
#[derive(Clone, Debug, Default)]
pub struct TenantReport {
    /// Scheduler weight the tenant was registered with.
    pub weight: u32,
    /// Quanta granted to this tenant.
    pub grants: u64,
    /// Blocksteps executed for this tenant.
    pub blocksteps: u64,
    /// Sessions completed / failed.
    pub completed: u64,
    /// Sessions that did not finish.
    pub failed: u64,
    /// Six-term measured breakdown folded from this tenant's spans
    /// (recovery phases — `Ckpt`, `Reload`, `Selftest` — included).
    pub breakdown: MeasuredBlockTime,
    /// Supervisor recovery counters summed over finished sessions.
    pub recovery: RecoveryStats,
}

impl TenantReport {
    pub(crate) fn absorb_recovery(&mut self, r: &RecoveryStats) {
        self.recovery.checkpoints_taken += r.checkpoints_taken;
        self.recovery.step_retries += r.step_retries;
        self.recovery.restores += r.restores;
        self.recovery.reselftests += r.reselftests;
        self.recovery.redistributions += r.redistributions;
        self.recovery.recovery_seconds += r.recovery_seconds;
    }
}

/// What `Farm::run` hands back.
#[derive(Clone, Debug, Default)]
pub struct FarmReport {
    /// Farm-wide counters.
    pub stats: FarmStats,
    /// Per-tenant accounting, keyed by tenant id.
    pub tenants: BTreeMap<TenantId, TenantReport>,
    /// Terminal outcome of every admitted session.
    pub outcomes: BTreeMap<SessionId, SessionOutcome>,
}

impl FarmReport {
    /// True when every admitted session completed.
    pub fn all_completed(&self) -> bool {
        self.stats.failed == 0 && self.stats.completed == self.stats.admitted
    }
}
