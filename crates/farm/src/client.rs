//! The typed farm client.
//!
//! [`FarmClient`] is the builder-first RPC surface over the farm wire
//! protocol: rendezvous on the published address file, dial, `Hello`
//! with the run nonce and a [`TenantSpec`], then
//! submit / status / fetch / cancel against the server's [`super::FarmServer`].
//! Every server-side rejection arrives as a typed
//! [`FarmClientError::Denied`] carrying the [`DenyReason`] — admission
//! backpressure included, so a saturated farm hands back
//! [`RetryAfter::Millis`] and [`FarmClient::backoff_after`] turns it
//! into a deterministic-jitter exponential sleep (same `mix`-based
//! jitter discipline as the scheduler's own retry ladder, seeded per
//! client so two clients never thunder in phase).
//!
//! The client never panics on wire trouble and never blocks without a
//! deadline: all reads go through the transport's bounded
//! `recv_payload_deadline`, and [`FarmClient::wait_result`] is a polling
//! loop with an explicit timeout.

use std::path::{Path, PathBuf};
use std::time::Duration;

use grape6_fault::rng::mix;
use grape6_net::transport::{
    dial_service, wait_for_service_addr, FrameIoError, FramedConn, StreamConfig, StreamKind,
    TransportError,
};

use crate::error::RetryAfter;
use crate::farm::TenantSpec;
use crate::session::{JobResult, SessionId, SessionPhase, SessionStatus, TenantId};
use crate::wire::{DenyReason, FarmFrame, FARM_PROTO};
use grape6_ckpt::wire::WireError;

/// Everything that can go wrong on the client side of the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum FarmClientError {
    /// Rendezvous or dial failed.
    Transport(TransportError),
    /// Framed stream I/O failed (EOF, torn frame, deadline).
    Io(FrameIoError),
    /// A frame arrived but would not decode.
    Wire(WireError),
    /// The server refused the request, with a typed reason.
    Denied(DenyReason),
    /// The server answered with a frame that makes no sense here.
    Protocol(String),
    /// [`FarmClient::wait_result`] ran out of its caller-set budget.
    TimedOut { session: SessionId },
}

impl std::fmt::Display for FarmClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::Io(e) => write!(f, "stream: {e}"),
            Self::Wire(e) => write!(f, "undecodable reply: {e}"),
            Self::Denied(r) => write!(f, "denied: {r}"),
            Self::Protocol(s) => write!(f, "protocol violation: {s}"),
            Self::TimedOut { session } => {
                write!(
                    f,
                    "timed out waiting on session t{}s{}",
                    session.tenant, session.index
                )
            }
        }
    }
}

impl std::error::Error for FarmClientError {}

impl From<TransportError> for FarmClientError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<FrameIoError> for FarmClientError {
    fn from(e: FrameIoError) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for FarmClientError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Builder for [`FarmClient`] — the only way to construct one.
#[derive(Clone, Debug)]
pub struct FarmClientBuilder {
    dir: PathBuf,
    kind: StreamKind,
    service: String,
    stream: StreamConfig,
    spec: TenantSpec,
    seed: u64,
    poll_interval: Duration,
}

impl FarmClientBuilder {
    /// TCP or UDS (must match the server).
    pub fn kind(mut self, kind: StreamKind) -> Self {
        self.kind = kind;
        self
    }

    /// Service name under the rendezvous dir (default `"farm"`).
    pub fn service(mut self, service: &str) -> Self {
        self.service = service.into();
        self
    }

    /// Full stream budget override (deadlines, attempts, nonce).
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// The run nonce the server published (rendezvous + `Hello` check).
    pub fn nonce(mut self, nonce: u64) -> Self {
        self.stream.nonce = nonce;
        self
    }

    /// Tenant registration: weight, queue cap, deadline.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Seed for the deterministic backoff jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How often [`FarmClient::wait_result`] polls (default 10 ms).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Rendezvous, dial, and handshake.  On success the tenant is
    /// registered and the client is ready to submit.
    pub fn connect(self) -> Result<FarmClient, FarmClientError> {
        let addr = wait_for_service_addr(&self.dir, &self.service, &self.stream)?;
        let io = dial_service(&addr, self.kind, &self.stream)?;
        let mut client = FarmClient {
            io,
            stream: self.stream,
            tenant: 0,
            seed: self.seed,
            poll_interval: self.poll_interval,
            seq: 0,
            beats: 0,
        };
        client.io.send_payload(
            &FarmFrame::Hello {
                proto: FARM_PROTO,
                nonce: client.stream.nonce,
                spec: self.spec,
            }
            .encode(),
        )?;
        match client.recv()? {
            FarmFrame::HelloAck { proto, tenant } if proto == FARM_PROTO => {
                client.tenant = tenant;
                Ok(client)
            }
            FarmFrame::HelloAck { proto, .. } => Err(FarmClientError::Protocol(format!(
                "HelloAck with protocol {proto}"
            ))),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected HelloAck, got {}",
                other.name()
            ))),
        }
    }
}

/// A handshaken connection to a [`super::FarmServer`].
pub struct FarmClient {
    io: FramedConn,
    stream: StreamConfig,
    tenant: TenantId,
    seed: u64,
    poll_interval: Duration,
    seq: u64,
    beats: u64,
}

impl FarmClient {
    /// Start building a client against the rendezvous dir the server
    /// published into.
    pub fn builder(dir: &Path) -> FarmClientBuilder {
        FarmClientBuilder {
            dir: dir.to_path_buf(),
            kind: StreamKind::Tcp,
            service: "farm".into(),
            stream: StreamConfig::default(),
            spec: TenantSpec::new(1),
            seed: 0,
            poll_interval: Duration::from_millis(10),
        }
    }

    /// The tenant id the server assigned at handshake.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Submit a job (already validated by [`crate::Job::builder`]).
    /// Returns the session ticket, or the server's typed denial.
    pub fn submit(&mut self, job: &crate::session::Job) -> Result<SessionId, FarmClientError> {
        self.seq += 1;
        let seq = self.seq;
        self.io.send_payload(
            &FarmFrame::Submit {
                seq,
                t_end: job.t_end().to_bits(),
                label: job.label().to_string(),
                set: job.set().clone(),
            }
            .encode(),
        )?;
        match self.recv_matching(seq)? {
            FarmFrame::Ticket { session, .. } => Ok(session),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected Ticket, got {}",
                other.name()
            ))),
        }
    }

    /// Submit with the deterministic backoff ladder: on
    /// [`DenyReason::Saturated`] sleep [`Self::backoff_after`] and try
    /// again, up to `max_attempts` total submissions.
    pub fn submit_with_backoff(
        &mut self,
        job: &crate::session::Job,
        max_attempts: u32,
    ) -> Result<SessionId, FarmClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.submit(job) {
                Ok(sid) => return Ok(sid),
                Err(FarmClientError::Denied(DenyReason::Saturated { retry_after }))
                    if attempt < max_attempts =>
                {
                    std::thread::sleep(self.backoff_after(&retry_after, attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Poll a session's phase/progress.
    pub fn status(&mut self, session: SessionId) -> Result<SessionStatus, FarmClientError> {
        self.io
            .send_payload(&FarmFrame::Query { session }.encode())?;
        match self.recv()? {
            FarmFrame::Status { status } => Ok(status),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected Status, got {}",
                other.name()
            ))),
        }
    }

    /// Fetch a finished session's particles + report.  The server hands
    /// the result over exactly once (farm semantics of `take_result`).
    pub fn fetch(&mut self, session: SessionId) -> Result<JobResult, FarmClientError> {
        self.io
            .send_payload(&FarmFrame::Fetch { session }.encode())?;
        match self.recv()? {
            FarmFrame::Result {
                session,
                particles,
                report,
            } => Ok(JobResult {
                session,
                particles,
                report,
            }),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected Result, got {}",
                other.name()
            ))),
        }
    }

    /// Cancel a queued or running session (idempotent server-side).
    pub fn cancel(&mut self, session: SessionId) -> Result<SessionStatus, FarmClientError> {
        self.io
            .send_payload(&FarmFrame::Cancel { session }.encode())?;
        match self.recv()? {
            FarmFrame::Status { status } => Ok(status),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected Status, got {}",
                other.name()
            ))),
        }
    }

    /// Heartbeat: proves liveness to the server's grace timer and
    /// returns the echoed epoch.
    pub fn beat(&mut self) -> Result<u64, FarmClientError> {
        self.beats += 1;
        let epoch = self.beats;
        self.io.send_payload(&FarmFrame::Beat { epoch }.encode())?;
        match self.recv()? {
            FarmFrame::Beat { epoch } => Ok(epoch),
            FarmFrame::Deny { reason, .. } => Err(FarmClientError::Denied(reason)),
            other => Err(FarmClientError::Protocol(format!(
                "expected Beat echo, got {}",
                other.name()
            ))),
        }
    }

    /// Orderly goodbye; the server detaches any sessions still live.
    pub fn bye(mut self) -> Result<(), FarmClientError> {
        self.io.send_payload(&FarmFrame::Bye.encode())?;
        Ok(())
    }

    /// Poll until the session finishes, then fetch.  A `Failed` phase
    /// surfaces as [`FarmClientError::Denied`] with
    /// [`DenyReason::JobFailed`] (the server's fetch answer); silence
    /// past `timeout` is [`FarmClientError::TimedOut`].  Heartbeats ride
    /// along on every poll, so a waiting client never looks dead.
    pub fn wait_result(
        &mut self,
        session: SessionId,
        timeout: Duration,
    ) -> Result<JobResult, FarmClientError> {
        let start = std::time::Instant::now();
        loop {
            let status = self.status(session)?;
            match status.phase {
                SessionPhase::Done | SessionPhase::Failed => return self.fetch(session),
                _ => {}
            }
            if start.elapsed() > timeout {
                return Err(FarmClientError::TimedOut { session });
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Deterministic-jitter exponential backoff for a typed
    /// [`RetryAfter`] hint.  The nominal wait is the server's hint (a
    /// blockstep count is taken as milliseconds — the server normally
    /// converts before it reaches the wire), doubled per attempt (capped
    /// at 2^8) plus a `mix`-derived jitter of up to a quarter of the
    /// wait, so identical clients with different seeds fan out instead
    /// of re-colliding.
    pub fn backoff_after(&self, hint: &RetryAfter, attempt: u32) -> Duration {
        let base_ms = match hint {
            RetryAfter::Millis(ms) => *ms,
            RetryAfter::Blocksteps(b) => *b,
        }
        .max(1);
        let scaled = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(8));
        let jitter_span = scaled / 4 + 1;
        let jitter = mix(
            self.seed,
            u64::from(self.tenant),
            u64::from(attempt),
            base_ms,
            0x6261636b6f6666, // "backoff"
        ) % jitter_span;
        Duration::from_millis(scaled + jitter)
    }

    /// One bounded read; `Beat` echoes from an earlier fire-and-forget
    /// poll are skipped (bounded, so a babbling server can't wedge us).
    fn recv(&mut self) -> Result<FarmFrame, FarmClientError> {
        for _ in 0..64 {
            let payload = self
                .io
                .recv_payload_deadline(self.stream.read_deadline, self.stream.read_attempts)?;
            let frame = FarmFrame::decode(&payload)?;
            if matches!(frame, FarmFrame::Beat { .. }) {
                continue;
            }
            return Ok(frame);
        }
        Err(FarmClientError::Protocol(
            "64 consecutive Beat frames; server is babbling".into(),
        ))
    }

    /// Like [`Self::recv`] but requires the reply to match `seq`
    /// (Ticket/Deny); stale out-of-sequence replies are skipped.
    fn recv_matching(&mut self, seq: u64) -> Result<FarmFrame, FarmClientError> {
        for _ in 0..64 {
            match self.recv()? {
                FarmFrame::Ticket { seq: s, session } if s == seq => {
                    return Ok(FarmFrame::Ticket { seq: s, session })
                }
                FarmFrame::Deny { seq: s, reason } if s == seq || s == 0 => {
                    return Ok(FarmFrame::Deny { seq: s, reason })
                }
                FarmFrame::Ticket { .. } | FarmFrame::Deny { .. } => continue,
                other => return Ok(other),
            }
        }
        Err(FarmClientError::Protocol(
            "no reply matching submit sequence".into(),
        ))
    }
}
