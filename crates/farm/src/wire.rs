//! The farm service wire protocol.
//!
//! [`FarmFrame`] is the message set a [`FarmClient`](crate::FarmClient)
//! and [`FarmServer`](crate::FarmServer) exchange over a
//! `grape6_net::FramedConn` (u64 length prefix + payload).  Encoding is
//! the same hand-rolled little-endian `grape6-ckpt` layout checkpoints
//! use: `f64`s travel as bit patterns, sequences carry allocation-guarded
//! length prefixes, and decode demands full consumption — so a particle
//! set survives the network *bitwise*, which is what lets the soak
//! compare a wire-submitted job against an in-process run down to the
//! last mantissa bit.
//!
//! Backpressure is typed all the way across: every admission rejection
//! the in-process [`Farm`](crate::Farm) produces has a [`DenyReason`]
//! twin that rides a [`FarmFrame::Deny`] instead of a closed socket.
//!
//! ```text
//! client                       server
//!   │ Hello{proto,nonce,spec}    │
//!   │───────────────────────────▶│  register tenant
//!   │◀───────────────────────────│ HelloAck{proto,tenant} | Deny
//!   │ Submit{seq,job}            │
//!   │───────────────────────────▶│  Job::builder + Farm::submit
//!   │◀───────────────────────────│ Ticket{seq,session} | Deny
//!   │ Query/Beat …               │  scheduler rounds interleave
//!   │◀──────────────────────────▶│ Status{phase,…}
//!   │ Fetch{session}             │
//!   │───────────────────────────▶│  Farm::take_result
//!   │◀───────────────────────────│ Result{particles,report} | Deny
//!   │ Bye                        │
//!   │───────────────────────────▶│  remaining sessions detach
//! ```

use grape6_ckpt::digest::fnv1a64;
use grape6_ckpt::wire::{Dec, Enc, WireError};
use nbody_core::particle::ParticleSet;
use nbody_core::vec3::Vec3;

use crate::error::{FarmError, RetryAfter};
use crate::farm::TenantSpec;
use crate::session::{SessionId, SessionPhase, SessionStatus, TenantId};
use crate::stats::TenantReport;

/// Protocol version; a `Hello` carrying any other value is denied with
/// [`DenyReason::BadHello`] instead of being guessed at.
pub const FARM_PROTO: u32 = 1;

/// Why the server refused a request — the wire twin of [`FarmError`],
/// minus the variants that only make sense in-process.
#[derive(Clone, Debug, PartialEq)]
pub enum DenyReason {
    /// Farm at its multiprogramming ceiling; retry after the hint.  The
    /// server converts the farm's blockstep hint to wall milliseconds
    /// using its measured blockstep rate before sending.
    Saturated {
        /// When to retry, unit explicit.
        retry_after: RetryAfter,
    },
    /// The tenant's live-session queue is full.
    QueueFull {
        /// The depth that was hit.
        depth: u64,
    },
    /// The job exceeds one board's j-memory.
    JobTooLarge {
        /// Particles requested.
        n: u64,
        /// Slots one board offers.
        capacity: u64,
    },
    /// The job failed `Job::builder` validation on the server.
    InvalidJob {
        /// The failed check.
        reason: String,
    },
    /// The connection's tenant spec failed validation.
    InvalidSpec {
        /// The failed check.
        reason: String,
    },
    /// Handshake failure: wrong protocol version, wrong nonce, or a
    /// request before `Hello`.
    BadHello {
        /// What was wrong.
        reason: String,
    },
    /// The session id is not one of this connection's (or its result
    /// was already taken).
    UnknownSession,
    /// The session has not finished yet; poll again.
    NotReady,
    /// The session finished by failing.
    JobFailed {
        /// What killed it.
        reason: String,
    },
    /// The server is shutting down.
    Shutdown,
    /// A farm-internal failure (pool exhausted, scheduler stall).
    Internal {
        /// The farm's own description.
        reason: String,
    },
}

impl DenyReason {
    /// Map an in-process rejection to its wire twin.  `QueueFull` drops
    /// the tenant id (each connection knows its own); `UnknownTenant`
    /// cannot happen on an authenticated connection and maps to
    /// `BadHello`.
    pub fn from_error(e: &FarmError) -> Self {
        match e {
            FarmError::Saturated { retry_after } => Self::Saturated {
                retry_after: *retry_after,
            },
            FarmError::QueueFull { depth, .. } => Self::QueueFull {
                depth: *depth as u64,
            },
            FarmError::JobTooLarge { n, capacity } => Self::JobTooLarge {
                n: *n as u64,
                capacity: *capacity as u64,
            },
            FarmError::InvalidJob { reason } => Self::InvalidJob {
                reason: reason.clone(),
            },
            FarmError::InvalidConfig { reason } => Self::InvalidSpec {
                reason: reason.clone(),
            },
            FarmError::UnknownTenant(t) => Self::BadHello {
                reason: format!("unknown tenant {t}"),
            },
            FarmError::UnknownSession(_) => Self::UnknownSession,
            FarmError::NotReady { .. } => Self::NotReady,
            FarmError::JobFailed { reason, .. } => Self::JobFailed {
                reason: reason.clone(),
            },
            FarmError::PoolExhausted | FarmError::Stalled { .. } => Self::Internal {
                reason: e.to_string(),
            },
        }
    }
}

impl std::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Saturated { retry_after } => {
                write!(f, "saturated; retry after {retry_after}")
            }
            Self::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            Self::JobTooLarge { n, capacity } => {
                write!(f, "job of {n} particles exceeds capacity {capacity}")
            }
            Self::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            Self::InvalidSpec { reason } => write!(f, "invalid tenant spec: {reason}"),
            Self::BadHello { reason } => write!(f, "handshake rejected: {reason}"),
            Self::UnknownSession => f.write_str("unknown session"),
            Self::NotReady => f.write_str("session not finished yet"),
            Self::JobFailed { reason } => write!(f, "job failed: {reason}"),
            Self::Shutdown => f.write_str("server shutting down"),
            Self::Internal { reason } => write!(f, "server failure: {reason}"),
        }
    }
}

/// A farm service message.  `PartialEq` is deliberately absent (particle
/// payloads compare bitwise through [`particles_digest`], not `==`).
#[derive(Clone, Debug)]
pub enum FarmFrame {
    /// Client → server: open a session stream.  `nonce` must match the
    /// server's published rendezvous nonce (stale-address defense, same
    /// as the cluster transport).
    Hello {
        /// Must equal [`FARM_PROTO`].
        proto: u32,
        /// The server's published rendezvous nonce.
        nonce: u64,
        /// The tenant registration this connection runs under.
        spec: TenantSpec,
    },
    /// Server → client: handshake accepted; subsequent frames run under
    /// `tenant`.
    HelloAck {
        /// Echoed protocol version.
        proto: u32,
        /// The registered tenant id.
        tenant: TenantId,
    },
    /// Client → server: submit a job.  `seq` is a client-chosen request
    /// id echoed in the matching `Ticket`/`Deny`.  `t_end` travels as an
    /// `f64` bit pattern; the particle arrays travel bitwise.
    Submit {
        /// Client request id, echoed in the reply.
        seq: u64,
        /// Target time as an IEEE-754 bit pattern.
        t_end: u64,
        /// Job label.
        label: String,
        /// Initial conditions.
        set: ParticleSet,
    },
    /// Server → client: the submit was admitted as `session`.
    Ticket {
        /// Echoed request id.
        seq: u64,
        /// The admitted session.
        session: SessionId,
    },
    /// Client → server: ask where a session is.
    Query {
        /// The session to report on.
        session: SessionId,
    },
    /// Server → client: a point-in-time session snapshot.
    Status {
        /// The snapshot.
        status: SessionStatus,
    },
    /// Client → server: take a finished session's result.
    Fetch {
        /// The session to collect.
        session: SessionId,
    },
    /// Server → client: the finished session's particles and the owning
    /// tenant's accounting — the wire form of
    /// [`JobResult`](crate::JobResult).
    Result {
        /// The session this result belongs to.
        session: SessionId,
        /// Final particle state, bitwise.
        particles: ParticleSet,
        /// The owning tenant's accounting snapshot.
        report: TenantReport,
    },
    /// Client → server: cancel a session (server replies `Status`).
    Cancel {
        /// The session to cancel.
        session: SessionId,
    },
    /// Server → client: a request was refused, with the typed reason.
    /// `seq` echoes a `Submit`'s request id (0 for non-submit denials).
    Deny {
        /// Echoed submit request id, or 0.
        seq: u64,
        /// The refusal.
        reason: DenyReason,
    },
    /// Either direction: liveness.  A server that misses beats past its
    /// grace window detaches the connection's sessions
    /// (checkpoint-eviction) and reclaims their boards.
    Beat {
        /// Monotonic per-connection counter.
        epoch: u64,
    },
    /// Client → server: orderly goodbye; the server detaches any
    /// unfinished sessions without waiting for the heartbeat grace.
    Bye,
}

const TAG_HELLO: u32 = 1;
const TAG_HELLO_ACK: u32 = 2;
const TAG_SUBMIT: u32 = 3;
const TAG_TICKET: u32 = 4;
const TAG_QUERY: u32 = 5;
const TAG_STATUS: u32 = 6;
const TAG_FETCH: u32 = 7;
const TAG_RESULT: u32 = 8;
const TAG_CANCEL: u32 = 9;
const TAG_DENY: u32 = 10;
const TAG_BEAT: u32 = 11;
const TAG_BYE: u32 = 12;

const RETRY_BLOCKSTEPS: u32 = 0;
const RETRY_MILLIS: u32 = 1;

const DENY_SATURATED: u32 = 1;
const DENY_QUEUE_FULL: u32 = 2;
const DENY_JOB_TOO_LARGE: u32 = 3;
const DENY_INVALID_JOB: u32 = 4;
const DENY_INVALID_SPEC: u32 = 5;
const DENY_BAD_HELLO: u32 = 6;
const DENY_UNKNOWN_SESSION: u32 = 7;
const DENY_NOT_READY: u32 = 8;
const DENY_JOB_FAILED: u32 = 9;
const DENY_SHUTDOWN: u32 = 10;
const DENY_INTERNAL: u32 = 11;

const PHASE_QUEUED: u32 = 0;
const PHASE_RESIDENT: u32 = 1;
const PHASE_PARKED: u32 = 2;
const PHASE_DETACHED: u32 = 3;
const PHASE_DONE: u32 = 4;
const PHASE_FAILED: u32 = 5;

fn enc_session(e: &mut Enc, s: SessionId) {
    e.u32(s.tenant);
    e.u32(s.index);
}

fn dec_session(d: &mut Dec) -> Result<SessionId, WireError> {
    Ok(SessionId {
        tenant: d.u32()?,
        index: d.u32()?,
    })
}

fn enc_retry(e: &mut Enc, r: RetryAfter) {
    match r {
        RetryAfter::Blocksteps(b) => {
            e.u32(RETRY_BLOCKSTEPS);
            e.u64(b);
        }
        RetryAfter::Millis(ms) => {
            e.u32(RETRY_MILLIS);
            e.u64(ms);
        }
    }
}

fn dec_retry(d: &mut Dec) -> Result<RetryAfter, WireError> {
    match d.u32()? {
        RETRY_BLOCKSTEPS => Ok(RetryAfter::Blocksteps(d.u64()?)),
        RETRY_MILLIS => Ok(RetryAfter::Millis(d.u64()?)),
        _ => Err(WireError::Bool),
    }
}

fn enc_phase(e: &mut Enc, p: SessionPhase) {
    e.u32(match p {
        SessionPhase::Queued => PHASE_QUEUED,
        SessionPhase::Resident => PHASE_RESIDENT,
        SessionPhase::Parked => PHASE_PARKED,
        SessionPhase::Detached => PHASE_DETACHED,
        SessionPhase::Done => PHASE_DONE,
        SessionPhase::Failed => PHASE_FAILED,
    });
}

fn dec_phase(d: &mut Dec) -> Result<SessionPhase, WireError> {
    Ok(match d.u32()? {
        PHASE_QUEUED => SessionPhase::Queued,
        PHASE_RESIDENT => SessionPhase::Resident,
        PHASE_PARKED => SessionPhase::Parked,
        PHASE_DETACHED => SessionPhase::Detached,
        PHASE_DONE => SessionPhase::Done,
        PHASE_FAILED => SessionPhase::Failed,
        _ => return Err(WireError::Bool),
    })
}

fn enc_spec(e: &mut Enc, s: &TenantSpec) {
    e.u32(s.weight);
    e.bool(s.queue_cap.is_some());
    e.u64(s.queue_cap.unwrap_or(0) as u64);
    e.bool(s.deadline_grants.is_some());
    e.u64(s.deadline_grants.unwrap_or(0));
}

fn dec_spec(d: &mut Dec) -> Result<TenantSpec, WireError> {
    let weight = d.u32()?;
    let has_cap = d.bool()?;
    let cap = d.size()?;
    let has_deadline = d.bool()?;
    let deadline = d.u64()?;
    Ok(TenantSpec {
        weight,
        queue_cap: has_cap.then_some(cap),
        deadline_grants: has_deadline.then_some(deadline),
    })
}

fn enc_deny(e: &mut Enc, r: &DenyReason) {
    match r {
        DenyReason::Saturated { retry_after } => {
            e.u32(DENY_SATURATED);
            enc_retry(e, *retry_after);
        }
        DenyReason::QueueFull { depth } => {
            e.u32(DENY_QUEUE_FULL);
            e.u64(*depth);
        }
        DenyReason::JobTooLarge { n, capacity } => {
            e.u32(DENY_JOB_TOO_LARGE);
            e.u64(*n);
            e.u64(*capacity);
        }
        DenyReason::InvalidJob { reason } => {
            e.u32(DENY_INVALID_JOB);
            e.str(reason);
        }
        DenyReason::InvalidSpec { reason } => {
            e.u32(DENY_INVALID_SPEC);
            e.str(reason);
        }
        DenyReason::BadHello { reason } => {
            e.u32(DENY_BAD_HELLO);
            e.str(reason);
        }
        DenyReason::UnknownSession => e.u32(DENY_UNKNOWN_SESSION),
        DenyReason::NotReady => e.u32(DENY_NOT_READY),
        DenyReason::JobFailed { reason } => {
            e.u32(DENY_JOB_FAILED);
            e.str(reason);
        }
        DenyReason::Shutdown => e.u32(DENY_SHUTDOWN),
        DenyReason::Internal { reason } => {
            e.u32(DENY_INTERNAL);
            e.str(reason);
        }
    }
}

fn dec_deny(d: &mut Dec) -> Result<DenyReason, WireError> {
    Ok(match d.u32()? {
        DENY_SATURATED => DenyReason::Saturated {
            retry_after: dec_retry(d)?,
        },
        DENY_QUEUE_FULL => DenyReason::QueueFull { depth: d.u64()? },
        DENY_JOB_TOO_LARGE => DenyReason::JobTooLarge {
            n: d.u64()?,
            capacity: d.u64()?,
        },
        DENY_INVALID_JOB => DenyReason::InvalidJob { reason: d.str()? },
        DENY_INVALID_SPEC => DenyReason::InvalidSpec { reason: d.str()? },
        DENY_BAD_HELLO => DenyReason::BadHello { reason: d.str()? },
        DENY_UNKNOWN_SESSION => DenyReason::UnknownSession,
        DENY_NOT_READY => DenyReason::NotReady,
        DENY_JOB_FAILED => DenyReason::JobFailed { reason: d.str()? },
        DENY_SHUTDOWN => DenyReason::Shutdown,
        DENY_INTERNAL => DenyReason::Internal { reason: d.str()? },
        _ => return Err(WireError::Bool),
    })
}

fn v3bits(v: &[Vec3]) -> Vec<[u64; 3]> {
    v.iter()
        .map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn v3unbits(v: Vec<[u64; 3]>) -> Vec<Vec3> {
    v.into_iter()
        .map(|b| {
            Vec3::new(
                f64::from_bits(b[0]),
                f64::from_bits(b[1]),
                f64::from_bits(b[2]),
            )
        })
        .collect()
}

fn fbits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn funbits(v: Vec<u64>) -> Vec<f64> {
    v.into_iter().map(f64::from_bits).collect()
}

/// Encode a particle set bitwise (all ten SoA arrays as bit patterns).
fn enc_particles(e: &mut Enc, p: &ParticleSet) {
    e.size(p.n());
    e.seq_u64(&fbits(&p.mass));
    e.seq_u64x3(&v3bits(&p.pos));
    e.seq_u64x3(&v3bits(&p.vel));
    e.seq_u64x3(&v3bits(&p.acc));
    e.seq_u64x3(&v3bits(&p.jerk));
    e.seq_u64x3(&v3bits(&p.snap));
    e.seq_u64x3(&v3bits(&p.crackle));
    e.seq_u64(&fbits(&p.pot));
    e.seq_u64(&fbits(&p.t));
    e.seq_u64(&fbits(&p.dt));
}

fn dec_particles(d: &mut Dec) -> Result<ParticleSet, WireError> {
    let n = d.size()?;
    let set = ParticleSet {
        mass: funbits(d.seq_u64()?),
        pos: v3unbits(d.seq_u64x3()?),
        vel: v3unbits(d.seq_u64x3()?),
        acc: v3unbits(d.seq_u64x3()?),
        jerk: v3unbits(d.seq_u64x3()?),
        snap: v3unbits(d.seq_u64x3()?),
        crackle: v3unbits(d.seq_u64x3()?),
        pot: funbits(d.seq_u64()?),
        t: funbits(d.seq_u64()?),
        dt: funbits(d.seq_u64()?),
    };
    // Every array must agree with the declared count — a frame whose
    // arrays are ragged would otherwise smuggle an inconsistent set
    // into the integrator.
    let lens = [
        set.mass.len(),
        set.pos.len(),
        set.vel.len(),
        set.acc.len(),
        set.jerk.len(),
        set.snap.len(),
        set.crackle.len(),
        set.pot.len(),
        set.t.len(),
        set.dt.len(),
    ];
    if lens.iter().any(|&l| l != n) {
        return Err(WireError::Oversize);
    }
    Ok(set)
}

fn enc_report(e: &mut Enc, r: &TenantReport) {
    e.u32(r.weight);
    e.u64(r.grants);
    e.u64(r.blocksteps);
    e.u64(r.completed);
    e.u64(r.failed);
    for term in [
        r.breakdown.host,
        r.breakdown.dma,
        r.breakdown.interface,
        r.breakdown.grape,
        r.breakdown.sync,
        r.breakdown.exchange,
        r.breakdown.wall,
    ] {
        e.u64(term.to_bits());
    }
    e.u64(r.recovery.checkpoints_taken);
    e.u64(r.recovery.step_retries);
    e.u64(r.recovery.restores);
    e.u64(r.recovery.reselftests);
    e.u64(r.recovery.redistributions);
    e.u64(r.recovery.recovery_seconds.to_bits());
}

fn dec_report(d: &mut Dec) -> Result<TenantReport, WireError> {
    let mut r = TenantReport {
        weight: d.u32()?,
        grants: d.u64()?,
        blocksteps: d.u64()?,
        completed: d.u64()?,
        failed: d.u64()?,
        ..TenantReport::default()
    };
    r.breakdown.host = f64::from_bits(d.u64()?);
    r.breakdown.dma = f64::from_bits(d.u64()?);
    r.breakdown.interface = f64::from_bits(d.u64()?);
    r.breakdown.grape = f64::from_bits(d.u64()?);
    r.breakdown.sync = f64::from_bits(d.u64()?);
    r.breakdown.exchange = f64::from_bits(d.u64()?);
    r.breakdown.wall = f64::from_bits(d.u64()?);
    r.recovery.checkpoints_taken = d.u64()?;
    r.recovery.step_retries = d.u64()?;
    r.recovery.restores = d.u64()?;
    r.recovery.reselftests = d.u64()?;
    r.recovery.redistributions = d.u64()?;
    r.recovery.recovery_seconds = f64::from_bits(d.u64()?);
    Ok(r)
}

/// FNV-1a digest of a particle set's bitwise wire encoding — the
/// machine-parsable fingerprint the bins print and the soak compares.
pub fn particles_digest(p: &ParticleSet) -> u64 {
    let mut e = Enc::new();
    enc_particles(&mut e, p);
    fnv1a64(&e.into_bytes())
}

impl FarmFrame {
    /// Encode into the little-endian wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Self::Hello { proto, nonce, spec } => {
                e.u32(TAG_HELLO);
                e.u32(*proto);
                e.u64(*nonce);
                enc_spec(&mut e, spec);
            }
            Self::HelloAck { proto, tenant } => {
                e.u32(TAG_HELLO_ACK);
                e.u32(*proto);
                e.u32(*tenant);
            }
            Self::Submit {
                seq,
                t_end,
                label,
                set,
            } => {
                e.u32(TAG_SUBMIT);
                e.u64(*seq);
                e.u64(*t_end);
                e.str(label);
                enc_particles(&mut e, set);
            }
            Self::Ticket { seq, session } => {
                e.u32(TAG_TICKET);
                e.u64(*seq);
                enc_session(&mut e, *session);
            }
            Self::Query { session } => {
                e.u32(TAG_QUERY);
                enc_session(&mut e, *session);
            }
            Self::Status { status } => {
                e.u32(TAG_STATUS);
                enc_session(&mut e, status.session);
                enc_phase(&mut e, status.phase);
                e.u64(status.blocksteps);
                e.u64(status.resumes);
            }
            Self::Fetch { session } => {
                e.u32(TAG_FETCH);
                enc_session(&mut e, *session);
            }
            Self::Result {
                session,
                particles,
                report,
            } => {
                e.u32(TAG_RESULT);
                enc_session(&mut e, *session);
                enc_particles(&mut e, particles);
                enc_report(&mut e, report);
            }
            Self::Cancel { session } => {
                e.u32(TAG_CANCEL);
                enc_session(&mut e, *session);
            }
            Self::Deny { seq, reason } => {
                e.u32(TAG_DENY);
                e.u64(*seq);
                enc_deny(&mut e, reason);
            }
            Self::Beat { epoch } => {
                e.u32(TAG_BEAT);
                e.u64(*epoch);
            }
            Self::Bye => e.u32(TAG_BYE),
        }
        e.into_bytes()
    }

    /// Decode a frame, requiring full consumption of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(buf);
        let out = match d.u32()? {
            TAG_HELLO => Self::Hello {
                proto: d.u32()?,
                nonce: d.u64()?,
                spec: dec_spec(&mut d)?,
            },
            TAG_HELLO_ACK => Self::HelloAck {
                proto: d.u32()?,
                tenant: d.u32()?,
            },
            TAG_SUBMIT => Self::Submit {
                seq: d.u64()?,
                t_end: d.u64()?,
                label: d.str()?,
                set: dec_particles(&mut d)?,
            },
            TAG_TICKET => Self::Ticket {
                seq: d.u64()?,
                session: dec_session(&mut d)?,
            },
            TAG_QUERY => Self::Query {
                session: dec_session(&mut d)?,
            },
            TAG_STATUS => Self::Status {
                status: SessionStatus {
                    session: dec_session(&mut d)?,
                    phase: dec_phase(&mut d)?,
                    blocksteps: d.u64()?,
                    resumes: d.u64()?,
                },
            },
            TAG_FETCH => Self::Fetch {
                session: dec_session(&mut d)?,
            },
            TAG_RESULT => Self::Result {
                session: dec_session(&mut d)?,
                particles: dec_particles(&mut d)?,
                report: dec_report(&mut d)?,
            },
            TAG_CANCEL => Self::Cancel {
                session: dec_session(&mut d)?,
            },
            TAG_DENY => Self::Deny {
                seq: d.u64()?,
                reason: dec_deny(&mut d)?,
            },
            TAG_BEAT => Self::Beat { epoch: d.u64()? },
            TAG_BYE => Self::Bye,
            _ => return Err(WireError::Bool),
        };
        d.finish()?;
        Ok(out)
    }

    /// The frame's wire name, for protocol-violation diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Hello { .. } => "Hello",
            Self::HelloAck { .. } => "HelloAck",
            Self::Submit { .. } => "Submit",
            Self::Ticket { .. } => "Ticket",
            Self::Query { .. } => "Query",
            Self::Status { .. } => "Status",
            Self::Fetch { .. } => "Fetch",
            Self::Result { .. } => "Result",
            Self::Cancel { .. } => "Cancel",
            Self::Deny { .. } => "Deny",
            Self::Beat { .. } => "Beat",
            Self::Bye => "Bye",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(n: usize) -> ParticleSet {
        let mut s = ParticleSet::with_capacity(n);
        for i in 0..n {
            let x = i as f64;
            s.push(
                1.0 / n as f64,
                Vec3::new(x * 0.25, -x, 1.0 / (x + 1.0)),
                Vec3::new(0.5, x * 1e-3, -2.0),
            );
        }
        // Exercise the derivative arrays and awkward bit patterns.
        if n > 0 {
            s.acc[0] = Vec3::new(f64::from_bits(0x7ff8_dead_beef_0001), 0.0, -0.0);
            s.dt[0] = f64::INFINITY;
            s.t[n - 1] = 0.062_5;
        }
        s
    }

    fn frames() -> Vec<FarmFrame> {
        vec![
            FarmFrame::Hello {
                proto: FARM_PROTO,
                nonce: 0xdead_beef_cafe_f00d,
                spec: TenantSpec::new(3).queue_cap(2).deadline_grants(64),
            },
            FarmFrame::HelloAck {
                proto: FARM_PROTO,
                tenant: 7,
            },
            FarmFrame::Submit {
                seq: 42,
                t_end: 0.125_f64.to_bits(),
                label: "wire job".into(),
                set: sample_set(5),
            },
            FarmFrame::Ticket {
                seq: 42,
                session: SessionId {
                    tenant: 7,
                    index: 3,
                },
            },
            FarmFrame::Query {
                session: SessionId {
                    tenant: 7,
                    index: 3,
                },
            },
            FarmFrame::Status {
                status: SessionStatus {
                    session: SessionId {
                        tenant: 7,
                        index: 3,
                    },
                    phase: SessionPhase::Detached,
                    blocksteps: 99,
                    resumes: 2,
                },
            },
            FarmFrame::Fetch {
                session: SessionId {
                    tenant: 7,
                    index: 3,
                },
            },
            FarmFrame::Result {
                session: SessionId {
                    tenant: 7,
                    index: 3,
                },
                particles: sample_set(4),
                report: TenantReport {
                    weight: 3,
                    grants: 17,
                    blocksteps: 136,
                    completed: 2,
                    failed: 1,
                    ..TenantReport::default()
                },
            },
            FarmFrame::Cancel {
                session: SessionId {
                    tenant: 7,
                    index: 4,
                },
            },
            FarmFrame::Deny {
                seq: 43,
                reason: DenyReason::Saturated {
                    retry_after: RetryAfter::Millis(250),
                },
            },
            FarmFrame::Deny {
                seq: 0,
                reason: DenyReason::JobFailed {
                    reason: "deadline exceeded".into(),
                },
            },
            FarmFrame::Beat { epoch: 11 },
            FarmFrame::Bye,
        ]
    }

    #[test]
    fn every_frame_roundtrips_bitwise() {
        for f in frames() {
            let bytes = f.encode();
            let back = FarmFrame::decode(&bytes).unwrap();
            // Bitwise identity of the re-encoding is the contract (frames
            // carry NaN payloads, so == would be the wrong comparison).
            assert_eq!(back.encode(), bytes, "{f:?} changed across the wire");
        }
    }

    #[test]
    fn every_torn_prefix_of_every_frame_is_a_typed_error() {
        // A client or server dying mid-write leaves the reader an
        // arbitrary prefix.  No prefix may decode Ok and none may panic.
        for f in frames() {
            let bytes = f.encode();
            for cut in 0..bytes.len() {
                assert!(
                    FarmFrame::decode(&bytes[..cut]).is_err(),
                    "{f:?} cut at {cut}/{} decoded Ok",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_and_unknown_tags_are_rejected() {
        let mut bytes = FarmFrame::Beat { epoch: 1 }.encode();
        bytes.push(0);
        assert_eq!(FarmFrame::decode(&bytes).err(), Some(WireError::Trailing));
        let mut e = Enc::new();
        e.u32(999);
        assert!(FarmFrame::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn ragged_particle_arrays_are_rejected() {
        let mut set = sample_set(3);
        set.pot.pop();
        let f = FarmFrame::Submit {
            seq: 1,
            t_end: 1.0_f64.to_bits(),
            label: "ragged".into(),
            set,
        };
        assert!(FarmFrame::decode(&f.encode()).is_err());
    }

    #[test]
    fn oversize_particle_count_does_not_allocate() {
        let mut e = Enc::new();
        e.u32(TAG_SUBMIT);
        e.u64(1);
        e.u64(0);
        e.str("bomb");
        e.size(usize::MAX / 16); // declared n
        e.u64(usize::MAX as u64 / 16); // mass length prefix
        assert!(FarmFrame::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn particles_digest_tracks_every_bit() {
        let a = sample_set(6);
        let mut b = a.clone();
        assert_eq!(particles_digest(&a), particles_digest(&b));
        b.vel[3].y = f64::from_bits(b.vel[3].y.to_bits() ^ 1);
        assert_ne!(particles_digest(&a), particles_digest(&b));
    }

    #[test]
    fn deny_reason_maps_every_farm_error() {
        use crate::error::FarmError as E;
        let sid = SessionId {
            tenant: 1,
            index: 2,
        };
        let cases: Vec<(E, DenyReason)> = vec![
            (
                E::Saturated {
                    retry_after: RetryAfter::Blocksteps(16),
                },
                DenyReason::Saturated {
                    retry_after: RetryAfter::Blocksteps(16),
                },
            ),
            (
                E::QueueFull {
                    tenant: 1,
                    depth: 2,
                },
                DenyReason::QueueFull { depth: 2 },
            ),
            (
                E::JobTooLarge {
                    n: 128,
                    capacity: 64,
                },
                DenyReason::JobTooLarge {
                    n: 128,
                    capacity: 64,
                },
            ),
            (E::UnknownSession(sid), DenyReason::UnknownSession),
            (E::NotReady { session: sid }, DenyReason::NotReady),
            (
                E::JobFailed {
                    session: sid,
                    reason: "x".into(),
                },
                DenyReason::JobFailed { reason: "x".into() },
            ),
            (
                E::PoolExhausted,
                DenyReason::Internal {
                    reason: E::PoolExhausted.to_string(),
                },
            ),
        ];
        for (err, want) in cases {
            assert_eq!(DenyReason::from_error(&err), want);
        }
    }
}
