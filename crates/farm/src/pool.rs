//! The shared board pool and its health states.
//!
//! The farm owns a pool of identical board units (each described by one
//! [`MachineConfig`], typically a single physical board).  Every unit
//! carries an optional seeded [`FaultPlan`] — the same plans PR 1's
//! self-test and the chaos soak use — so a pool can be built with known
//! bad hardware and the rotation logic exercised deterministically.
//!
//! Health is a one-way ladder: `Healthy` → `Degraded` (self-test masked
//! some units but capacity still suffices) → `Retired` (the known-answer
//! self-test failed hard enough that sessions no longer fit, or a
//! session's recovery ladder was exhausted on this board).  Retired
//! boards are never offered to the scheduler again.

use grape6_fault::FaultPlan;
use grape6_system::machine::MachineConfig;

use crate::session::SessionId;

/// Health of one pool unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoardHealth {
    /// Full capacity.
    Healthy,
    /// Self-test masked some units; remaining capacity still serves jobs.
    Degraded {
        /// Units masked out by the known-answer self-test.
        masked: usize,
    },
    /// Pulled from rotation.
    Retired,
}

/// One board unit in the pool.
#[derive(Clone, Debug)]
pub struct BoardSlot {
    /// Seeded fault plan this unit was provisioned with, if any.
    pub plan: Option<FaultPlan>,
    /// Current health.
    pub health: BoardHealth,
    /// Session currently resident on this unit.
    pub occupant: Option<SessionId>,
    /// Why the unit was retired, when it was.
    pub retired_reason: Option<String>,
}

/// The shared pool.
#[derive(Clone, Debug)]
pub struct BoardPool {
    machine: MachineConfig,
    slots: Vec<BoardSlot>,
}

impl BoardPool {
    /// Build a pool of `boards` identical units.  `plans` provisions the
    /// first `plans.len()` units with fault plans; the rest are healthy.
    pub fn new(machine: MachineConfig, boards: usize, plans: Vec<Option<FaultPlan>>) -> Self {
        let mut plans = plans;
        plans.resize(boards, None);
        let slots = plans
            .into_iter()
            .map(|plan| BoardSlot {
                plan,
                health: BoardHealth::Healthy,
                occupant: None,
                retired_reason: None,
            })
            .collect();
        Self { machine, slots }
    }

    /// The per-unit machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// j-memory slots one healthy unit offers (the admission size limit).
    pub fn unit_capacity(&self) -> usize {
        self.machine.boards
            * self.machine.modules_per_board
            * self.machine.chips_per_module
            * self.machine.chip.jmem_capacity
    }

    /// All slots (reporting).
    pub fn slots(&self) -> &[BoardSlot] {
        &self.slots
    }

    /// Index of the first unoccupied, unretired unit.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.health != BoardHealth::Retired && s.occupant.is_none())
    }

    /// Units still in rotation (healthy or degraded).
    pub fn in_service(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.health != BoardHealth::Retired)
            .count()
    }

    /// Units currently hosting a session.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.occupant.is_some()).count()
    }

    pub(crate) fn occupy(&mut self, idx: usize, sid: SessionId) {
        self.slots[idx].occupant = Some(sid);
    }

    pub(crate) fn release(&mut self, idx: usize) {
        self.slots[idx].occupant = None;
    }

    /// Pull a unit from rotation, recording why (its occupant, if any,
    /// is the caller's problem — the farm parks it first).
    pub(crate) fn retire(&mut self, idx: usize, reason: String) {
        self.slots[idx].health = BoardHealth::Retired;
        self.slots[idx].occupant = None;
        self.slots[idx].retired_reason = Some(reason);
    }

    /// Record self-test degradation observed at activation.
    pub(crate) fn note_masked(&mut self, idx: usize, masked: usize) {
        if masked > 0 && self.slots[idx].health == BoardHealth::Healthy {
            self.slots[idx].health = BoardHealth::Degraded { masked };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MachineConfig {
        MachineConfig::builder()
            .boards(1)
            .modules_per_board(2)
            .chips_per_module(2)
            .jmem_capacity(16)
            .build()
            .unwrap()
    }

    #[test]
    fn pool_lifecycle() {
        let mut pool = BoardPool::new(small(), 3, vec![None]);
        assert_eq!(pool.unit_capacity(), 64);
        assert_eq!(pool.in_service(), 3);
        assert_eq!(pool.free_slot(), Some(0));
        let sid = SessionId {
            tenant: 0,
            index: 0,
        };
        pool.occupy(0, sid);
        assert_eq!(pool.free_slot(), Some(1));
        assert_eq!(pool.occupied(), 1);
        pool.retire(1, "test".into());
        assert_eq!(pool.free_slot(), Some(2));
        assert_eq!(pool.in_service(), 2);
        pool.release(0);
        assert_eq!(pool.free_slot(), Some(0));
        pool.note_masked(2, 1);
        assert_eq!(pool.slots()[2].health, BoardHealth::Degraded { masked: 1 });
        pool.retire(0, "test".into());
        pool.retire(2, "test".into());
        assert_eq!(pool.free_slot(), None);
        assert_eq!(pool.in_service(), 0);
    }
}
