//! Sessions and their lifecycle.
//!
//! A *session* is one tenant job making its way through the farm:
//!
//! ```text
//! Queued ──▶ Resident ⇄ Parked ──▶ Done | Failed
//! ```
//!
//! `Resident` holds a live [`RunSupervisor`] bound to a pool board;
//! `Parked` holds only the session's last [`Checkpoint`] — eviction is
//! literally "checkpoint, drop the engine, free the board", and resume
//! is [`restore_migrate`](grape6_core::restore_migrate) onto whichever
//! board is free next.  Because checkpoints are bitwise-exact and §3.4
//! block-FP summation makes board migration invisible in the force
//! bits, a session evicted and resumed any number of times finishes
//! with the same particle bits as an uninterrupted run.

use grape6_ckpt::Checkpoint;
use grape6_core::{RunStats, RunSupervisor};
use nbody_core::particle::ParticleSet;

/// A tenant identifier (registration order).
pub type TenantId = u32;

/// A session identifier: the owning tenant plus a per-tenant index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId {
    /// The owning tenant.
    pub tenant: TenantId,
    /// Submission index within the tenant.
    pub index: u32,
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.s{}", self.tenant, self.index)
    }
}

/// What a tenant submits: initial conditions plus a target time.
#[derive(Clone, Debug)]
pub struct Job {
    /// Initial particle set.
    pub set: ParticleSet,
    /// Integrate until `time >= t_end` (same loop as `run_until`).
    pub t_end: f64,
    /// Free-form label stamped into checkpoints and reports.
    pub label: String,
}

/// Where a session is in its lifecycle.
pub(crate) enum SessionState {
    /// Admitted, never run.
    Queued {
        /// The submitted initial conditions.
        set: Box<ParticleSet>,
    },
    /// Live on a board.
    Resident {
        /// The supervised integrator+engine pair.
        sup: Box<RunSupervisor>,
        /// Pool slot index it occupies.
        board: usize,
    },
    /// Evicted: only the checkpoint survives.
    Parked {
        /// The bitwise-exact resume point.
        ckpt: Box<Checkpoint>,
    },
    /// Finished; the outcome lives in the farm report.
    Done,
    /// Gave up; the outcome lives in the farm report.
    Failed,
    /// Transient placeholder while ownership moves (never observable
    /// between scheduler calls).
    Moving,
}

impl SessionState {
    pub(crate) fn is_live(&self) -> bool {
        matches!(
            self,
            Self::Queued { .. } | Self::Resident { .. } | Self::Parked { .. } | Self::Moving
        )
    }
}

/// One session's bookkeeping.
pub(crate) struct Session {
    pub(crate) id: SessionId,
    pub(crate) t_end: f64,
    pub(crate) label: String,
    pub(crate) n: usize,
    pub(crate) state: SessionState,
    /// Scheduler quanta consumed (compared against the deadline).
    pub(crate) grants_used: u64,
    /// Blocksteps actually executed.
    pub(crate) blocksteps: u64,
    /// Global grant sequence number of the last grant (LRU eviction key).
    pub(crate) last_grant_seq: u64,
    /// Times this session was resumed from a parked checkpoint.
    pub(crate) resumes: u64,
}

/// How a session ended.
#[derive(Clone, Debug)]
pub enum SessionOutcome {
    /// Ran to `t_end`.
    Completed {
        /// Final particle state (bitwise comparable to a dedicated run).
        particles: Box<ParticleSet>,
        /// Final integrator statistics (recovery counters included).
        stats: Box<RunStats>,
    },
    /// Did not finish.
    Failed {
        /// What killed it (deadline, pool exhaustion, engine error…).
        reason: String,
    },
}

impl SessionOutcome {
    /// Final particles, if the session completed.
    pub fn particles(&self) -> Option<&ParticleSet> {
        match self {
            Self::Completed { particles, .. } => Some(particles),
            Self::Failed { .. } => None,
        }
    }

    /// True if the session ran to its target time.
    pub fn is_completed(&self) -> bool {
        matches!(self, Self::Completed { .. })
    }
}
