//! Sessions and their lifecycle.
//!
//! A *session* is one tenant job making its way through the farm:
//!
//! ```text
//! Queued ──▶ Resident ⇄ Parked ──▶ Done | Failed
//! ```
//!
//! `Resident` holds a live [`RunSupervisor`] bound to a pool board;
//! `Parked` holds only the session's last [`Checkpoint`] — eviction is
//! literally "checkpoint, drop the engine, free the board", and resume
//! is [`restore_migrate`](grape6_core::restore_migrate) onto whichever
//! board is free next.  Because checkpoints are bitwise-exact and §3.4
//! block-FP summation makes board migration invisible in the force
//! bits, a session evicted and resumed any number of times finishes
//! with the same particle bits as an uninterrupted run.

use grape6_ckpt::Checkpoint;
use grape6_core::{RunStats, RunSupervisor};
use nbody_core::particle::ParticleSet;

use crate::error::FarmError;
use crate::stats::TenantReport;

/// A tenant identifier (registration order).
pub type TenantId = u32;

/// A session identifier: the owning tenant plus a per-tenant index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId {
    /// The owning tenant.
    pub tenant: TenantId,
    /// Submission index within the tenant.
    pub index: u32,
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.s{}", self.tenant, self.index)
    }
}

/// What a tenant submits: initial conditions plus a target time.
///
/// A `Job` can only be obtained through [`Job::builder`], which runs the
/// validity checks (enough particles, finite in-box coordinates, finite
/// positive target time) at construction — so a `Job` value that exists
/// is always admissible on those axes, and `submit` only has to check
/// farm-state conditions (capacity, queues, saturation).
#[derive(Clone, Debug)]
pub struct Job {
    pub(crate) set: ParticleSet,
    pub(crate) t_end: f64,
    pub(crate) label: String,
}

impl Job {
    /// Start building a job from its initial particle set.
    pub fn builder(set: ParticleSet) -> JobBuilder {
        JobBuilder {
            set,
            t_end: 0.0,
            label: String::new(),
        }
    }

    /// The initial particle set.
    pub fn set(&self) -> &ParticleSet {
        &self.set
    }

    /// Number of particles.
    pub fn n(&self) -> usize {
        self.set.n()
    }

    /// Integrate until `time >= t_end` (same loop as `run_until`).
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Free-form label stamped into checkpoints and reports.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Builder for [`Job`]: set the target time and label, then [`build`]
/// to validate.
///
/// [`build`]: JobBuilder::build
#[derive(Clone, Debug)]
pub struct JobBuilder {
    set: ParticleSet,
    t_end: f64,
    label: String,
}

impl JobBuilder {
    /// Integrate until `time >= t_end`.  Must be finite and positive.
    pub fn t_end(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Free-form label stamped into checkpoints and reports.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Validate and produce the job.
    ///
    /// Checks (the former `submit`-time checks, moved to construction):
    /// at least two particles, all coordinates finite, coordinates
    /// within the engine's representable box, target time finite and
    /// positive.
    pub fn build(self) -> Result<Job, FarmError> {
        let n = self.set.n();
        if n < 2 {
            return Err(FarmError::InvalidJob {
                reason: format!("need at least 2 particles, got {n}"),
            });
        }
        if !self.set.validate_finite() {
            return Err(FarmError::InvalidJob {
                reason: "non-finite particle data".into(),
            });
        }
        let max_c = self.set.max_coordinate();
        if max_c >= 64.0 {
            return Err(FarmError::InvalidJob {
                reason: format!("coordinate {max_c} outside representable box"),
            });
        }
        if !self.t_end.is_finite() || self.t_end <= 0.0 {
            return Err(FarmError::InvalidJob {
                reason: format!("t_end must be finite and positive, got {}", self.t_end),
            });
        }
        Ok(Job {
            set: self.set,
            t_end: self.t_end,
            label: self.label,
        })
    }
}

/// What [`Farm::take_result`](crate::Farm::take_result) hands back for a
/// completed session — the same shape whether the job ran in-process or
/// arrived over the wire.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The session this result belongs to.
    pub session: SessionId,
    /// Final particle state (bitwise comparable to a dedicated run).
    pub particles: ParticleSet,
    /// The owning tenant's accounting at the time the result was taken.
    pub report: TenantReport,
}

/// Externally visible lifecycle phase of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPhase {
    /// Admitted, never run.
    Queued,
    /// Live on a board.
    Resident,
    /// Evicted to a checkpoint; will resume when scheduled.
    Parked,
    /// Parked because its client vanished; excluded from scheduling
    /// until reattached, but the checkpoint is retained.
    Detached,
    /// Ran to its target time; result available via `take_result`.
    Done,
    /// Gave up; `take_result` reports the reason.
    Failed,
}

impl std::fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Queued => "queued",
            Self::Resident => "resident",
            Self::Parked => "parked",
            Self::Detached => "detached",
            Self::Done => "done",
            Self::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// A point-in-time snapshot of one session, for status polling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionStatus {
    /// Which session.
    pub session: SessionId,
    /// Where it is in its lifecycle.
    pub phase: SessionPhase,
    /// Blocksteps executed so far.
    pub blocksteps: u64,
    /// Times it was resumed from a parked checkpoint.
    pub resumes: u64,
}

/// Where a session is in its lifecycle.
pub(crate) enum SessionState {
    /// Admitted, never run.
    Queued {
        /// The submitted initial conditions.
        set: Box<ParticleSet>,
    },
    /// Live on a board.
    Resident {
        /// The supervised integrator+engine pair.
        sup: Box<RunSupervisor>,
        /// Pool slot index it occupies.
        board: usize,
    },
    /// Evicted: only the checkpoint survives.
    Parked {
        /// The bitwise-exact resume point.
        ckpt: Box<Checkpoint>,
    },
    /// Finished; the outcome lives in the farm report.
    Done,
    /// Gave up; the outcome lives in the farm report.
    Failed,
    /// Transient placeholder while ownership moves (never observable
    /// between scheduler calls).
    Moving,
}

impl SessionState {
    pub(crate) fn is_live(&self) -> bool {
        matches!(
            self,
            Self::Queued { .. } | Self::Resident { .. } | Self::Parked { .. } | Self::Moving
        )
    }
}

/// One session's bookkeeping.
pub(crate) struct Session {
    pub(crate) id: SessionId,
    pub(crate) t_end: f64,
    pub(crate) label: String,
    pub(crate) n: usize,
    pub(crate) state: SessionState,
    /// Scheduler quanta consumed (compared against the deadline).
    pub(crate) grants_used: u64,
    /// Blocksteps actually executed.
    pub(crate) blocksteps: u64,
    /// Global grant sequence number of the last grant (LRU eviction key).
    pub(crate) last_grant_seq: u64,
    /// Times this session was resumed from a parked checkpoint.
    pub(crate) resumes: u64,
    /// Grant budget snapshotted at submit (tenant override or farm
    /// default); `None` means no deadline.
    pub(crate) deadline_grants: Option<u64>,
    /// The owning client vanished: keep the checkpoint but stop
    /// scheduling until someone reattaches or cancels.
    pub(crate) detached: bool,
}

impl Session {
    pub(crate) fn phase(&self) -> SessionPhase {
        if self.detached && self.state.is_live() {
            return SessionPhase::Detached;
        }
        match self.state {
            SessionState::Queued { .. } => SessionPhase::Queued,
            SessionState::Resident { .. } => SessionPhase::Resident,
            SessionState::Parked { .. } | SessionState::Moving => SessionPhase::Parked,
            SessionState::Done => SessionPhase::Done,
            SessionState::Failed => SessionPhase::Failed,
        }
    }
}

/// How a session ended.
#[derive(Clone, Debug)]
pub enum SessionOutcome {
    /// Ran to `t_end`.
    Completed {
        /// Final particle state (bitwise comparable to a dedicated run).
        particles: Box<ParticleSet>,
        /// Final integrator statistics (recovery counters included).
        stats: Box<RunStats>,
    },
    /// Did not finish.
    Failed {
        /// What killed it (deadline, pool exhaustion, engine error…).
        reason: String,
    },
}

impl SessionOutcome {
    /// Final particles, if the session completed.
    #[deprecated(
        since = "0.1.0",
        note = "use `Farm::take_result`, which returns a typed `JobResult` \
                for both the in-process and wire paths"
    )]
    pub fn particles(&self) -> Option<&ParticleSet> {
        match self {
            Self::Completed { particles, .. } => Some(particles),
            Self::Failed { .. } => None,
        }
    }

    /// True if the session ran to its target time.
    pub fn is_completed(&self) -> bool {
        matches!(self, Self::Completed { .. })
    }
}
