//! # bh-tree — the Barnes–Hut treecode baseline of §5
//!
//! The paper closes by comparing GRAPE-6 against "what kind of performance
//! one can achieve with Barnes-Hut treecode on a PC-cluster or massively-
//! parallel general-purpose computer", in **particle steps per second**
//! (because the treecode is O(N log N) per step, raw flops are the wrong
//! yardstick).  The comparison needs an actual treecode, so here is one:
//!
//! * [`tree`] — octree construction over a flat node arena (Barnes & Hut
//!   1986), with per-node mass, centre of mass and geometric size;
//! * [`traverse`] — force evaluation with the classic opening criterion
//!   `ℓ/d < θ` (monopole approximation, softened), iterative traversal;
//! * [`integrate`] — a shared-timestep leapfrog driver and a simple
//!   block-timestep variant, both reporting particle-steps/s accounting;
//!   §5's argument — "If we use shared timestep, we need at least 100
//!   times more particle steps, since the ratio between the smallest
//!   timestep and (harmonic) mean timestep is larger than 100" — is
//!   reproduced as a measurement in the benchmark harness.

pub mod integrate;
pub mod traverse;
pub mod tree;

pub use integrate::{LeapfrogIntegrator, TreeBlockIntegrator};
pub use traverse::{tree_forces, tree_forces_ord, MultipoleOrder, TraverseStats};
pub use tree::{Octree, TreeConfig};
