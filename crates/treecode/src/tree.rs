//! Octree construction.
//!
//! A flat-arena octree: nodes live in one `Vec`, children are index
//! octets, and the particle order is permuted so every node owns a
//! contiguous index range — the standard cache-friendly layout for
//! repeated traversals.

use nbody_core::Vec3;

/// Sentinel for "no child".
pub const NO_CHILD: u32 = u32::MAX;

/// Accumulate the traceless point-mass quadrupole `m(3ddᵀ − |d|²I)` into
/// the packed tensor `q`.
#[inline]
fn add_point_quadrupole(q: &mut [f64; 6], m: f64, d: Vec3) {
    let d2 = d.norm2();
    q[0] += m * (3.0 * d.x * d.x - d2);
    q[1] += m * (3.0 * d.y * d.y - d2);
    q[2] += m * (3.0 * d.z * d.z - d2);
    q[3] += m * 3.0 * d.x * d.y;
    q[4] += m * 3.0 * d.x * d.z;
    q[5] += m * 3.0 * d.y * d.z;
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum particles in a leaf before it splits.
    pub leaf_capacity: usize,
    /// Hard depth limit (coincident particles stop splitting here).
    pub max_depth: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 8,
            max_depth: 48,
        }
    }
}

/// One node of the octree.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Geometric centre of the cube.
    pub center: Vec3,
    /// Half the cube's edge length.
    pub half: f64,
    /// Total mass below this node.
    pub mass: f64,
    /// Centre of mass below this node.
    pub com: Vec3,
    /// Range of (permuted) particle indices owned by this node.
    pub start: u32,
    /// One past the last owned particle index.
    pub end: u32,
    /// Child node indices (`NO_CHILD` = absent); all `NO_CHILD` ⇔ leaf.
    pub children: [u32; 8],
}

impl Node {
    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        self.children == [NO_CHILD; 8]
    }

    /// Number of particles below this node.
    pub fn count(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// A built octree.  `order[k]` is the original index of the k-th particle
/// in tree order; `pos`/`mass` are stored in tree order.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Tree-order → original-index permutation.
    pub order: Vec<u32>,
    /// Positions in tree order.
    pub pos: Vec<Vec3>,
    /// Masses in tree order.
    pub mass: Vec<f64>,
    /// Traceless quadrupole moments per node about the node's COM, packed
    /// symmetric `[xx, yy, zz, xy, xz, yz]` — `Q = Σ m (3 x xᵀ − |x|² I)`
    /// with `x` relative to the COM.  Enables the quadrupole-order
    /// traversal (McMillan & Aarseth 1993 used up to octupole for the
    /// individual-timestep tree the paper's §1 cites).
    pub quad: Vec<[f64; 6]>,
}

impl Octree {
    /// Build an octree over the given particles.
    pub fn build(mass: &[f64], pos: &[Vec3], cfg: &TreeConfig) -> Self {
        let n = pos.len();
        assert_eq!(mass.len(), n);
        assert!(n > 0, "cannot build a tree over zero particles");
        // Bounding cube.
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = -lo;
        for p in pos {
            lo = Vec3::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z));
            hi = Vec3::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z));
        }
        let center = (lo + hi) * 0.5;
        let half = 0.5 * (hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z).max(1e-12);

        let mut tree = Octree {
            nodes: Vec::with_capacity(2 * n / cfg.leaf_capacity.max(1) + 16),
            order: (0..n as u32).collect(),
            pos: pos.to_vec(),
            mass: mass.to_vec(),
            quad: Vec::new(),
        };
        tree.nodes.push(Node {
            center,
            half,
            mass: 0.0,
            com: Vec3::ZERO,
            start: 0,
            end: n as u32,
            children: [NO_CHILD; 8],
        });
        tree.split(0, cfg, 0);
        tree.quad = vec![[0.0; 6]; tree.nodes.len()];
        tree.compute_moments(0);
        tree
    }

    /// Octant of `p` relative to `c`.
    #[inline]
    fn octant(c: Vec3, p: Vec3) -> usize {
        (usize::from(p.x >= c.x)) | (usize::from(p.y >= c.y) << 1) | (usize::from(p.z >= c.z) << 2)
    }

    fn split(&mut self, node: usize, cfg: &TreeConfig, depth: usize) {
        let (start, end, center, half) = {
            let n = &self.nodes[node];
            (n.start as usize, n.end as usize, n.center, n.half)
        };
        if end - start <= cfg.leaf_capacity || depth >= cfg.max_depth {
            return;
        }
        // Partition the range into the eight octants (counting sort).
        let mut counts = [0usize; 8];
        for k in start..end {
            counts[Self::octant(center, self.pos[k])] += 1;
        }
        let mut starts = [0usize; 8];
        let mut acc = start;
        for o in 0..8 {
            starts[o] = acc;
            acc += counts[o];
        }
        // Permute (pos, mass, order) into octant order with a scratch pass.
        let mut cursor = starts;
        let mut new_pos = vec![Vec3::ZERO; end - start];
        let mut new_mass = vec![0.0f64; end - start];
        let mut new_order = vec![0u32; end - start];
        for k in start..end {
            let o = Self::octant(center, self.pos[k]);
            let dst = cursor[o] - start;
            cursor[o] += 1;
            new_pos[dst] = self.pos[k];
            new_mass[dst] = self.mass[k];
            new_order[dst] = self.order[k];
        }
        self.pos[start..end].copy_from_slice(&new_pos);
        self.mass[start..end].copy_from_slice(&new_mass);
        self.order[start..end].copy_from_slice(&new_order);
        // Create children and recurse.
        let quarter = half * 0.5;
        let mut children = [NO_CHILD; 8];
        for o in 0..8 {
            if counts[o] == 0 {
                continue;
            }
            let ccenter = Vec3::new(
                center.x + if o & 1 != 0 { quarter } else { -quarter },
                center.y + if o & 2 != 0 { quarter } else { -quarter },
                center.z + if o & 4 != 0 { quarter } else { -quarter },
            );
            let idx = self.nodes.len() as u32;
            children[o] = idx;
            self.nodes.push(Node {
                center: ccenter,
                half: quarter,
                mass: 0.0,
                com: Vec3::ZERO,
                start: starts[o] as u32,
                end: (starts[o] + counts[o]) as u32,
                children: [NO_CHILD; 8],
            });
        }
        self.nodes[node].children = children;
        for &c in &children {
            if c != NO_CHILD {
                self.split(c as usize, cfg, depth + 1);
            }
        }
    }

    fn compute_moments(&mut self, node: usize) {
        let (start, end, children) = {
            let n = &self.nodes[node];
            (n.start as usize, n.end as usize, n.children)
        };
        if self.nodes[node].is_leaf() {
            let mut m = 0.0;
            let mut c = Vec3::ZERO;
            for k in start..end {
                m += self.mass[k];
                c += self.pos[k] * self.mass[k];
            }
            let com = if m > 0.0 {
                c / m
            } else {
                self.nodes[node].center
            };
            self.nodes[node].mass = m;
            self.nodes[node].com = com;
            // Quadrupole about the COM, directly from the particles.
            let mut q = [0.0f64; 6];
            for k in start..end {
                add_point_quadrupole(&mut q, self.mass[k], self.pos[k] - com);
            }
            self.quad[node] = q;
            return;
        }
        let mut m = 0.0;
        let mut c = Vec3::ZERO;
        for child in children {
            if child == NO_CHILD {
                continue;
            }
            self.compute_moments(child as usize);
            let ch = &self.nodes[child as usize];
            m += ch.mass;
            c += ch.com * ch.mass;
        }
        let com = if m > 0.0 {
            c / m
        } else {
            self.nodes[node].center
        };
        self.nodes[node].mass = m;
        self.nodes[node].com = com;
        // Parallel-axis composition: a child's quadrupole about the parent
        // COM is its own quadrupole plus the point-mass term of its COM.
        let mut q = [0.0f64; 6];
        for child in children {
            if child == NO_CHILD {
                continue;
            }
            let ci = child as usize;
            let ch_mass = self.nodes[ci].mass;
            let d = self.nodes[ci].com - com;
            for (qa, &ca) in q.iter_mut().zip(&self.quad[ci]) {
                *qa += ca;
            }
            add_point_quadrupole(&mut q, ch_mass, d);
        }
        self.quad[node] = q;
    }

    /// Number of particles.
    pub fn n(&self) -> usize {
        self.pos.len()
    }

    /// Quadrupole moment of node `i` (packed `[xx, yy, zz, xy, xz, yz]`).
    pub fn quadrupole(&self, i: usize) -> &[f64; 6] {
        &self.quad[i]
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize) -> (Vec<f64>, Vec<Vec3>) {
        let s = plummer_model(n, &mut StdRng::seed_from_u64(8));
        (s.mass, s.pos)
    }

    #[test]
    fn root_mass_and_com_match_totals() {
        let (mass, pos) = sample(500);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        let m: f64 = mass.iter().sum();
        let com: Vec3 = mass.iter().zip(&pos).map(|(&mi, &p)| p * mi).sum::<Vec3>() / m;
        assert!((t.root().mass - m).abs() < 1e-12);
        assert!((t.root().com - com).norm() < 1e-12);
        assert_eq!(t.root().count(), 500);
    }

    #[test]
    fn every_node_consistent_with_children() {
        let (mass, pos) = sample(300);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        for node in &t.nodes {
            if node.is_leaf() {
                assert!(node.count() <= TreeConfig::default().leaf_capacity || node.half < 1e-9);
                continue;
            }
            let mut m = 0.0;
            let mut cnt = 0;
            for c in node.children {
                if c == NO_CHILD {
                    continue;
                }
                let ch = &t.nodes[c as usize];
                m += ch.mass;
                cnt += ch.count();
                // Child cube inside parent cube.
                assert!(ch.half <= node.half * 0.5 + 1e-15);
            }
            assert!((m - node.mass).abs() < 1e-12);
            assert_eq!(cnt, node.count());
        }
    }

    #[test]
    fn particles_inside_their_leaf() {
        let (mass, pos) = sample(200);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        for node in &t.nodes {
            if !node.is_leaf() {
                continue;
            }
            for k in node.start as usize..node.end as usize {
                let d = t.pos[k] - node.center;
                // Loose bound (boundary assignment uses >=).
                assert!(d.x.abs() <= node.half * (1.0 + 1e-9) + 1e-12);
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let (mass, pos) = sample(128);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        let mut seen = [false; 128];
        for &o in &t.order {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Tree-order data matches the original through the permutation.
        for k in 0..128 {
            assert_eq!(t.pos[k], pos[t.order[k] as usize]);
        }
    }

    #[test]
    fn coincident_particles_do_not_recurse_forever() {
        let mass = vec![1.0; 32];
        let pos = vec![Vec3::new(0.5, 0.5, 0.5); 32];
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        assert!(t.nodes.len() < 10_000);
        assert!((t.root().mass - 32.0).abs() < 1e-12);
    }

    #[test]
    fn quadrupole_is_traceless_everywhere() {
        let (mass, pos) = sample(400);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        for (i, node) in t.nodes.iter().enumerate() {
            if node.mass == 0.0 {
                continue;
            }
            let q = t.quadrupole(i);
            let trace = q[0] + q[1] + q[2];
            let scale = q.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1e-30);
            assert!(
                trace.abs() < 1e-10 * scale.max(1.0),
                "node {i}: trace {trace:e}"
            );
        }
    }

    #[test]
    fn root_quadrupole_matches_direct_computation() {
        let (mass, pos) = sample(300);
        let t = Octree::build(&mass, &pos, &TreeConfig::default());
        let com = t.root().com;
        let mut want = [0.0f64; 6];
        for k in 0..300 {
            let d = pos[k] - com;
            let d2 = d.norm2();
            want[0] += mass[k] * (3.0 * d.x * d.x - d2);
            want[1] += mass[k] * (3.0 * d.y * d.y - d2);
            want[2] += mass[k] * (3.0 * d.z * d.z - d2);
            want[3] += mass[k] * 3.0 * d.x * d.y;
            want[4] += mass[k] * 3.0 * d.x * d.z;
            want[5] += mass[k] * 3.0 * d.y * d.z;
        }
        let got = t.quadrupole(0);
        for a in 0..6 {
            assert!(
                (got[a] - want[a]).abs() < 1e-10,
                "component {a}: {} vs {}",
                got[a],
                want[a]
            );
        }
    }

    #[test]
    fn node_count_scales_linearly() {
        let (m1, p1) = sample(1000);
        let (m2, p2) = sample(4000);
        let t1 = Octree::build(&m1, &p1, &TreeConfig::default());
        let t2 = Octree::build(&m2, &p2, &TreeConfig::default());
        let ratio = t2.nodes.len() as f64 / t1.nodes.len() as f64;
        assert!(ratio > 2.0 && ratio < 8.0, "node ratio {ratio}");
    }
}
