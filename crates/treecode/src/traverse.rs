//! Force evaluation by tree traversal.
//!
//! The classic Barnes–Hut multipole acceptance criterion: a cell of edge
//! length `ℓ` at distance `d` from the target is accepted as a single
//! monopole when `ℓ/d < θ`; otherwise it is opened.  Forces are softened
//! with the same Plummer kernel as the direct code, so accuracy
//! comparisons are apples-to-apples.

use nbody_core::force::pair_force;
use nbody_core::Vec3;
use rayon::prelude::*;

use crate::tree::{Octree, NO_CHILD};

/// Multipole expansion order used for accepted cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MultipoleOrder {
    /// Centre-of-mass monopole only (classic Barnes–Hut).
    #[default]
    Monopole,
    /// Monopole + traceless quadrupole — cuts the cell error by roughly
    /// another power of (ℓ/d), the first step towards the octupole
    /// expansion of McMillan & Aarseth (1993).
    Quadrupole,
}

/// Quadrupole acceleration and potential at displacement `r` (pointing
/// from the target to the cell COM) for packed traceless `q`:
/// `φ = −(rᵀQr)/(2r⁵)`, `a = ∇_r φ = −Qr/r⁵ + (5/2)(rᵀQr) r/r⁷`.
#[inline]
fn quad_terms(q: &[f64; 6], r: Vec3) -> (Vec3, f64) {
    let r2 = r.norm2();
    let r1 = r2.sqrt();
    let r5 = r2 * r2 * r1;
    let r7 = r5 * r2;
    let qr = Vec3::new(
        q[0] * r.x + q[3] * r.y + q[4] * r.z,
        q[3] * r.x + q[1] * r.y + q[5] * r.z,
        q[4] * r.x + q[5] * r.y + q[2] * r.z,
    );
    let rqr = r.dot(qr);
    let acc = qr * (-1.0 / r5) + r * (2.5 * rqr / r7);
    let pot = -0.5 * rqr / r5;
    (acc, pot)
}

/// Interaction counters from a traversal (cost model input).
#[derive(Clone, Copy, Debug, Default)]
pub struct TraverseStats {
    /// Particle–cell (monopole) interactions.
    pub cell_interactions: u64,
    /// Particle–particle (leaf) interactions.
    pub leaf_interactions: u64,
}

impl TraverseStats {
    /// Total interaction count.
    pub fn total(&self) -> u64 {
        self.cell_interactions + self.leaf_interactions
    }
}

/// Acceleration + potential on one target position.
///
/// `skip` is the tree-order index of the target itself (`usize::MAX` for
/// external probes), excluded from leaf interactions.
pub fn force_on(
    tree: &Octree,
    target: Vec3,
    skip: usize,
    theta: f64,
    eps2: f64,
    stats: &mut TraverseStats,
) -> (Vec3, f64) {
    force_on_ord(
        tree,
        target,
        skip,
        theta,
        eps2,
        MultipoleOrder::Monopole,
        stats,
    )
}

/// [`force_on`] with a selectable multipole order.
pub fn force_on_ord(
    tree: &Octree,
    target: Vec3,
    skip: usize,
    theta: f64,
    eps2: f64,
    order: MultipoleOrder,
    stats: &mut TraverseStats,
) -> (Vec3, f64) {
    let mut acc = Vec3::ZERO;
    let mut pot = 0.0;
    let theta2 = theta * theta;
    // Explicit stack: avoids recursion overhead and depth limits.
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    stack.push(0);
    while let Some(ni) = stack.pop() {
        let node = &tree.nodes[ni as usize];
        if node.mass == 0.0 {
            continue;
        }
        let d = node.com - target;
        let d2 = d.norm2();
        let size = 2.0 * node.half;
        // Accept if (ℓ/d)² < θ² and the target is not inside the cell.
        let accept = !node.is_leaf() && size * size < theta2 * d2;
        if accept {
            let (a, _, p) = pair_force(d, Vec3::ZERO, node.mass, eps2);
            acc += a;
            pot += p;
            if order == MultipoleOrder::Quadrupole {
                // Softening is negligible at accepted-cell distances
                // (ℓ/d < θ ⇒ d ≫ ε for sane ε); the quadrupole term is
                // evaluated unsoftened, as production treecodes do.
                let (aq, pq) = quad_terms(tree.quadrupole(ni as usize), d);
                acc += aq;
                pot += pq;
            }
            stats.cell_interactions += 1;
        } else if node.is_leaf() {
            for k in node.start as usize..node.end as usize {
                if k == skip {
                    continue;
                }
                let (a, _, p) = pair_force(tree.pos[k] - target, Vec3::ZERO, tree.mass[k], eps2);
                acc += a;
                pot += p;
                stats.leaf_interactions += 1;
            }
        } else {
            for c in node.children {
                if c != NO_CHILD {
                    stack.push(c);
                }
            }
        }
    }
    (acc, pot)
}

/// Accelerations and potentials on every particle (original index order).
/// Parallel over targets; returns the summed traversal statistics.
pub fn tree_forces(tree: &Octree, theta: f64, eps2: f64) -> (Vec<Vec3>, Vec<f64>, TraverseStats) {
    tree_forces_ord(tree, theta, eps2, MultipoleOrder::Monopole)
}

/// [`tree_forces`] with a selectable multipole order.
pub fn tree_forces_ord(
    tree: &Octree,
    theta: f64,
    eps2: f64,
    order: MultipoleOrder,
) -> (Vec<Vec3>, Vec<f64>, TraverseStats) {
    let n = tree.n();
    let results: Vec<(Vec3, f64, TraverseStats)> = (0..n)
        .into_par_iter()
        .map(|k| {
            let mut st = TraverseStats::default();
            let (a, p) = force_on_ord(tree, tree.pos[k], k, theta, eps2, order, &mut st);
            (a, p, st)
        })
        .collect();
    let mut acc = vec![Vec3::ZERO; n];
    let mut pot = vec![0.0; n];
    let mut stats = TraverseStats::default();
    for (k, (a, p, st)) in results.into_iter().enumerate() {
        let orig = tree.order[k] as usize;
        acc[orig] = a;
        pot[orig] = p;
        stats.cell_interactions += st.cell_interactions;
        stats.leaf_interactions += st.leaf_interactions;
    }
    (acc, pot, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use nbody_core::force::direct_all;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, seed: u64) -> (Vec<f64>, Vec<Vec3>, Vec<Vec3>) {
        let s = plummer_model(n, &mut StdRng::seed_from_u64(seed));
        (s.mass, s.pos, s.vel)
    }

    #[test]
    fn theta_zero_is_exact() {
        let (mass, pos, vel) = sample(200, 1);
        let eps2 = 1e-4;
        let tree = Octree::build(&mass, &pos, &TreeConfig::default());
        let (acc, pot, _) = tree_forces(&tree, 0.0, eps2);
        let want = direct_all(&mass, &pos, &vel, eps2);
        for i in 0..200 {
            assert!((acc[i] - want[i].acc).norm() < 1e-11, "i={i}");
            assert!((pot[i] - want[i].pot).abs() < 1e-11);
        }
    }

    #[test]
    fn accuracy_degrades_gracefully_with_theta() {
        let (mass, pos, vel) = sample(1000, 2);
        let eps2 = 1e-4;
        let tree = Octree::build(&mass, &pos, &TreeConfig::default());
        let want = direct_all(&mass, &pos, &vel, eps2);
        let rms_err = |theta: f64| -> f64 {
            let (acc, _, _) = tree_forces(&tree, theta, eps2);
            let mut s = 0.0;
            for i in 0..1000 {
                let rel = (acc[i] - want[i].acc).norm() / want[i].acc.norm();
                s += rel * rel;
            }
            (s / 1000.0).sqrt()
        };
        let e_small = rms_err(0.3);
        let e_mid = rms_err(0.6);
        let e_big = rms_err(1.0);
        assert!(
            e_small < e_mid && e_mid < e_big,
            "{e_small} {e_mid} {e_big}"
        );
        assert!(e_small < 2e-3, "θ=0.3 rms error {e_small}");
        assert!(e_big < 0.1, "θ=1.0 rms error {e_big}");
    }

    #[test]
    fn interaction_count_scales_n_log_n() {
        let eps2 = 1e-4;
        let count = |n: usize| -> f64 {
            let (mass, pos, _) = sample(n, 3);
            let tree = Octree::build(&mass, &pos, &TreeConfig::default());
            let (_, _, st) = tree_forces(&tree, 0.6, eps2);
            st.total() as f64
        };
        let c1 = count(1000);
        let c4 = count(4000);
        // O(N log N)-ish: ratio well below the direct-summation 16 (leaf
        // granularity and the Plummer core push it above the ideal 4.8).
        let ratio = c4 / c1;
        assert!(ratio > 3.5 && ratio < 11.0, "scaling ratio {ratio}");
        // And far below the direct count.
        assert!(c4 < (4000.0f64 * 3999.0) * 0.5);
    }

    #[test]
    fn quadrupole_beats_monopole_at_fixed_theta() {
        let (mass, pos, vel) = sample(1500, 9);
        let eps2 = 1e-4;
        let tree = Octree::build(&mass, &pos, &TreeConfig::default());
        let want = direct_all(&mass, &pos, &vel, eps2);
        let rms = |order: MultipoleOrder| -> f64 {
            let (acc, _, _) = tree_forces_ord(&tree, 0.7, eps2, order);
            let mut s = 0.0;
            for i in 0..1500 {
                let rel = (acc[i] - want[i].acc).norm() / want[i].acc.norm();
                s += rel * rel;
            }
            (s / 1500.0).sqrt()
        };
        let mono = rms(MultipoleOrder::Monopole);
        let quad = rms(MultipoleOrder::Quadrupole);
        assert!(
            quad < mono * 0.6,
            "quadrupole rms {quad:e} should clearly beat monopole {mono:e}"
        );
    }

    #[test]
    fn quadrupole_exact_for_distant_dipole_free_pair() {
        // Two equal masses symmetric about the origin: monopole at the COM
        // misses the quadrupole field entirely; the quadrupole term must
        // recover it to O((ℓ/d)²) relative accuracy.
        let mass = vec![0.5, 0.5];
        let pos = vec![Vec3::new(0.1, 0.0, 0.0), Vec3::new(-0.1, 0.0, 0.0)];
        // leaf_capacity 1 forces the root to be an internal cell, so the
        // huge θ below accepts it as a multipole instead of summing leaves.
        let cfg = TreeConfig {
            leaf_capacity: 1,
            ..TreeConfig::default()
        };
        let tree = Octree::build(&mass, &pos, &cfg);
        let probe = Vec3::new(0.0, 2.0, 0.0);
        // Exact field.
        let mut exact = Vec3::ZERO;
        for k in 0..2 {
            let (a, _, _) = pair_force(pos[k] - probe, Vec3::ZERO, mass[k], 0.0);
            exact += a;
        }
        let mut st = TraverseStats::default();
        // Huge θ forces acceptance of the root cell.
        let (a_mono, _) = force_on_ord(
            &tree,
            probe,
            usize::MAX,
            10.0,
            0.0,
            MultipoleOrder::Monopole,
            &mut st,
        );
        let (a_quad, _) = force_on_ord(
            &tree,
            probe,
            usize::MAX,
            10.0,
            0.0,
            MultipoleOrder::Quadrupole,
            &mut st,
        );
        let err_mono = (a_mono - exact).norm() / exact.norm();
        let err_quad = (a_quad - exact).norm() / exact.norm();
        assert!(
            err_quad < err_mono / 10.0,
            "quad err {err_quad:e} vs mono err {err_mono:e}"
        );
    }

    #[test]
    fn external_probe_uses_all_particles() {
        let (mass, pos, _) = sample(100, 4);
        let tree = Octree::build(&mass, &pos, &TreeConfig::default());
        let probe = Vec3::new(50.0, 0.0, 0.0); // far away: single monopole
        let mut st = TraverseStats::default();
        let (acc, pot) = force_on(&tree, probe, usize::MAX, 0.6, 0.0, &mut st);
        // Far-field: matches a point mass at the COM.
        let m: f64 = mass.iter().sum();
        let want = pair_force(tree.root().com - probe, Vec3::ZERO, m, 0.0);
        assert!((acc - want.0).norm() / want.0.norm() < 1e-4);
        assert!((pot - want.2).abs() / want.2.abs() < 1e-4);
    }
}
