//! Treecode time integration: shared-timestep leapfrog and a block-step
//! variant.
//!
//! §5's comparison logic: Warren et al.'s shared-timestep treecode on
//! ASCI-Red delivered 2.55×10⁶ particle-steps/s, "around 7 times faster
//! than GRAPE-6.  However, this is for shared timestep.  If we use shared
//! timestep, we need at least 100 times more particle steps, since the
//! ratio between the smallest timestep and (harmonic) mean timestep is
//! larger than 100."  Both drivers below count particle steps so the
//! benchmark harness can reproduce that argument with measured numbers.

use nbody_core::diagnostics::energy;
use nbody_core::particle::ParticleSet;
use nbody_core::Vec3;

use crate::traverse::{tree_forces, TraverseStats};
use crate::tree::{Octree, TreeConfig};

/// Shared-timestep (kick-drift-kick leapfrog) treecode driver.
pub struct LeapfrogIntegrator {
    /// The system (all particles share the same time).
    pub set: ParticleSet,
    /// Opening angle.
    pub theta: f64,
    /// Squared softening.
    pub eps2: f64,
    /// Fixed timestep.
    pub dt: f64,
    tree_cfg: TreeConfig,
    acc: Vec<Vec3>,
    t: f64,
    steps: u64,
    stats: TraverseStats,
}

impl LeapfrogIntegrator {
    /// Initialise (builds the first tree and forces).
    pub fn new(set: ParticleSet, theta: f64, eps2: f64, dt: f64) -> Self {
        let tree_cfg = TreeConfig::default();
        let tree = Octree::build(&set.mass, &set.pos, &tree_cfg);
        let (acc, _, stats) = tree_forces(&tree, theta, eps2);
        Self {
            set,
            theta,
            eps2,
            dt,
            tree_cfg,
            acc,
            t: 0.0,
            steps: 0,
            stats,
        }
    }

    /// One KDK step: v += a·dt/2; x += v·dt; rebuild tree; v += a'·dt/2.
    #[allow(clippy::needless_range_loop)] // indexed sweeps over parallel arrays
    pub fn step(&mut self) {
        let n = self.set.n();
        let half = 0.5 * self.dt;
        for i in 0..n {
            self.set.vel[i] += self.acc[i] * half;
            self.set.pos[i] += self.set.vel[i] * self.dt;
        }
        let tree = Octree::build(&self.set.mass, &self.set.pos, &self.tree_cfg);
        let (acc, pot, st) = tree_forces(&tree, self.theta, self.eps2);
        self.stats.cell_interactions += st.cell_interactions;
        self.stats.leaf_interactions += st.leaf_interactions;
        for i in 0..n {
            self.set.vel[i] += acc[i] * half;
        }
        self.set.pot.copy_from_slice(&pot);
        self.acc = acc;
        self.t += self.dt;
        self.steps += n as u64;
        for ti in &mut self.set.t {
            *ti = self.t;
        }
    }

    /// Advance to at least `t_end`.
    pub fn run_until(&mut self, t_end: f64) {
        while self.t < t_end - 1e-12 {
            self.step();
        }
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Total particle steps so far (N per shared step).
    pub fn particle_steps(&self) -> u64 {
        self.steps
    }

    /// Accumulated traversal statistics.
    pub fn traverse_stats(&self) -> TraverseStats {
        self.stats
    }
}

/// A simple 2-level block-timestep treecode: particles are assigned to a
/// fast or slow group by acceleration magnitude and the fast group is
/// substepped `refine` times per slow step.  (A minimal stand-in for the
/// individual-timestep treecodes of McMillan & Aarseth 1993 — enough to
/// measure how many particle steps individual stepping saves.)
pub struct TreeBlockIntegrator {
    /// The system.
    pub set: ParticleSet,
    /// Opening angle.
    pub theta: f64,
    /// Squared softening.
    pub eps2: f64,
    /// Slow-group timestep.
    pub dt_slow: f64,
    /// Substeps of the fast group per slow step.
    pub refine: usize,
    /// Fraction of particles (by acceleration rank) in the fast group.
    pub fast_fraction: f64,
    tree_cfg: TreeConfig,
    t: f64,
    steps: u64,
}

impl TreeBlockIntegrator {
    /// Initialise.
    pub fn new(set: ParticleSet, theta: f64, eps2: f64, dt_slow: f64) -> Self {
        Self {
            set,
            theta,
            eps2,
            dt_slow,
            refine: 8,
            fast_fraction: 0.1,
            tree_cfg: TreeConfig::default(),
            t: 0.0,
            steps: 0,
        }
    }

    /// One slow step (with fast-group substepping).
    pub fn step(&mut self) {
        let n = self.set.n();
        let tree = Octree::build(&self.set.mass, &self.set.pos, &self.tree_cfg);
        let (acc, _, _) = tree_forces(&tree, self.theta, self.eps2);
        // Rank by |a|: top fast_fraction substep.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| acc[b].norm().partial_cmp(&acc[a].norm()).unwrap());
        let n_fast = ((n as f64 * self.fast_fraction) as usize).max(1);
        let fast = &idx[..n_fast];
        let slow = &idx[n_fast..];
        // Slow group: one leapfrog step with dt_slow.
        let half = 0.5 * self.dt_slow;
        for &i in slow {
            self.set.vel[i] += acc[i] * half;
            self.set.pos[i] += self.set.vel[i] * self.dt_slow;
        }
        // Fast group: `refine` substeps (forces refreshed each substep
        // against the frozen slow background — a standard simplification).
        let dt_f = self.dt_slow / self.refine as f64;
        for _ in 0..self.refine {
            let sub = Octree::build(&self.set.mass, &self.set.pos, &self.tree_cfg);
            for &i in fast {
                let mut st = TraverseStats::default();
                // Find tree-order slot of particle i for self-exclusion.
                let k = sub.order.iter().position(|&o| o as usize == i).unwrap();
                let (a, _) =
                    crate::traverse::force_on(&sub, sub.pos[k], k, self.theta, self.eps2, &mut st);
                self.set.vel[i] += a * (0.5 * dt_f);
                self.set.pos[i] += self.set.vel[i] * dt_f;
                self.set.vel[i] += a * (0.5 * dt_f);
            }
            self.steps += fast.len() as u64;
        }
        // Close the slow kick with refreshed forces.
        let tree2 = Octree::build(&self.set.mass, &self.set.pos, &self.tree_cfg);
        let (acc2, _, _) = tree_forces(&tree2, self.theta, self.eps2);
        for &i in slow {
            self.set.vel[i] += acc2[i] * half;
        }
        self.steps += slow.len() as u64;
        self.t += self.dt_slow;
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Total particle steps.
    pub fn particle_steps(&self) -> u64 {
        self.steps
    }
}

/// Convenience: relative energy error of a leapfrog run from `set` over
/// `t_end` at the given parameters (benchmark helper).
pub fn leapfrog_energy_error(set: &ParticleSet, theta: f64, eps2: f64, dt: f64, t_end: f64) -> f64 {
    let e0 = energy(set, eps2);
    let mut lf = LeapfrogIntegrator::new(set.clone(), theta, eps2, dt);
    lf.run_until(t_end);
    let e1 = energy(&lf.set, eps2);
    ((e1.total() - e0.total()) / e0.total()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plummer(n: usize) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(77))
    }

    #[test]
    fn leapfrog_conserves_energy() {
        let set = plummer(256);
        let err = leapfrog_energy_error(&set, 0.5, 1e-4, 1.0 / 256.0, 0.5);
        assert!(err < 2e-3, "leapfrog energy error {err:e}");
    }

    #[test]
    fn leapfrog_error_scales_with_dt_squared() {
        let set = plummer(128);
        let e1 = leapfrog_energy_error(&set, 0.0, 1e-3, 1.0 / 64.0, 0.25);
        let e2 = leapfrog_energy_error(&set, 0.0, 1e-3, 1.0 / 256.0, 0.25);
        // 2nd-order scheme: 4× smaller dt → ~16× smaller error; allow slop
        // because the error is dominated by a few close encounters.
        assert!(e2 < e1, "dt/4 error {e2:e} should beat {e1:e}");
    }

    #[test]
    fn particle_step_accounting() {
        let set = plummer(64);
        let mut lf = LeapfrogIntegrator::new(set, 0.6, 1e-4, 0.0625);
        lf.run_until(0.25);
        assert_eq!(lf.particle_steps(), 4 * 64);
        assert!((lf.time() - 0.25).abs() < 1e-12);
        assert!(lf.traverse_stats().total() > 0);
    }

    #[test]
    fn block_variant_does_fewer_steps_than_equivalent_shared() {
        // To resolve the fast group at dt_slow/8 with shared steps, ALL
        // particles would step 8× per slow step; the block variant only
        // substeps 10 %.
        let set = plummer(128);
        let mut blk = TreeBlockIntegrator::new(set.clone(), 0.6, 1e-4, 0.0625);
        blk.step();
        let block_steps = blk.particle_steps();
        let shared_equiv = 8 * 128; // shared stepping at the fast dt
        assert!(
            (block_steps as f64) < 0.45 * shared_equiv as f64,
            "block {block_steps} vs shared-equivalent {shared_equiv}"
        );
    }

    #[test]
    fn block_variant_advances_time() {
        let set = plummer(64);
        let mut blk = TreeBlockIntegrator::new(set, 0.6, 1e-4, 0.03125);
        blk.step();
        blk.step();
        assert!((blk.time() - 0.0625).abs() < 1e-12);
    }
}
