//! Power-of-two block timestep quantisation.
//!
//! The individual-timestep algorithm becomes the *block*step algorithm
//! (McMillan 1986, and §3.2 of the paper) when timesteps are quantised to
//! powers of two: all particles whose next time coincides form a block and
//! are advanced together, so the O(N) prediction pass and the GRAPE call are
//! amortised over the whole block.  Every performance figure in the paper is
//! phrased per blockstep, so the quantisation rules here directly shape the
//! benchmark results:
//!
//! * a step is always `2^k` for integer `k` (`k` may be negative);
//! * a particle's time must remain commensurate: `t` is a multiple of `dt`;
//! * a step may at most *double* from one step to the next, and only when
//!   the current time is aligned to the doubled step;
//! * steps shrink freely (any power of two below the desired step).

/// The scheduling grid: bounds on the allowed power-of-two steps.
#[derive(Clone, Copy, Debug)]
pub struct TimeGrid {
    /// Largest allowed step (power of two), e.g. `2^-3`.
    pub dt_max: f64,
    /// Smallest allowed step; a required step below this is clamped (and
    /// counted, so runs can report timestep underflow).
    pub dt_min: f64,
}

impl Default for TimeGrid {
    fn default() -> Self {
        Self {
            dt_max: 0.125,
            dt_min: 2f64.powi(-40),
        }
    }
}

impl TimeGrid {
    /// Largest power of two that is ≤ `dt`, clamped to the grid bounds.
    pub fn quantize(&self, dt: f64) -> f64 {
        block_dt(dt).clamp(self.dt_min, self.dt_max)
    }

    /// The block-scheme step update: starting from current step `dt_old` at
    /// time `t` (just advanced), choose the next step towards desired
    /// accuracy step `dt_want`.
    ///
    /// Shrinking: halve as often as needed.  Growing: at most double, and
    /// only if `t` is aligned on the doubled step.
    pub fn next_step(&self, t: f64, dt_old: f64, dt_want: f64) -> f64 {
        let want = self.quantize(dt_want);
        if want <= dt_old {
            return want.max(self.dt_min);
        }
        let doubled = (dt_old * 2.0).min(self.dt_max);
        if doubled > dt_old && is_aligned(t, doubled) {
            doubled
        } else {
            dt_old
        }
    }
}

/// Largest power of two ≤ `dt` (for positive finite `dt`).
pub fn block_dt(dt: f64) -> f64 {
    if dt <= 0.0 || !dt.is_finite() {
        // An infinite desired step means "no constraint": take a huge power
        // of two and let the grid clamp it.
        return if dt == f64::INFINITY {
            2f64.powi(60)
        } else {
            0.0
        };
    }
    let e = dt.log2().floor();
    let candidate = 2f64.powf(e);
    // Guard against log2 rounding at exact powers of two.
    if candidate * 2.0 <= dt {
        candidate * 2.0
    } else if candidate > dt {
        candidate / 2.0
    } else {
        candidate
    }
}

/// Is `t` an integer multiple of the power-of-two step `dt`?
///
/// Times and power-of-two steps are exactly representable in f64 (down to
/// `2^-52` per unit), so this is an exact test, not an epsilon comparison.
pub fn is_aligned(t: f64, dt: f64) -> bool {
    if dt == 0.0 {
        return false;
    }
    let q = t / dt;
    q == q.floor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_dt_is_floor_power_of_two() {
        assert_eq!(block_dt(1.0), 1.0);
        assert_eq!(block_dt(0.9), 0.5);
        assert_eq!(block_dt(0.5), 0.5);
        assert_eq!(block_dt(0.49999), 0.25);
        assert_eq!(block_dt(3.7), 2.0);
        assert_eq!(block_dt(2f64.powi(-17) * 1.5), 2f64.powi(-17));
        assert_eq!(block_dt(0.0), 0.0);
        assert_eq!(block_dt(-1.0), 0.0);
    }

    #[test]
    fn block_dt_never_exceeds_input() {
        let mut x = 1.0e-9;
        while x < 1.0e9 {
            let b = block_dt(x);
            assert!(b <= x, "block_dt({x}) = {b}");
            assert!(b > x / 2.0, "block_dt({x}) = {b} not the floor");
            x *= 1.37;
        }
    }

    #[test]
    fn quantize_respects_bounds() {
        let g = TimeGrid {
            dt_max: 0.25,
            dt_min: 2f64.powi(-10),
        };
        assert_eq!(g.quantize(10.0), 0.25);
        assert_eq!(g.quantize(2f64.powi(-30)), 2f64.powi(-10));
        assert_eq!(g.quantize(f64::INFINITY), 0.25);
        assert_eq!(g.quantize(0.1), 0.0625);
    }

    #[test]
    fn alignment_is_exact() {
        assert!(is_aligned(0.0, 0.25));
        assert!(is_aligned(0.75, 0.25));
        assert!(!is_aligned(0.75, 0.5));
        assert!(is_aligned(3.0, 1.0));
        let t = 5.0 * 2f64.powi(-20);
        assert!(is_aligned(t, 2f64.powi(-20)));
        assert!(!is_aligned(t, 2f64.powi(-19)));
    }

    #[test]
    fn growth_requires_alignment() {
        let g = TimeGrid::default();
        // At t = 3·2⁻⁵ with dt = 2⁻⁵, doubling to 2⁻⁴ is NOT allowed
        // (t is not a multiple of 2⁻⁴); the step stays.
        assert_eq!(g.next_step(0.09375, 0.03125, 1.0), 0.03125);
        // At t = 0.125 doubling is allowed.
        assert_eq!(g.next_step(0.125, 0.03125, 1.0), 0.0625);
    }

    #[test]
    fn shrink_is_unrestricted() {
        let g = TimeGrid::default();
        assert_eq!(g.next_step(0.375, 0.125, 0.01), 2f64.powi(-7));
        assert_eq!(g.next_step(0.375, 0.125, 1e-30), g.dt_min);
    }

    #[test]
    fn growth_capped_at_doubling_and_dt_max() {
        let g = TimeGrid::default();
        assert_eq!(g.next_step(1.0, 0.03125, 1.0), 0.0625);
        assert_eq!(g.next_step(1.0, g.dt_max, 10.0), g.dt_max);
    }
}
