//! Structure-of-arrays particle storage.
//!
//! The integrators in this workspace are *individual-timestep* codes: every
//! particle carries its own current time `t[i]` and timestep `dt[i]`, and a
//! "block" of particles sharing the same next time is advanced together
//! (Aarseth 1963; the paper's §1 explains why this is the core of every
//! collisional N-body code).  `ParticleSet` therefore stores, per particle:
//! mass, position, velocity, acceleration, jerk, potential, `t`, `dt`, and
//! the 2nd/3rd force derivatives the Hermite corrector produces (the 2nd
//! derivative also feeds the hardware predictor, eq. 6 of the paper).

use crate::vec3::Vec3;

/// SoA storage for an N-body system with individual times.
#[derive(Clone, Debug, Default)]
pub struct ParticleSet {
    /// Particle masses.
    pub mass: Vec<f64>,
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Accelerations (eq. 1).
    pub acc: Vec<Vec3>,
    /// Jerks — first time derivatives of acceleration (eq. 2).
    pub jerk: Vec<Vec3>,
    /// Snaps — second derivatives, from the Hermite corrector; the hardware
    /// predictor's `a⁽²⁾₀` term.
    pub snap: Vec<Vec3>,
    /// Crackles — third derivatives, used by the Aarseth timestep criterion.
    pub crackle: Vec<Vec3>,
    /// Potentials (eq. 3).
    pub pot: Vec<f64>,
    /// Per-particle current time.
    pub t: Vec<f64>,
    /// Per-particle (block-quantised) timestep.
    pub dt: Vec<f64>,
}

impl ParticleSet {
    /// An empty set with capacity for `n` particles.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            mass: Vec::with_capacity(n),
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            acc: Vec::with_capacity(n),
            jerk: Vec::with_capacity(n),
            snap: Vec::with_capacity(n),
            crackle: Vec::with_capacity(n),
            pot: Vec::with_capacity(n),
            t: Vec::with_capacity(n),
            dt: Vec::with_capacity(n),
        }
    }

    /// Number of particles.
    #[inline]
    pub fn n(&self) -> usize {
        self.mass.len()
    }

    /// Append a particle with the given mass, position and velocity; all
    /// derivatives start at zero and must be initialised by the integrator.
    pub fn push(&mut self, mass: f64, pos: Vec3, vel: Vec3) {
        self.mass.push(mass);
        self.pos.push(pos);
        self.vel.push(vel);
        self.acc.push(Vec3::ZERO);
        self.jerk.push(Vec3::ZERO);
        self.snap.push(Vec3::ZERO);
        self.crackle.push(Vec3::ZERO);
        self.pot.push(0.0);
        self.t.push(0.0);
        self.dt.push(0.0);
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Mass-weighted centre of mass position.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        self.mass
            .iter()
            .zip(&self.pos)
            .map(|(&mi, &p)| p * mi)
            .sum::<Vec3>()
            / m
    }

    /// Mass-weighted mean velocity.
    pub fn mean_velocity(&self) -> Vec3 {
        let m = self.total_mass();
        self.mass
            .iter()
            .zip(&self.vel)
            .map(|(&mi, &v)| v * mi)
            .sum::<Vec3>()
            / m
    }

    /// Shift to the centre-of-mass frame (zero mean position and velocity).
    pub fn to_com_frame(&mut self) {
        let com = self.center_of_mass();
        let vm = self.mean_velocity();
        for p in &mut self.pos {
            *p -= com;
        }
        for v in &mut self.vel {
            *v -= vm;
        }
    }

    /// Scale all positions by `alpha` and velocities by `beta` (virial
    /// rescaling of initial conditions).
    pub fn scale(&mut self, alpha: f64, beta: f64) {
        for p in &mut self.pos {
            *p = *p * alpha;
        }
        for v in &mut self.vel {
            *v = *v * beta;
        }
    }

    /// Kinetic energy `½ Σ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .mass
            .iter()
            .zip(&self.vel)
            .map(|(&m, v)| m * v.norm2())
            .sum::<f64>()
    }

    /// Largest |component| over all positions — bounding-box check used
    /// before loading coordinates into the fixed-point memory.
    pub fn max_coordinate(&self) -> f64 {
        self.pos
            .iter()
            .flat_map(|p| p.to_array())
            .fold(0.0f64, |acc, c| acc.max(c.abs()))
    }

    /// Minimum per-particle time (the next block time is the min over
    /// `t[i] + dt[i]`).
    pub fn min_next_time(&self) -> f64 {
        self.t
            .iter()
            .zip(&self.dt)
            .map(|(&t, &dt)| t + dt)
            .fold(f64::INFINITY, f64::min)
    }

    /// Indices of the particles whose next time equals `t_next` — the block
    /// to integrate, in the paper's blockstep sense.
    pub fn block_at(&self, t_next: f64) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| self.t[i] + self.dt[i] == t_next)
            .collect()
    }

    /// Sanity check: every state component finite.
    pub fn validate_finite(&self) -> bool {
        self.pos.iter().all(|p| p.is_finite())
            && self.vel.iter().all(|v| v.is_finite())
            && self.acc.iter().all(|a| a.is_finite())
            && self.jerk.iter().all(|j| j.is_finite())
            && self.mass.iter().all(|m| m.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> ParticleSet {
        let mut s = ParticleSet::with_capacity(2);
        s.push(3.0, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        s.push(1.0, Vec3::new(-3.0, 0.0, 0.0), Vec3::new(0.0, -3.0, 0.0));
        s
    }

    #[test]
    fn com_and_mean_velocity() {
        let s = two_body();
        assert_eq!(s.total_mass(), 4.0);
        assert_eq!(s.center_of_mass(), Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(s.mean_velocity(), Vec3::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn to_com_frame_zeroes_first_moments() {
        let mut s = two_body();
        s.pos[0] += Vec3::new(5.0, 5.0, 5.0);
        s.vel[1] += Vec3::new(0.0, 0.0, 2.0);
        s.to_com_frame();
        assert!(s.center_of_mass().norm() < 1e-14);
        assert!(s.mean_velocity().norm() < 1e-14);
    }

    #[test]
    fn kinetic_energy_formula() {
        let s = two_body();
        // ½(3·1 + 1·9) = 6
        assert_eq!(s.kinetic_energy(), 6.0);
    }

    #[test]
    fn block_selection() {
        let mut s = two_body();
        s.t = vec![0.0, 0.0];
        s.dt = vec![0.25, 0.5];
        assert_eq!(s.min_next_time(), 0.25);
        assert_eq!(s.block_at(0.25), vec![0]);
        s.t[0] = 0.25;
        assert_eq!(s.min_next_time(), 0.5);
        assert_eq!(s.block_at(0.5), vec![0, 1]);
    }

    #[test]
    fn scaling_and_bounds() {
        let mut s = two_body();
        s.scale(2.0, 0.5);
        assert_eq!(s.pos[1], Vec3::new(-6.0, 0.0, 0.0));
        assert_eq!(s.vel[1], Vec3::new(0.0, -1.5, 0.0));
        assert_eq!(s.max_coordinate(), 6.0);
    }

    #[test]
    fn validate_finite_detects_nan() {
        let mut s = two_body();
        assert!(s.validate_finite());
        s.vel[0].y = f64::NAN;
        assert!(!s.validate_finite());
    }
}
