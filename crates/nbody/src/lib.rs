//! # nbody-core — the N-body substrate under the GRAPE-6 reproduction
//!
//! Everything the special-purpose machine *acts on* lives here, independent
//! of any hardware model:
//!
//! * [`vec3`] — a small, allocation-free 3-vector;
//! * [`units`] — Heggie (standard) N-body units and characteristic
//!   timescales (the paper integrates Plummer models "for 1 time unit (we
//!   use the 'Heggie' unit)");
//! * [`particle`] — structure-of-arrays particle storage with per-particle
//!   times and block timesteps;
//! * [`softening`] — the three softening choices benchmarked in §4:
//!   `ε = 1/64`, `ε = 1/[8(2N)^(1/3)]`, `ε = 4/N`;
//! * [`ic`] — initial-condition generators: Plummer spheres (the benchmark
//!   workload), planetesimal disks (the §5 Kuiper-belt application), and the
//!   binary-black-hole setup (§5's second application);
//! * [`force`] — reference double-precision direct-summation kernels
//!   (acceleration, jerk, potential), scalar and rayon-parallel, plus the
//!   [`force::ForceEngine`] abstraction every backend (host f64, simulated
//!   GRAPE-6, treecode) implements;
//! * [`hermite`] — the 4th-order Hermite scheme of Makino & Aarseth (1992):
//!   predictor, corrector, and the Aarseth timestep criterion;
//! * [`blockstep`] — power-of-two block time quantisation shared by all
//!   integrators;
//! * [`diagnostics`] — energy / angular-momentum / virial bookkeeping used
//!   to validate every engine against every other;
//! * [`io`] — versioned snapshot files (the frontends' checkpoint layer).

pub mod blockstep;
pub mod diagnostics;
pub mod force;
pub mod hermite;
pub mod ic;
pub mod io;
pub mod particle;
pub mod softening;
pub mod units;
pub mod vec3;

pub use blockstep::{block_dt, TimeGrid};
pub use force::{
    EngineError, ForceEngine, ForceResult, IParticle, JParticle, FLOPS_PER_INTERACTION,
};
pub use particle::ParticleSet;
pub use softening::Softening;
pub use vec3::Vec3;
