//! Heggie (standard) N-body units and characteristic timescales.
//!
//! The paper's benchmarks "integrated the Plummer model with equal-mass
//! particles for 1 time unit (we use the 'Heggie' unit)".  The Heggie–Mathieu
//! standard units (Heggie & Mathieu 1986) fix
//!
//! * gravitational constant `G = 1`,
//! * total mass `M = 1`,
//! * total energy `E = −1/4`,
//!
//! which implies a virial radius `R_v = 1` and a crossing time
//! `t_cr = 2√2 ≈ 2.83`.  All workloads in this workspace are generated in
//! these units, so "integrate for 1 time unit" means the same thing it does
//! in the paper.

/// Gravitational constant in standard units.
pub const G: f64 = 1.0;

/// Total system mass in standard units.
pub const TOTAL_MASS: f64 = 1.0;

/// Total energy of a standard-units equilibrium model.
pub const STANDARD_ENERGY: f64 = -0.25;

/// Virial radius in standard units (`R_v = −G M² / (2 E)`).
pub const VIRIAL_RADIUS: f64 = 1.0;

/// Crossing time in standard units: `t_cr = G M^(5/2) / (−2E)^(3/2) = 2√2`.
pub const CROSSING_TIME: f64 = 2.828_427_124_746_190_3;

/// Half-mass relaxation time in crossing times (Spitzer 1987 coefficient),
/// `t_rh / t_cr ≈ N / (8 ln Λ)` with `Λ ≈ 0.11 N`.
///
/// The paper's cost argument — total work `O(N³)` because the relaxation
/// timescale grows like `N / log N` — is this formula; exposed so tests and
/// docs can state the scaling explicitly.
pub fn relaxation_time(n: usize) -> f64 {
    let n = n as f64;
    let coulomb_log = (0.11 * n).ln().max(1.0);
    CROSSING_TIME * n / (8.0 * coulomb_log)
}

/// Plummer-model scale length in standard units.
///
/// A Plummer sphere with structural length `a = 1` and `G = M = 1` has
/// energy `E = −3π/64`; rescaling to `E = −1/4` multiplies lengths by
/// `3π/16`.  (Aarseth, Hénon & Wielen 1974.)
pub const PLUMMER_SCALE: f64 = 3.0 * std::f64::consts::PI / 16.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_time_is_2_sqrt2() {
        assert!((CROSSING_TIME - 2.0 * 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn relaxation_grows_superlinearly_over_log() {
        // t_rh(2N)/t_rh(N) → slightly less than 2 (the log grows too).
        let r = relaxation_time(2_000) / relaxation_time(1_000);
        assert!(r > 1.7 && r < 2.0, "ratio = {r}");
        // And it is monotonic in N.
        let mut prev = 0.0;
        for n in [256usize, 1024, 4096, 16384, 65536] {
            let t = relaxation_time(n);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn plummer_scale_matches_energy_argument() {
        // E_plummer(a=1) = -3π/64; scaling lengths by λ scales E by 1/λ.
        let e_model = -3.0 * std::f64::consts::PI / 64.0;
        let lambda = PLUMMER_SCALE;
        assert!((e_model / lambda - STANDARD_ENERGY).abs() < 1e-15);
    }
}
