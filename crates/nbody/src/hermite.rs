//! The 4th-order Hermite scheme (Makino & Aarseth 1992).
//!
//! GRAPE-6 exists *because* of this scheme: it needs the force **and its
//! first time derivative** (57 operations per pair instead of 38), in
//! exchange for 4th-order accuracy from only two force evaluations per step
//! and a natural fit with individual timesteps — "in the cause of the
//! Hermite time integration scheme we need to calculate the first time
//! derivative of the force, resulting in nearly 60 arithmetic operations.
//! This means that we can integrate a large number of arithmetic units into
//! a single hardware with minimal amount of additional logic" (paper §1).
//!
//! The pieces, as pure functions over one particle:
//!
//! * **predict** — Taylor expansion to the block time (the hardware does
//!   this for j-particles; the host for i-particles);
//! * **correct** — given the new force/jerk, reconstruct the 2nd/3rd force
//!   derivatives over the step and apply the 4th/5th-order correction;
//! * **Aarseth timestep** — the standard accuracy-controlled step
//!   `dt = √(η (|a||a⁽²⁾| + |ȧ|²) / (|ȧ||a⁽³⁾| + |a⁽²⁾|²))`.

use crate::force::ForceResult;
use crate::vec3::Vec3;

/// State of one particle entering a Hermite step at its time `t0`.
#[derive(Clone, Copy, Debug)]
pub struct HermiteState {
    /// Position at `t0`.
    pub pos: Vec3,
    /// Velocity at `t0`.
    pub vel: Vec3,
    /// Acceleration at `t0`.
    pub acc: Vec3,
    /// Jerk at `t0`.
    pub jerk: Vec3,
}

/// Output of the corrector: new state plus the force derivatives needed for
/// the next timestep choice and the hardware predictor.
#[derive(Clone, Copy, Debug)]
pub struct Corrected {
    /// Corrected position at `t0 + dt`.
    pub pos: Vec3,
    /// Corrected velocity at `t0 + dt`.
    pub vel: Vec3,
    /// Snap (a⁽²⁾) evaluated at `t0 + dt`.
    pub snap: Vec3,
    /// Crackle (a⁽³⁾) over the step (piecewise constant at this order).
    pub crackle: Vec3,
}

/// Predict position and velocity a time `dt` ahead (4th-order Taylor in
/// position, 3rd in velocity — the classic Hermite predictor; the optional
/// snap term matches the hardware predictor of eq. 6).
#[inline]
pub fn predict(s: &HermiteState, snap: Vec3, dt: f64) -> (Vec3, Vec3) {
    let dt2 = dt * dt;
    let dt3 = dt2 * dt;
    let dt4 = dt3 * dt;
    let pos = s.pos + s.vel * dt + s.acc * (dt2 / 2.0) + s.jerk * (dt3 / 6.0) + snap * (dt4 / 24.0);
    let vel = s.vel + s.acc * dt + s.jerk * (dt2 / 2.0) + snap * (dt3 / 6.0);
    (pos, vel)
}

/// The Hermite corrector.
///
/// Given the state at `t0`, the **jerk-truncated** predicted
/// position/velocity at `t1 = t0+dt` (i.e. [`predict`] called with
/// `snap = 0` — the snap contribution is exactly what the corrector adds
/// back through the reconstructed `a⁽²⁾`, so including it in the prediction
/// would double-count it), and the *new* force evaluation `f1`, reconstructs
/// the 2nd and 3rd force derivatives over the interval:
///
/// ```text
/// a⁽²⁾₀ = (−6(a₀ − a₁) − dt(4ȧ₀ + 2ȧ₁)) / dt²
/// a⁽³⁾₀ = ( 12(a₀ − a₁) + 6dt(ȧ₀ + ȧ₁)) / dt³
/// ```
///
/// and applies the 4th/5th-order position/velocity correction.  Returns the
/// corrected state and the derivatives *shifted to `t1`* (what the next
/// prediction interval needs).
#[inline]
pub fn correct(
    s: &HermiteState,
    pred_pos: Vec3,
    pred_vel: Vec3,
    f1: &ForceResult,
    dt: f64,
) -> Corrected {
    let dt2 = dt * dt;
    let dt3 = dt2 * dt;
    let da = s.acc - f1.acc;
    let snap0 = (da * -6.0 - (s.jerk * 4.0 + f1.jerk * 2.0) * dt) * (1.0 / dt2);
    let crackle0 = (da * 12.0 + (s.jerk + f1.jerk) * (6.0 * dt)) * (1.0 / dt3);
    let pos = pred_pos + snap0 * (dt2 * dt2 / 24.0) + crackle0 * (dt2 * dt3 / 120.0);
    let vel = pred_vel + snap0 * (dt3 / 6.0) + crackle0 * (dt2 * dt2 / 24.0);
    let snap1 = snap0 + crackle0 * dt;
    Corrected {
        pos,
        vel,
        snap: snap1,
        crackle: crackle0,
    }
}

/// The Aarseth timestep criterion, evaluated with the force derivatives at
/// the *new* time.  `eta` is the dimensionless accuracy parameter (the
/// paper's runs correspond to the conventional η ≈ 0.01–0.02 for production
/// Hermite integrations).
#[inline]
pub fn aarseth_dt(acc: Vec3, jerk: Vec3, snap: Vec3, crackle: Vec3, eta: f64) -> f64 {
    let a = acc.norm();
    let j = jerk.norm();
    let s = snap.norm();
    let c = crackle.norm();
    let num = a * s + j * j;
    let den = j * c + s * s;
    if den == 0.0 {
        if num == 0.0 {
            return f64::INFINITY;
        }
        // Fall back to the first-order ratio when higher derivatives vanish.
        return eta.sqrt() * (a / j.max(1e-300)).min(f64::MAX);
    }
    (eta * num / den).sqrt()
}

/// Startup timestep before any derivative history exists:
/// `dt = η_s · |a| / |ȧ|` with a conservative startup η.
#[inline]
pub fn startup_dt(acc: Vec3, jerk: Vec3, eta_s: f64) -> f64 {
    let a = acc.norm();
    let j = jerk.norm();
    if j == 0.0 || a == 0.0 {
        return f64::INFINITY;
    }
    eta_s * a / j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::pair_force;

    /// Analytic circular two-body orbit used to validate the scheme pieces:
    /// a unit-mass central body fixed at the origin, a test particle on a
    /// circular orbit of radius 1 (angular velocity 1).
    fn circular_state(theta: f64) -> (HermiteState, Vec3, Vec3) {
        let pos = Vec3::new(theta.cos(), theta.sin(), 0.0);
        let vel = Vec3::new(-theta.sin(), theta.cos(), 0.0);
        let acc = -pos; // a = -r/|r|³, |r| = 1
        let jerk = -vel;
        let snap = pos; // d²a/dt² = -d²r/dt² = -a = r... (−r)'' = r? a=-r ⇒ a''=-r''=-a=r·? r''=a=-r ⇒ a''=r
        let crackle = vel;
        (
            HermiteState {
                pos,
                vel,
                acc,
                jerk,
            },
            snap,
            crackle,
        )
    }

    #[test]
    fn predictor_order_of_accuracy() {
        // Prediction error on the circular orbit must scale as dt⁵ in
        // position (4th-order predictor with snap term).
        let (s, snap, _) = circular_state(0.3);
        let mut prev_err = f64::INFINITY;
        for &dt in &[0.1f64, 0.05, 0.025] {
            let (p, _) = predict(&s, snap, dt);
            let theta = 0.3 + dt;
            let exact = Vec3::new(theta.cos(), theta.sin(), 0.0);
            let err = (p - exact).norm();
            assert!(err < prev_err);
            prev_err = err;
        }
        // Ratio test at the smallest pair: halving dt should cut the error
        // by about 2⁵ = 32 (allow generous margin).
        let (p1, _) = predict(&s, snap, 0.05);
        let (p2, _) = predict(&s, snap, 0.025);
        let e1 = (p1 - Vec3::new((0.35f64).cos(), (0.35f64).sin(), 0.0)).norm();
        let e2 = (p2 - Vec3::new((0.325f64).cos(), (0.325f64).sin(), 0.0)).norm();
        let ratio = e1 / e2;
        assert!(ratio > 20.0 && ratio < 45.0, "ratio = {ratio}");
    }

    #[test]
    fn corrector_recovers_derivatives_on_circular_orbit() {
        let (s, _snap_exact, crackle_exact) = circular_state(0.0);
        let dt = 1e-3f64;
        // Exact force at the true advanced state:
        let theta = dt;
        let pos1 = Vec3::new(theta.cos(), theta.sin(), 0.0);
        let vel1 = Vec3::new(-theta.sin(), theta.cos(), 0.0);
        let (a1, j1, _) = pair_force(-pos1, -vel1, 1.0, 0.0);
        let f1 = ForceResult {
            acc: a1,
            jerk: j1,
            pot: 0.0,
        };
        let (pp, pv) = predict(&s, Vec3::ZERO, dt);
        let c = correct(&s, pp, pv, &f1, dt);
        // Snap at t1 ≈ snap(θ=dt) = pos1; crackle ≈ vel over the interval.
        assert!(
            (c.snap - pos1).norm() < 1e-5,
            "snap err {:?}",
            (c.snap - pos1).norm()
        );
        assert!((c.crackle - crackle_exact).norm() < 1e-2);
        // Corrected state is closer to the truth than the prediction.
        let pred_err = (pp - pos1).norm();
        let corr_err = (c.pos - pos1).norm();
        assert!(corr_err <= pred_err);
    }

    #[test]
    fn one_hermite_step_is_fifth_order_locally() {
        let (s, _, _) = circular_state(0.0);
        let step = |dt: f64| {
            let (pp, pv) = predict(&s, Vec3::ZERO, dt);
            let (a1, j1, _) = pair_force(-pp, -pv, 1.0, 0.0);
            let f1 = ForceResult {
                acc: a1,
                jerk: j1,
                pot: 0.0,
            };
            let c = correct(&s, pp, pv, &f1, dt);
            let exact = Vec3::new(dt.cos(), dt.sin(), 0.0);
            (c.pos - exact).norm()
        };
        let e1 = step(0.08);
        let e2 = step(0.04);
        let ratio = e1 / e2;
        // Local truncation ~ dt⁵..dt⁶ ⇒ halving dt cuts error ≥ ~30x.
        assert!(ratio > 25.0, "ratio = {ratio}, e1 = {e1:e}, e2 = {e2:e}");
    }

    #[test]
    fn aarseth_dt_on_circular_orbit_is_order_eta_sqrt() {
        let (s, snap, crackle) = circular_state(1.1);
        // All derivative norms are 1 on this orbit ⇒ dt = √(2η/2) = √η.
        let dt = aarseth_dt(s.acc, s.jerk, snap, crackle, 0.01);
        assert!((dt - 0.1).abs() < 1e-12, "dt = {dt}");
    }

    #[test]
    fn aarseth_dt_degenerate_cases() {
        assert_eq!(
            aarseth_dt(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO, 0.01),
            f64::INFINITY
        );
        // Pure acceleration, no derivatives: falls back to a finite value.
        let dt = aarseth_dt(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::ZERO,
            Vec3::ZERO,
            Vec3::ZERO,
            0.01,
        );
        assert!(dt.is_infinite() || dt > 0.0);
    }

    #[test]
    fn startup_dt_ratio() {
        let a = Vec3::new(2.0, 0.0, 0.0);
        let j = Vec3::new(0.0, 4.0, 0.0);
        assert!((startup_dt(a, j, 0.01) - 0.005).abs() < 1e-15);
        assert_eq!(startup_dt(a, Vec3::ZERO, 0.01), f64::INFINITY);
    }
}
