//! A minimal 3-vector.
//!
//! Deliberately *not* a SIMD abstraction: explicit lanes live where the
//! cycles do — `grape6_arith::simd` (the `Lanes` trait, the lane
//! quantizer, the gathered rsqrt tables) and `grape6_chip::kernel_simd`
//! (the runtime-dispatched force pass).  `Vec3` exists for the readable
//! outer layers — integrators, initial conditions, diagnostics — where
//! the compiler's own vectorisation of flat `f64` loops is plenty.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Componentwise array view.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Construct from an array.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        Self::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Self::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.3, -0.7, 2.2);
        let b = Vec3::new(0.4, 1.9, -1.1);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn indexing_and_conversion() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[2], 9.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_over_iterator() {
        let total: Vec3 = (0..4).map(|i| Vec3::new(i as f64, 1.0, 0.0)).sum();
        assert_eq!(total, Vec3::new(6.0, 4.0, 0.0));
    }
}
