//! The softening-parameter choices benchmarked in the paper.
//!
//! §4 of the paper measures three choices of the Plummer softening ε in
//! eqs. (1)–(3):
//!
//! 1. a constant, `ε = 1/64`;
//! 2. an inter-particle-distance scaling, `ε = 1/[8(2N)^(1/3)]`;
//! 3. a close-encounter scaling, `ε = 4/N`.
//!
//! "Note that for N = 256, all three choices of the softening give the same
//! value" — reproduced as a unit test below.  Smaller softenings produce
//! shorter minimum timesteps and *smaller blocks*, which is why the
//! multi-node crossover of fig. 15 moves from N ≈ 3×10³ (constant ε) to
//! N ≈ 3×10⁴ (`ε = 4/N`): synchronisation overhead is paid per block.

use serde::{Deserialize, Serialize};

/// A softening-length policy, resolved against the particle number.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Softening {
    /// `ε = 1/64` (the paper's constant choice).
    Constant,
    /// `ε = 1/[8(2N)^(1/3)]` — scales with the mean inter-particle distance.
    InterParticle,
    /// `ε = 4/N` — resolves close encounters; the hardest case for blocks.
    CloseEncounter,
    /// An explicit value, for tests and custom workloads.
    Fixed(f64),
}

impl Softening {
    /// The softening length for an `n`-particle system.
    pub fn epsilon(self, n: usize) -> f64 {
        match self {
            Self::Constant => 1.0 / 64.0,
            Self::InterParticle => 1.0 / (8.0 * (2.0 * n as f64).cbrt()),
            Self::CloseEncounter => 4.0 / n as f64,
            Self::Fixed(e) => e,
        }
    }

    /// `ε²`, the quantity the pipeline actually consumes.
    pub fn epsilon2(self, n: usize) -> f64 {
        let e = self.epsilon(n);
        e * e
    }

    /// The three policies measured in the paper, in figure order.
    pub const PAPER_CHOICES: [Softening; 3] = [
        Softening::Constant,
        Softening::InterParticle,
        Softening::CloseEncounter,
    ];

    /// Short label used by the benchmark tables.
    pub fn label(self) -> String {
        match self {
            Self::Constant => "eps=1/64".into(),
            Self::InterParticle => "eps=1/[8(2N)^1/3]".into(),
            Self::CloseEncounter => "eps=4/N".into(),
            Self::Fixed(e) => format!("eps={e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_agree_at_n_256() {
        // The paper: "for N = 256, all three choices of the softening give
        // the same value."
        let e1 = Softening::Constant.epsilon(256);
        let e2 = Softening::InterParticle.epsilon(256);
        let e3 = Softening::CloseEncounter.epsilon(256);
        assert!((e1 - 1.0 / 64.0).abs() < 1e-15);
        assert!((e2 - e1).abs() < 1e-15, "e2 = {e2}");
        assert!((e3 - e1).abs() < 1e-15, "e3 = {e3}");
    }

    #[test]
    fn scalings_with_n() {
        // Constant stays put; InterParticle ∝ N^(-1/3); CloseEncounter ∝ 1/N.
        assert_eq!(
            Softening::Constant.epsilon(1 << 20),
            Softening::Constant.epsilon(256)
        );
        let r = Softening::InterParticle.epsilon(1000) / Softening::InterParticle.epsilon(8000);
        assert!((r - 2.0).abs() < 1e-12);
        let r = Softening::CloseEncounter.epsilon(1000) / Softening::CloseEncounter.epsilon(2000);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon2_is_square() {
        let n = 4096;
        for s in Softening::PAPER_CHOICES {
            assert_eq!(s.epsilon2(n), s.epsilon(n) * s.epsilon(n));
        }
        assert_eq!(Softening::Fixed(0.5).epsilon2(1), 0.25);
    }
}
