//! The Plummer model in standard (Heggie) units.
//!
//! The paper's benchmark: "we integrated the Plummer model with equal-mass
//! particles for 1 time unit".  We sample with the classic Aarseth–Hénon–
//! Wielen (1974) recipe and then *exactly* rescale to the standard units
//! (`E = −1/4`, virialised), so a generated model reproduces the paper's
//! workload regardless of sampling noise:
//!
//! 1. radius from the inverted cumulative mass profile
//!    `r = (u^(−2/3) − 1)^(−1/2)` (model units, scale length 1), with the
//!    conventional cut at `r < 20` to keep the outermost particles inside
//!    the machine's fixed-point coordinate box;
//! 2. speed from the isotropic distribution `f(q) ∝ q²(1 − q²)^(7/2)` of
//!    `q = v / v_esc`, by von Neumann rejection;
//! 3. shift to the centre-of-mass frame;
//! 4. scale positions by `α = W_sampled / W_target` and velocities by
//!    `β = √(T_target / T_sampled)` with `T_target = 1/4`,
//!    `W_target = −1/2`, which pins both the energy and the virial ratio.

use rand::Rng;

use crate::diagnostics::energy;
use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Radial cut in Plummer model units (a = 1); keeps > 99.9 % of the mass.
const R_CUT_MODEL: f64 = 20.0;

/// Sample an `n`-particle equal-mass Plummer sphere in standard units.
///
/// The returned set is in the COM frame with `E = −1/4` and `Q = 1/2`
/// exactly (to f64 roundoff); `t`, `dt` and force arrays are zeroed.
pub fn plummer_model<R: Rng + ?Sized>(n: usize, rng: &mut R) -> ParticleSet {
    assert!(n >= 2, "a Plummer model needs at least two particles");
    let mut set = ParticleSet::with_capacity(n);
    let m = 1.0 / n as f64;
    for _ in 0..n {
        let r = loop {
            let u: f64 = rng.gen_range(1e-10..1.0);
            let r = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            if r < R_CUT_MODEL {
                break r;
            }
        };
        let pos = iso_direction(rng) * r;
        // Escape speed at r: v_e = √2 (1+r²)^(-1/4).
        let v_esc = std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        let q = sample_q(rng);
        let vel = iso_direction(rng) * (q * v_esc);
        set.push(m, pos, vel);
    }
    set.to_com_frame();

    // Exact rescale to standard units: T → 1/4, W → −1/2.
    let e = energy(&set, 0.0);
    let alpha = e.potential / -0.5; // scale radii: W' = W/α = −1/2
    let beta = (0.25 / e.kinetic).sqrt(); // scale speeds: T' = β²T = 1/4
    set.scale(alpha, beta);
    set
}

/// Isotropic unit vector.
fn iso_direction<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let z: f64 = rng.gen_range(-1.0..1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).sqrt();
    Vec3::new(s * phi.cos(), s * phi.sin(), z)
}

/// Rejection sampling of `q ∈ [0,1]` with `p(q) ∝ q²(1−q²)^(7/2)`
/// (max of the density is ≈ 0.092 at `q = √(2/9)`).
fn sample_q<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let x: f64 = rng.gen_range(0.0..1.0);
        let y: f64 = rng.gen_range(0.0..0.1);
        if y < x * x * (1.0 - x * x).powf(3.5) {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{angular_momentum, energy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_units_are_exact() {
        let mut rng = StdRng::seed_from_u64(42);
        let set = plummer_model(512, &mut rng);
        let e = energy(&set, 0.0);
        assert!((e.total() + 0.25).abs() < 1e-12, "E = {}", e.total());
        assert!((e.virial_ratio() - 0.5).abs() < 1e-12);
        assert!(set.center_of_mass().norm() < 1e-10);
        assert!(set.mean_velocity().norm() < 1e-10);
    }

    #[test]
    fn equal_masses_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = plummer_model(300, &mut rng);
        assert!((set.total_mass() - 1.0).abs() < 1e-12);
        assert!(set.mass.iter().all(|&m| (m - 1.0 / 300.0).abs() < 1e-15));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = plummer_model(64, &mut StdRng::seed_from_u64(7));
        let b = plummer_model(64, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
        let c = plummer_model(64, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn half_mass_radius_near_theory() {
        // Plummer: r_h = a(2^(2/3)−1)^(−1/2) ≈ 1.305a; in standard units
        // a = 3π/16 ⇒ r_h ≈ 0.769.
        let mut rng = StdRng::seed_from_u64(2024);
        let set = plummer_model(4096, &mut rng);
        let mut radii: Vec<f64> = set.pos.iter().map(|p| p.norm()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rh = radii[2048];
        assert!((rh - 0.769).abs() < 0.08, "r_h = {rh}");
    }

    #[test]
    fn isotropy_small_net_angular_momentum() {
        let mut rng = StdRng::seed_from_u64(99);
        let set = plummer_model(4096, &mut rng);
        // |L| per particle scale ~ σ·r/√N; net should be ≪ 0.1.
        assert!(angular_momentum(&set).norm() < 0.05);
    }

    #[test]
    fn particles_inside_machine_box() {
        let mut rng = StdRng::seed_from_u64(5);
        let set = plummer_model(2048, &mut rng);
        // Fixed-point box is ±64; the cut guarantees ≲ 13 standard units.
        assert!(set.max_coordinate() < 32.0);
    }

    #[test]
    #[should_panic]
    fn rejects_n_below_two() {
        plummer_model(1, &mut StdRng::seed_from_u64(0));
    }
}
