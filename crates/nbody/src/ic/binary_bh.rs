//! Plummer sphere with two massive "black hole" particles.
//!
//! The second §5 application: "The initial model is a standard Plummer
//! model.  We placed two 'black hole' particles, which are just massive
//! point-mass particles, with mass 0.5 % of the total mass of the system."
//! The black holes sink by dynamical friction and form a hard binary — the
//! workload that stresses the shortest end of the timestep hierarchy.

use rand::Rng;

use crate::ic::plummer::plummer_model;
use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Build the §5 binary-black-hole initial model: an `n_field`-star Plummer
/// sphere plus two point masses of `bh_mass_fraction` (paper: 0.005) of the
/// total stellar mass each, placed symmetrically at radius `r_init` on a
/// circular-speed orbit.
///
/// The black holes are particles 0 and 1.
pub fn binary_bh_model<R: Rng + ?Sized>(
    n_field: usize,
    bh_mass_fraction: f64,
    r_init: f64,
    rng: &mut R,
) -> ParticleSet {
    assert!(n_field >= 2);
    assert!(bh_mass_fraction > 0.0 && bh_mass_fraction < 0.5);
    let field = plummer_model(n_field, rng);
    let m_bh = bh_mass_fraction; // fraction of total stellar mass M = 1

    let mut set = ParticleSet::with_capacity(n_field + 2);
    // Circular speed at r_init in the Plummer potential (standard units,
    // scale a = 3π/16): v_c² = M(<r)/r = r²/(r²+a²)^(3/2).
    let a = crate::units::PLUMMER_SCALE;
    let vc = (r_init * r_init / (r_init * r_init + a * a).powf(1.5)).sqrt();
    set.push(m_bh, Vec3::new(r_init, 0.0, 0.0), Vec3::new(0.0, vc, 0.0));
    set.push(m_bh, Vec3::new(-r_init, 0.0, 0.0), Vec3::new(0.0, -vc, 0.0));
    for i in 0..n_field {
        set.push(field.mass[i], field.pos[i], field.vel[i]);
    }
    set.to_com_frame();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::energy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_configuration() {
        let mut rng = StdRng::seed_from_u64(12);
        let set = binary_bh_model(2000, 0.005, 0.3, &mut rng);
        assert_eq!(set.n(), 2002);
        // Each BH weighs 0.5 % of the stellar mass; 10 field stars weigh
        // 10/2000 = 0.5 % too — the BHs are ~10x heavier than a star.
        assert!((set.mass[0] - 0.005).abs() < 1e-15);
        assert_eq!(set.mass[0], set.mass[1]);
        assert!(set.mass[0] / set.mass[2] > 9.0);
    }

    #[test]
    fn system_is_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let set = binary_bh_model(512, 0.005, 0.3, &mut rng);
        assert!(energy(&set, 0.0).total() < 0.0);
    }

    #[test]
    fn bhs_symmetric_in_com_frame() {
        let mut rng = StdRng::seed_from_u64(4);
        let set = binary_bh_model(256, 0.005, 0.4, &mut rng);
        assert!(set.center_of_mass().norm() < 1e-10);
        // BHs started antisymmetric; COM shift moves both equally, so their
        // mean is the (small) field recoil, not 0.4-scale.
        let mid = (set.pos[0] + set.pos[1]) * 0.5;
        assert!(mid.norm() < 0.05);
    }

    #[test]
    #[should_panic]
    fn excessive_bh_mass_rejected() {
        binary_bh_model(16, 0.6, 0.3, &mut StdRng::seed_from_u64(0));
    }
}
