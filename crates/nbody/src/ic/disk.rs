//! Star + planetesimal disk initial conditions.
//!
//! The first §5 application is "the evolution of \[the\] early Kuiper belt
//! region … 1.8M particles" (Makino, Kokubo, Fukushige & Daisaka 2003).  We
//! cannot use the authors' proprietary setup files; this generator produces
//! the same *kind* of system — a dominant central mass and a dynamically
//! cold ring of equal-mass planetesimals — which exercises the identical
//! code path: a huge block of particles with nearly equal orbital times plus
//! a steep timestep hierarchy wherever close encounters develop.
//!
//! Elements are drawn as in planetesimal-accretion practice: semi-major
//! axes uniform in an annulus, eccentricities and inclinations Rayleigh-
//! distributed with `⟨e²⟩^(1/2) = 2⟨i²⟩^(1/2)`, angles uniform.

use rand::Rng;

use crate::ic::kepler::{elements_to_cartesian, OrbitalElements};
use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Parameters of the planetesimal-disk generator.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Central star mass (G = 1 units).
    pub star_mass: f64,
    /// Total disk mass.
    pub disk_mass: f64,
    /// Inner edge of the annulus (semi-major axis).
    pub a_in: f64,
    /// Outer edge of the annulus.
    pub a_out: f64,
    /// RMS eccentricity of the Rayleigh distribution.
    pub sigma_e: f64,
    /// RMS inclination (radians).
    pub sigma_i: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        Self {
            star_mass: 1.0,
            disk_mass: 1e-3,
            a_in: 1.0,
            a_out: 1.5,
            sigma_e: 0.01,
            sigma_i: 0.005,
        }
    }
}

/// Generate a star + `n_disk` planetesimal system.
///
/// Particle 0 is the star; the rest are equal-mass planetesimals.  The
/// system is returned in the centre-of-mass frame.
pub fn planetesimal_disk<R: Rng + ?Sized>(
    n_disk: usize,
    params: &DiskParams,
    rng: &mut R,
) -> ParticleSet {
    assert!(n_disk >= 1);
    assert!(params.a_out > params.a_in && params.a_in > 0.0);
    let mut set = ParticleSet::with_capacity(n_disk + 1);
    set.push(params.star_mass, Vec3::ZERO, Vec3::ZERO);
    let m = params.disk_mass / n_disk as f64;
    let tau = std::f64::consts::TAU;
    for _ in 0..n_disk {
        // Surface density ∝ 1/a (uniform in a) is the standard simple choice.
        let a = rng.gen_range(params.a_in..params.a_out);
        let e = sample_rayleigh_rms(params.sigma_e, rng).min(0.9);
        let inc = sample_rayleigh_rms(params.sigma_i, rng).min(1.5);
        let el = OrbitalElements {
            a,
            e,
            inc,
            node: rng.gen_range(0.0..tau),
            peri: rng.gen_range(0.0..tau),
            mean_anomaly: rng.gen_range(0.0..tau),
        };
        let (pos, vel) = elements_to_cartesian(&el, params.star_mass + m);
        set.push(m, pos, vel);
    }
    set.to_com_frame();
    set
}

/// Sample a Rayleigh deviate with the given **RMS** value (not the scale
/// parameter): inverse transform `x = σ√(−2 ln u)` with `σ = rms/√2`.
fn sample_rayleigh_rms<R: Rng + ?Sized>(rms: f64, rng: &mut R) -> f64 {
    let sigma = rms / std::f64::consts::SQRT_2;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    sigma * (-2.0 * u.ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{angular_momentum, energy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn disk(n: usize, seed: u64) -> ParticleSet {
        planetesimal_disk(n, &DiskParams::default(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn masses_and_count() {
        let set = disk(1000, 3);
        assert_eq!(set.n(), 1001);
        assert!((set.mass[0] - 1.0).abs() < 1e-15);
        assert!((set.total_mass() - 1.001).abs() < 1e-12);
    }

    #[test]
    fn disk_is_bound_and_cold() {
        let set = disk(2000, 17);
        let e = energy(&set, 0.0);
        assert!(e.total() < 0.0, "disk must be bound, E = {}", e.total());
        // A cold disk rotates: |L| is close to the coherent sum
        // Σ m √(μ a) ≈ m_disk·√(a_mid) within a few percent.
        let l = angular_momentum(&set).norm();
        let coherent = 1e-3 * (1.25f64).sqrt();
        assert!(
            (l / coherent - 1.0).abs() < 0.05,
            "L = {l}, coherent = {coherent}"
        );
    }

    #[test]
    fn radii_inside_annulus() {
        let set = disk(3000, 5);
        for i in 1..set.n() {
            let r = set.pos[i].norm();
            // r ∈ [a(1−e), a(1+e)] with small e: allow 10 % slack.
            assert!(r > 0.85 && r < 1.75, "r = {r}");
            // Cold disk: small vertical excursions.
            assert!(set.pos[i].z.abs() < 0.2);
        }
    }

    #[test]
    fn near_circular_speeds() {
        let set = disk(500, 11);
        for i in 1..set.n() {
            let r = set.pos[i].norm();
            let vc = (1.0f64 / r).sqrt();
            let v = set.vel[i].norm();
            assert!((v / vc - 1.0).abs() < 0.1, "v/vc = {}", v / vc);
        }
    }

    #[test]
    fn com_frame() {
        let set = disk(800, 23);
        assert!(set.center_of_mass().norm() < 1e-12);
        assert!(set.mean_velocity().norm() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let a = disk(100, 7);
        let b = disk(100, 7);
        assert_eq!(a.pos, b.pos);
    }
}
