//! Initial-condition generators for the paper's workloads.
//!
//! * [`plummer`] — the equal-mass Plummer sphere in Heggie units, the
//!   workload of every benchmark in §4;
//! * [`disk`] — a star + planetesimal disk, the §5 Kuiper-belt application
//!   (scaled stand-in for the Makino et al. 2003 planetesimal runs);
//! * [`binary_bh`] — a Plummer sphere with two 0.5 %-mass "black hole"
//!   point masses, the §5 binary-black-hole application;
//! * [`kepler`] — orbital-element ↔ Cartesian conversion used by the disk
//!   sampler (Kepler's equation solved by Newton iteration).
//!
//! All samplers take an explicit RNG so runs are reproducible; all outputs
//! are in the centre-of-mass frame.

pub mod binary_bh;
pub mod disk;
pub mod kepler;
pub mod plummer;

pub use binary_bh::binary_bh_model;
pub use disk::{planetesimal_disk, DiskParams};
pub use kepler::{elements_to_cartesian, solve_kepler, OrbitalElements};
pub use plummer::plummer_model;
