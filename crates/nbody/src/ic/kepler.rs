//! Keplerian orbital elements and Kepler's equation.
//!
//! The planetesimal-disk generator places bodies on near-circular,
//! near-coplanar heliocentric orbits specified by classical elements; this
//! module converts elements to Cartesian state vectors, solving Kepler's
//! equation `M = E − e sin E` by Newton iteration.

use crate::vec3::Vec3;

/// Classical orbital elements of an elliptic orbit around a central mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrbitalElements {
    /// Semi-major axis.
    pub a: f64,
    /// Eccentricity, `0 ≤ e < 1`.
    pub e: f64,
    /// Inclination (radians).
    pub inc: f64,
    /// Longitude of the ascending node (radians).
    pub node: f64,
    /// Argument of pericentre (radians).
    pub peri: f64,
    /// Mean anomaly (radians).
    pub mean_anomaly: f64,
}

/// Solve Kepler's equation `M = E − e sin E` for the eccentric anomaly `E`.
///
/// Newton iteration from `E₀ = M + e sin M`; converges to f64 precision in a
/// handful of iterations for `e < 0.99`.
pub fn solve_kepler(mean_anomaly: f64, e: f64) -> f64 {
    assert!((0.0..1.0).contains(&e), "eccentricity must be in [0,1)");
    let m = mean_anomaly.rem_euclid(std::f64::consts::TAU);
    let mut big_e = m + e * m.sin();
    for _ in 0..50 {
        let f = big_e - e * big_e.sin() - m;
        let fp = 1.0 - e * big_e.cos();
        let step = f / fp;
        big_e -= step;
        if step.abs() < 1e-15 {
            break;
        }
    }
    big_e
}

/// Convert orbital elements to a heliocentric Cartesian state for central
/// gravitational parameter `mu = G(M_central + m)`.
pub fn elements_to_cartesian(el: &OrbitalElements, mu: f64) -> (Vec3, Vec3) {
    let OrbitalElements {
        a,
        e,
        inc,
        node,
        peri,
        mean_anomaly,
    } = *el;
    let big_e = solve_kepler(mean_anomaly, e);
    let (sin_e, cos_e) = big_e.sin_cos();
    // Perifocal coordinates.
    let b = a * (1.0 - e * e).sqrt();
    let x_pf = a * (cos_e - e);
    let y_pf = b * sin_e;
    let r = a * (1.0 - e * cos_e);
    let n = (mu / (a * a * a)).sqrt(); // mean motion
    let vx_pf = -a * a * n * sin_e / r;
    let vy_pf = a * b * n * cos_e / r;

    // Rotate perifocal → inertial: Rz(node) · Rx(inc) · Rz(peri).
    let (sp, cp) = peri.sin_cos();
    let (si, ci) = inc.sin_cos();
    let (sn, cn) = node.sin_cos();
    let rot = |x: f64, y: f64| -> Vec3 {
        let x1 = cp * x - sp * y;
        let y1 = sp * x + cp * y;
        let y2 = ci * y1;
        let z2 = si * y1;
        Vec3::new(cn * x1 - sn * y2, sn * x1 + cn * y2, z2)
    };
    (rot(x_pf, y_pf), rot(vx_pf, vy_pf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_equation_residual_is_zero() {
        for &e in &[0.0, 0.1, 0.5, 0.9, 0.98] {
            for i in 0..32 {
                let m = i as f64 * 0.2;
                let big_e = solve_kepler(m, e);
                let resid = big_e - e * big_e.sin() - m.rem_euclid(std::f64::consts::TAU);
                assert!(resid.abs() < 1e-12, "e={e} M={m}: resid {resid:e}");
            }
        }
    }

    #[test]
    fn circular_orbit_state() {
        let el = OrbitalElements {
            a: 2.0,
            e: 0.0,
            inc: 0.0,
            node: 0.0,
            peri: 0.0,
            mean_anomaly: 0.0,
        };
        let (r, v) = elements_to_cartesian(&el, 1.0);
        assert!((r - Vec3::new(2.0, 0.0, 0.0)).norm() < 1e-14);
        // v = √(μ/a) tangential.
        let vc = (1.0f64 / 2.0).sqrt();
        assert!((v - Vec3::new(0.0, vc, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn vis_viva_holds_everywhere() {
        let el = OrbitalElements {
            a: 1.5,
            e: 0.3,
            inc: 0.2,
            node: 1.0,
            peri: 2.0,
            mean_anomaly: 0.7,
        };
        let mu = 1.37;
        let (r, v) = elements_to_cartesian(&el, mu);
        let vis_viva = mu * (2.0 / r.norm() - 1.0 / el.a);
        assert!((v.norm2() - vis_viva).abs() < 1e-12, "vis-viva violated");
    }

    #[test]
    fn specific_angular_momentum_matches_elements() {
        let el = OrbitalElements {
            a: 1.0,
            e: 0.2,
            inc: 0.3,
            node: 0.5,
            peri: 0.9,
            mean_anomaly: 2.2,
        };
        let mu = 1.0;
        let (r, v) = elements_to_cartesian(&el, mu);
        let h = r.cross(v).norm();
        let want = (mu * el.a * (1.0 - el.e * el.e)).sqrt();
        assert!((h - want).abs() < 1e-12);
        // Inclination from the angular momentum vector.
        let hz = r.cross(v).z;
        assert!(((hz / h).acos() - el.inc).abs() < 1e-12);
    }

    #[test]
    fn pericentre_distance() {
        let el = OrbitalElements {
            a: 2.0,
            e: 0.5,
            inc: 0.0,
            node: 0.0,
            peri: 0.0,
            mean_anomaly: 0.0, // at pericentre
        };
        let (r, _) = elements_to_cartesian(&el, 1.0);
        assert!((r.norm() - 1.0).abs() < 1e-13); // a(1−e) = 1
    }

    #[test]
    #[should_panic]
    fn hyperbolic_eccentricity_rejected() {
        solve_kepler(0.3, 1.2);
    }
}
