//! Snapshot I/O.
//!
//! The paper's frontends did "the time integration of the orbits of
//! particles, I/O, on-the-fly analysis" (§1) — production runs checkpoint
//! ("The whole simulation, including file operations, took 16.30 hours",
//! §5).  This module provides that file layer: a versioned, line-oriented
//! JSON snapshot format with exact (bit-preserving) f64 round-tripping,
//! plus in-memory serialisation for tests and tooling.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Serialisable snapshot of an N-body system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (for forward compatibility).
    pub version: u32,
    /// System time the snapshot is labelled with.
    pub time: f64,
    /// Arbitrary run metadata (softening, eta, notes…).
    pub comment: String,
    /// Per-particle records.
    pub particles: Vec<ParticleRecord>,
}

/// One particle's full state.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct ParticleRecord {
    /// Mass.
    pub mass: f64,
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration.
    pub acc: [f64; 3],
    /// Jerk.
    pub jerk: [f64; 3],
    /// Particle time.
    pub t: f64,
    /// Timestep.
    pub dt: f64,
}

/// Errors from the snapshot layer.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The payload did not parse as a snapshot.
    Format(String),
    /// A parsed snapshot carried an unsupported version.
    Version(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::Format(m) => write!(f, "snapshot format error: {m}"),
            Self::Version(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl Snapshot {
    /// Capture a particle set.
    pub fn capture(set: &ParticleSet, time: f64, comment: &str) -> Self {
        let particles = (0..set.n())
            .map(|i| ParticleRecord {
                mass: set.mass[i],
                pos: set.pos[i].to_array(),
                vel: set.vel[i].to_array(),
                acc: set.acc[i].to_array(),
                jerk: set.jerk[i].to_array(),
                t: set.t[i],
                dt: set.dt[i],
            })
            .collect();
        Self {
            version: SNAPSHOT_VERSION,
            time,
            comment: comment.to_string(),
            particles,
        }
    }

    /// Restore a particle set (snap/crackle/pot restart at zero; the
    /// integrator re-derives them on its first block, like a cold restart
    /// of the production codes).
    pub fn restore(&self) -> ParticleSet {
        let mut set = ParticleSet::with_capacity(self.particles.len());
        for p in &self.particles {
            set.push(p.mass, Vec3::from_array(p.pos), Vec3::from_array(p.vel));
        }
        for (i, p) in self.particles.iter().enumerate() {
            set.acc[i] = Vec3::from_array(p.acc);
            set.jerk[i] = Vec3::from_array(p.jerk);
            set.t[i] = p.t;
            set.dt[i] = p.dt;
        }
        set
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation cannot fail")
    }

    /// Parse from JSON, validating the version.
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let snap: Snapshot =
            serde_json::from_str(s).map_err(|e| SnapshotError::Format(e.to_string()))?;
        if snap.version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(snap.version));
        }
        Ok(snap)
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(self.to_json().as_bytes())?;
        w.write_all(b"\n")?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let mut s = String::new();
        BufReader::new(File::open(path)?).read_to_string(&mut s)?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> ParticleSet {
        let mut set = plummer_model(32, &mut StdRng::seed_from_u64(5));
        for i in 0..set.n() {
            set.acc[i] = set.pos[i] * -0.3;
            set.jerk[i] = set.vel[i] * -0.1;
            set.t[i] = 0.25;
            set.dt[i] = 2f64.powi(-(3 + (i % 4) as i32));
        }
        set
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let set = sample();
        let snap = Snapshot::capture(&set, 0.25, "test snapshot");
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        let restored = back.restore();
        assert_eq!(restored.n(), set.n());
        for i in 0..set.n() {
            assert_eq!(restored.mass[i].to_bits(), set.mass[i].to_bits());
            assert_eq!(restored.pos[i], set.pos[i]);
            assert_eq!(restored.vel[i], set.vel[i]);
            assert_eq!(restored.acc[i], set.acc[i]);
            assert_eq!(restored.jerk[i], set.jerk[i]);
            assert_eq!(restored.dt[i], set.dt[i]);
        }
        assert_eq!(back.comment, "test snapshot");
        assert_eq!(back.time, 0.25);
    }

    #[test]
    fn file_roundtrip() {
        let set = sample();
        let snap = Snapshot::capture(&set, 1.5, "file test");
        let dir = std::env::temp_dir().join("grape6_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.particles, snap.particles);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected() {
        let set = sample();
        let mut snap = Snapshot::capture(&set, 0.0, "");
        snap.version = SNAPSHOT_VERSION + 1;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Version(_)));
    }

    #[test]
    fn garbage_rejected_cleanly() {
        assert!(matches!(
            Snapshot::from_json("not json at all"),
            Err(SnapshotError::Format(_))
        ));
        assert!(matches!(
            Snapshot::from_json("{\"wrong\": true}"),
            Err(SnapshotError::Format(_))
        ));
    }

    #[test]
    fn restart_continues_a_run_consistently() {
        use crate::diagnostics::energy;
        // Checkpoint/restart mid-run: restoring positions and velocities
        // preserves the physical state (energies match exactly).
        let set = sample();
        let e0 = energy(&set, 1e-4);
        let snap = Snapshot::capture(&set, 0.25, "restart");
        let restored = snap.restore();
        let e1 = energy(&restored, 1e-4);
        assert_eq!(e0.total().to_bits(), e1.total().to_bits());
    }
}
