//! Snapshot I/O.
//!
//! The paper's frontends did "the time integration of the orbits of
//! particles, I/O, on-the-fly analysis" (§1) — production runs checkpoint
//! ("The whole simulation, including file operations, took 16.30 hours",
//! §5).  This module provides that file layer: a versioned JSON snapshot
//! format with exact (bit-preserving) f64 round-tripping, plus in-memory
//! serialisation for tests and tooling.
//!
//! **Format v2** carries the complete Hermite derivative state — snap,
//! crackle and potential alongside acceleration and jerk — so a restored
//! run resumes *warm*: the predictor polynomial and the Aarseth timestep
//! criterion see exactly the values the original run had, instead of
//! re-deriving them from a cold start.  v1 files (no derivative tail)
//! still parse; their missing fields restore as zero, which reproduces
//! the old cold-restart behaviour.
//!
//! Both the writer and the parser are hand-rolled: numbers are printed
//! with Rust's shortest-round-trip formatting (reparse gives the same
//! bits) and the parser is a small recursive-descent JSON reader, so the
//! format works identically with or without a functional `serde_json`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Serialisable snapshot of an N-body system.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Format version (for forward compatibility).
    pub version: u32,
    /// System time the snapshot is labelled with.
    pub time: f64,
    /// Arbitrary run metadata (softening, eta, notes…).
    pub comment: String,
    /// Per-particle records.
    pub particles: Vec<ParticleRecord>,
}

/// One particle's full state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParticleRecord {
    /// Mass.
    pub mass: f64,
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration.
    pub acc: [f64; 3],
    /// Jerk.
    pub jerk: [f64; 3],
    /// Snap (2nd force derivative; v2, zero in v1 files).
    pub snap: [f64; 3],
    /// Crackle (3rd force derivative; v2, zero in v1 files).
    pub crackle: [f64; 3],
    /// Potential (v2, zero in v1 files).
    pub pot: f64,
    /// Particle time.
    pub t: f64,
    /// Timestep.
    pub dt: f64,
}

/// Errors from the snapshot layer.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The payload did not parse as a snapshot.
    Format(String),
    /// A parsed snapshot carried an unsupported version.
    Version(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::Format(m) => write!(f, "snapshot format error: {m}"),
            Self::Version(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl Snapshot {
    /// Capture a particle set with its full derivative state.
    pub fn capture(set: &ParticleSet, time: f64, comment: &str) -> Self {
        let particles = (0..set.n())
            .map(|i| ParticleRecord {
                mass: set.mass[i],
                pos: set.pos[i].to_array(),
                vel: set.vel[i].to_array(),
                acc: set.acc[i].to_array(),
                jerk: set.jerk[i].to_array(),
                snap: set.snap[i].to_array(),
                crackle: set.crackle[i].to_array(),
                pot: set.pot[i],
                t: set.t[i],
                dt: set.dt[i],
            })
            .collect();
        Self {
            version: SNAPSHOT_VERSION,
            time,
            comment: comment.to_string(),
            particles,
        }
    }

    /// Restore a particle set.  v2 snapshots restore warm (every Hermite
    /// derivative bit-exact); v1 snapshots restore with zero
    /// snap/crackle/pot, the old cold-restart behaviour.
    pub fn restore(&self) -> ParticleSet {
        let mut set = ParticleSet::with_capacity(self.particles.len());
        for p in &self.particles {
            set.push(p.mass, Vec3::from_array(p.pos), Vec3::from_array(p.vel));
        }
        for (i, p) in self.particles.iter().enumerate() {
            set.acc[i] = Vec3::from_array(p.acc);
            set.jerk[i] = Vec3::from_array(p.jerk);
            set.snap[i] = Vec3::from_array(p.snap);
            set.crackle[i] = Vec3::from_array(p.crackle);
            set.pot[i] = p.pot;
            set.t[i] = p.t;
            set.dt[i] = p.dt;
        }
        set
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + 256 * self.particles.len());
        s.push_str("{\"version\":");
        s.push_str(&self.version.to_string());
        s.push_str(",\"time\":");
        write_f64(&mut s, self.time);
        s.push_str(",\"comment\":");
        write_str(&mut s, &self.comment);
        s.push_str(",\"particles\":[");
        for (k, p) in self.particles.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str("{\"mass\":");
            write_f64(&mut s, p.mass);
            s.push_str(",\"pos\":");
            write_vec3(&mut s, p.pos);
            s.push_str(",\"vel\":");
            write_vec3(&mut s, p.vel);
            s.push_str(",\"acc\":");
            write_vec3(&mut s, p.acc);
            s.push_str(",\"jerk\":");
            write_vec3(&mut s, p.jerk);
            s.push_str(",\"snap\":");
            write_vec3(&mut s, p.snap);
            s.push_str(",\"crackle\":");
            write_vec3(&mut s, p.crackle);
            s.push_str(",\"pot\":");
            write_f64(&mut s, p.pot);
            s.push_str(",\"t\":");
            write_f64(&mut s, p.t);
            s.push_str(",\"dt\":");
            write_f64(&mut s, p.dt);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parse from JSON, validating the version.
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let v = Json::parse(s).map_err(SnapshotError::Format)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| SnapshotError::Format("top level is not an object".into()))?;
        let version = get_f64(obj, "version")? as u32;
        if version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let time = get_f64(obj, "time")?;
        let comment = match field(obj, "comment") {
            Some(Json::Str(c)) => c.clone(),
            Some(_) => return Err(SnapshotError::Format("comment is not a string".into())),
            None => String::new(),
        };
        let parts = match field(obj, "particles") {
            Some(Json::Arr(a)) => a,
            _ => return Err(SnapshotError::Format("missing particles array".into())),
        };
        let mut particles = Vec::with_capacity(parts.len());
        for (i, pv) in parts.iter().enumerate() {
            let po = pv
                .as_obj()
                .ok_or_else(|| SnapshotError::Format(format!("particle {i} is not an object")))?;
            particles.push(ParticleRecord {
                mass: get_f64(po, "mass")?,
                pos: get_vec3(po, "pos")?,
                vel: get_vec3(po, "vel")?,
                acc: get_vec3(po, "acc")?,
                jerk: get_vec3(po, "jerk")?,
                // The v2 derivative tail; absent in v1 files.
                snap: get_vec3_or_zero(po, "snap")?,
                crackle: get_vec3_or_zero(po, "crackle")?,
                pot: match field(po, "pot") {
                    Some(v) => num(v, "pot")?,
                    None => 0.0,
                },
                t: get_f64(po, "t")?,
                dt: get_f64(po, "dt")?,
            });
        }
        Ok(Self {
            version,
            time,
            comment,
            particles,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(self.to_json().as_bytes())?;
        w.write_all(b"\n")?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let mut s = String::new();
        BufReader::new(File::open(path)?).read_to_string(&mut s)?;
        Self::from_json(&s)
    }
}

/// Shortest-round-trip f64 formatting; non-finite values (JSON has no
/// literal for them) are encoded as the strings `"inf"`/`"-inf"`/`"nan"`.
fn write_f64(s: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's Display for f64 prints the shortest decimal that parses
        // back to the same bits — this is the bit-exactness guarantee.
        s.push_str(&format!("{x}"));
    } else if x.is_nan() {
        s.push_str("\"nan\"");
    } else if x > 0.0 {
        s.push_str("\"inf\"");
    } else {
        s.push_str("\"-inf\"");
    }
}

fn write_vec3(s: &mut String, v: [f64; 3]) {
    s.push('[');
    for (k, x) in v.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        write_f64(s, *x);
    }
    s.push(']');
}

fn write_str(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Minimal JSON value tree — just enough for the snapshot grammar.
#[derive(Debug)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool,
    Null,
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        tok.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{tok}' at offset {start}"))
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A number, or one of the non-finite string encodings.
fn num(v: &Json, what: &str) -> Result<f64, SnapshotError> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(SnapshotError::Format(format!("{what} is not a number"))),
        },
        _ => Err(SnapshotError::Format(format!("{what} is not a number"))),
    }
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, SnapshotError> {
    let v = field(obj, key).ok_or_else(|| SnapshotError::Format(format!("missing {key}")))?;
    num(v, key)
}

fn get_vec3(obj: &[(String, Json)], key: &str) -> Result<[f64; 3], SnapshotError> {
    match field(obj, key) {
        Some(Json::Arr(a)) if a.len() == 3 => {
            Ok([num(&a[0], key)?, num(&a[1], key)?, num(&a[2], key)?])
        }
        Some(_) => Err(SnapshotError::Format(format!("{key} is not a 3-vector"))),
        None => Err(SnapshotError::Format(format!("missing {key}"))),
    }
}

fn get_vec3_or_zero(obj: &[(String, Json)], key: &str) -> Result<[f64; 3], SnapshotError> {
    match field(obj, key) {
        None => Ok([0.0; 3]),
        _ => get_vec3(obj, key),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> ParticleSet {
        let mut set = plummer_model(32, &mut StdRng::seed_from_u64(5));
        for i in 0..set.n() {
            set.acc[i] = set.pos[i] * -0.3;
            set.jerk[i] = set.vel[i] * -0.1;
            set.snap[i] = set.pos[i] * 0.07;
            set.crackle[i] = set.vel[i] * 0.011;
            set.pot[i] = -1.0 / (1.0 + i as f64);
            set.t[i] = 0.25;
            set.dt[i] = 2f64.powi(-(3 + (i % 4) as i32));
        }
        set
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let set = sample();
        let snap = Snapshot::capture(&set, 0.25, "test snapshot");
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        let restored = back.restore();
        assert_eq!(restored.n(), set.n());
        for i in 0..set.n() {
            assert_eq!(restored.mass[i].to_bits(), set.mass[i].to_bits());
            assert_eq!(restored.pos[i], set.pos[i]);
            assert_eq!(restored.vel[i], set.vel[i]);
            assert_eq!(restored.acc[i], set.acc[i]);
            assert_eq!(restored.jerk[i], set.jerk[i]);
            assert_eq!(restored.snap[i], set.snap[i]);
            assert_eq!(restored.crackle[i], set.crackle[i]);
            assert_eq!(restored.pot[i].to_bits(), set.pot[i].to_bits());
            assert_eq!(restored.dt[i], set.dt[i]);
        }
        assert_eq!(back.comment, "test snapshot");
        assert_eq!(back.time, 0.25);
    }

    #[test]
    fn file_roundtrip() {
        let set = sample();
        let snap = Snapshot::capture(&set, 1.5, "file test");
        let dir = std::env::temp_dir().join("grape6_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.particles, snap.particles);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected() {
        let set = sample();
        let mut snap = Snapshot::capture(&set, 0.0, "");
        snap.version = SNAPSHOT_VERSION + 1;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Version(_)));
    }

    #[test]
    fn garbage_rejected_cleanly() {
        assert!(matches!(
            Snapshot::from_json("not json at all"),
            Err(SnapshotError::Format(_))
        ));
        assert!(matches!(
            Snapshot::from_json("{\"wrong\": true}"),
            Err(SnapshotError::Format(_))
        ));
        // Truncation anywhere must produce Format, never a panic.
        let whole = Snapshot::capture(&sample(), 0.5, "truncate me").to_json();
        for cut in [1, whole.len() / 3, whole.len() - 1] {
            assert!(matches!(
                Snapshot::from_json(&whole[..cut]),
                Err(SnapshotError::Format(_))
            ));
        }
    }

    #[test]
    fn v1_files_still_parse_with_cold_derivatives() {
        // A hand-written v1 record: no snap/crackle/pot tail.
        let v1 = r#"{"version":1,"time":0.5,"comment":"old \"run\"","particles":[
            {"mass":0.03125,"pos":[1.0,-2.5,0.125],"vel":[0.1,0.2,-0.3],
             "acc":[0.0,0.0,0.0],"jerk":[0.0,0.0,0.0],"t":0.5,"dt":0.0078125}]}"#;
        let snap = Snapshot::from_json(v1).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.comment, "old \"run\"");
        let set = snap.restore();
        assert_eq!(set.n(), 1);
        assert_eq!(set.pos[0].to_array(), [1.0, -2.5, 0.125]);
        assert_eq!(set.snap[0].to_array(), [0.0; 3]);
        assert_eq!(set.crackle[0].to_array(), [0.0; 3]);
        assert_eq!(set.pot[0], 0.0);
        assert_eq!(set.dt[0], 0.0078125);
    }

    #[test]
    fn non_finite_values_survive_the_format() {
        let mut set = sample();
        set.pot[0] = f64::INFINITY;
        set.pot[1] = f64::NEG_INFINITY;
        let snap = Snapshot::capture(&set, 0.0, "");
        let back = Snapshot::from_json(&snap.to_json()).unwrap().restore();
        assert_eq!(back.pot[0], f64::INFINITY);
        assert_eq!(back.pot[1], f64::NEG_INFINITY);
    }

    #[test]
    fn extreme_values_roundtrip_bitwise() {
        // Shortest-round-trip printing must survive subnormals, huge
        // magnitudes, and negative zero.
        let cases = [
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MAX,
            -f64::MAX,
            -0.0,
            1.0 + f64::EPSILON,
            std::f64::consts::PI,
        ];
        let mut set = ParticleSet::with_capacity(cases.len());
        for (i, &x) in cases.iter().enumerate() {
            set.push(1.0 / (i + 1) as f64, Vec3::new(x, -x, x), Vec3::ZERO);
            set.pot[i] = x;
        }
        let back = Snapshot::from_json(&Snapshot::capture(&set, 0.0, "").to_json())
            .unwrap()
            .restore();
        for (i, &x) in cases.iter().enumerate() {
            assert_eq!(back.pos[i].x.to_bits(), x.to_bits(), "case {i}");
            assert_eq!(back.pot[i].to_bits(), x.to_bits(), "case {i}");
        }
    }

    #[test]
    fn restart_continues_a_run_consistently() {
        use crate::diagnostics::energy;
        // Checkpoint/restart mid-run: restoring positions and velocities
        // preserves the physical state (energies match exactly).
        let set = sample();
        let e0 = energy(&set, 1e-4);
        let snap = Snapshot::capture(&set, 0.25, "restart");
        let restored = snap.restore();
        let e1 = energy(&restored, 1e-4);
        assert_eq!(e0.total().to_bits(), e1.total().to_bits());
    }
}
