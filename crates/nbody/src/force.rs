//! Direct-summation force kernels and the engine abstraction.
//!
//! The GRAPE division of labour (paper §1): the special-purpose hardware
//! evaluates eqs. (1)–(3) — acceleration, jerk, potential — for a block of
//! "i-particles" against the full set of "j-particles" it holds in memory;
//! the host does everything else.  [`ForceEngine`] captures exactly that
//! interface, so the same Hermite integrator runs unchanged on
//!
//! * [`DirectEngine`] — the reference double-precision host implementation
//!   (scalar below [`DirectEngine::PAR_THRESHOLD`] interactions, rayon-
//!   parallel above it),
//! * the simulated GRAPE-6 machine (`grape6-core`), and
//! * remote engines inside the parallel-algorithm simulators.
//!
//! ## Engine semantics (GRAPE conventions, kept by every implementation)
//!
//! * The engine predicts its stored j-particles to the requested time using
//!   the predictor polynomials (eqs. 6–7) before evaluating forces.
//! * The j-sum **includes** the i-particle itself when it is stored as a
//!   j-particle: with softening the self-term contributes nothing to the
//!   acceleration and jerk (`r_ij = v_ij = 0`) but contributes `−m_i/ε` to
//!   the potential, which the *host* subtracts afterwards — exactly what the
//!   real GRAPE-6 library does.  With `ε = 0` the hardware's `x^(-3/2)` unit
//!   returns zero for zero argument, so the self-term vanishes entirely.
//! * One i/j pair costs [`FLOPS_PER_INTERACTION`] = 57 floating-point
//!   operations: 38 for the force (following Warren et al.), 19 more for its
//!   time derivative (paper §4.1) — the accounting behind every Tflops
//!   number in the paper.

use rayon::prelude::*;

use crate::vec3::Vec3;

/// Floating-point operations attributed to one pairwise force+jerk
/// evaluation (38 force + 19 jerk), the paper's eq. 9 convention.
pub const FLOPS_PER_INTERACTION: f64 = 57.0;

/// A j-particle as stored in (simulated) GRAPE memory: the full predictor
/// data at the particle's own time `t0`.
#[derive(Clone, Copy, Debug, Default)]
pub struct JParticle {
    /// Mass.
    pub mass: f64,
    /// Time at which the polynomial data below is valid.
    pub t0: f64,
    /// Position at `t0`.
    pub pos: Vec3,
    /// Velocity at `t0`.
    pub vel: Vec3,
    /// Acceleration at `t0`.
    pub acc: Vec3,
    /// Jerk at `t0`.
    pub jerk: Vec3,
    /// Snap (2nd derivative) at `t0` — the `a⁽²⁾₀` term of eq. 6.
    pub snap: Vec3,
}

/// An i-particle as sent to the force pipelines: already-predicted position
/// and velocity, plus its softening.
#[derive(Clone, Copy, Debug, Default)]
pub struct IParticle {
    /// Predicted position at the block time.
    pub pos: Vec3,
    /// Predicted velocity at the block time.
    pub vel: Vec3,
    /// Squared softening length ε² for this particle's interactions.
    pub eps2: f64,
}

/// The pipeline outputs for one i-particle.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForceResult {
    /// Acceleration (eq. 1).
    pub acc: Vec3,
    /// Jerk (eq. 2).
    pub jerk: Vec3,
    /// Potential (eq. 3), *including* the self-term when ε > 0.
    pub pot: f64,
}

/// A force computation the engine could not complete.
///
/// GRAPE engines are hardware simulators: they can run out of retry budget
/// (§3.4 exponent protocol), lose hardware mid-run, or be asked for more
/// capacity than the surviving units hold.  These are *recoverable, typed*
/// conditions for the host to act on — not panics.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The block floating-point exponent-retry loop failed to converge:
    /// even maximally-widened windows kept overflowing.  The summands are
    /// infinite/NaN or the state is corrupted, not merely badly guessed.
    ExponentDivergence {
        /// Retries burned before giving up.
        retries: u32,
        /// Human-readable description of the last failure.
        detail: String,
    },
    /// Hardware answered with something no retry strategy can fix.
    HardwareFault {
        /// Human-readable description.
        detail: String,
    },
    /// The surviving hardware no longer holds enough j-slots.
    InsufficientCapacity {
        /// Slots the run needs.
        needed: usize,
        /// Slots still in service.
        available: usize,
    },
    /// A j-memory write addressed a slot outside the configured range.
    BadJAddress {
        /// The offending address.
        addr: usize,
        /// Slots the engine was configured with.
        slots: usize,
    },
    /// A particle coordinate falls outside the ±64 fixed-point coordinate
    /// box the j-memory format covers.  The real host library rescaled
    /// systems to fit; accepting the write would silently wrap coordinates
    /// and corrupt every force.
    OutsideBox {
        /// Address of the offending particle.
        addr: usize,
        /// The coordinate that does not fit (NaN also lands here).
        coord: f64,
    },
    /// Caller-provided buffers disagree in length.
    BufferMismatch {
        /// Which buffer is wrong (`"out"`, `"h2"`, …).
        what: &'static str,
        /// Length it must have.
        expected: usize,
        /// Length it had.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ExponentDivergence { retries, detail } => write!(
                f,
                "block-FP exponent retry did not converge after {retries} retries: {detail}"
            ),
            EngineError::HardwareFault { detail } => write!(f, "hardware fault: {detail}"),
            EngineError::InsufficientCapacity { needed, available } => write!(
                f,
                "degraded hardware capacity {available} below the {needed} slots required"
            ),
            EngineError::BadJAddress { addr, slots } => {
                write!(
                    f,
                    "j address {addr} out of range (engine has {slots} slots)"
                )
            }
            EngineError::OutsideBox { addr, coord } => write!(
                f,
                "particle {addr} position {coord} outside the ±64 fixed-point box; \
                 rescale the system (the paper's host library kept systems \
                 well inside the box for exactly this reason)"
            ),
            EngineError::BufferMismatch {
                what,
                expected,
                got,
            } => write!(f, "buffer `{what}` has length {got}, expected {expected}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Anything that can play the role of the GRAPE hardware for the integrator.
pub trait ForceEngine {
    /// Number of j-particle slots currently in use.
    fn n_j(&self) -> usize;

    /// Store (or update) the j-particle at address `addr`.
    fn set_j_particle(&mut self, addr: usize, p: &JParticle);

    /// Fallible twin of [`ForceEngine::set_j_particle`] for engines that
    /// validate writes (address range, fixed-point coordinate box).  The
    /// default delegates to the infallible path — host-side f64 engines
    /// accept anything finite.
    fn try_set_j_particle(&mut self, addr: usize, p: &JParticle) -> Result<(), EngineError> {
        self.set_j_particle(addr, p);
        Ok(())
    }

    /// Set the system time to which j-particles are predicted.
    fn set_time(&mut self, t: f64);

    /// Evaluate force, jerk and potential on each i-particle from *all*
    /// stored j-particles.  `out.len()` must equal `i.len()`.
    fn compute(&mut self, i: &[IParticle], out: &mut [ForceResult]);

    /// Fallible variant of [`ForceEngine::compute`] for engines that can
    /// fail recoverably (retry exhaustion, hardware loss).  The default
    /// simply delegates to the infallible path — host-side f64 engines
    /// cannot fail.
    fn try_compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) -> Result<(), EngineError> {
        self.compute(i, out);
        Ok(())
    }

    /// Fault/recovery counters for this engine; hardware-free engines have
    /// nothing to report.
    fn fault_counters(&self) -> grape6_fault::FaultCounters {
        grape6_fault::FaultCounters::default()
    }

    /// Virtual-time cursor of the engine's span recorder, for callers that
    /// interleave their own spans (host phases) with the engine's on one
    /// timeline.  Engines without tracing sit at 0.
    fn vt(&self) -> f64 {
        0.0
    }

    /// Move the virtual-time cursor; no-op for engines without tracing.
    fn set_vt(&mut self, _t: f64) {}

    /// Drain the spans the engine recorded; empty for engines without
    /// tracing (the default).
    fn take_spans(&mut self) -> Vec<grape6_trace::Span> {
        Vec::new()
    }

    /// Human-readable engine name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Total pairwise interactions evaluated since construction.
    fn interactions(&self) -> u64;
}

/// One softened pairwise interaction in double precision.
///
/// Returns the contribution of a source of mass `mass` at separation `dr`
/// (pointing from i to j) and relative velocity `dv` to (acc, jerk, pot).
#[inline]
pub fn pair_force(dr: Vec3, dv: Vec3, mass: f64, eps2: f64) -> (Vec3, Vec3, f64) {
    let r2 = dr.norm2() + eps2;
    if r2 == 0.0 {
        return (Vec3::ZERO, Vec3::ZERO, 0.0);
    }
    let rinv = 1.0 / r2.sqrt();
    let rinv2 = rinv * rinv;
    let mrinv3 = mass * rinv * rinv2;
    let rv = dr.dot(dv) * rinv2; // (r·v)/r²
    let acc = dr * mrinv3;
    let jerk = dv * mrinv3 - acc * (3.0 * rv);
    let pot = -mass * rinv;
    (acc, jerk, pot)
}

/// Predict a j-particle to time `t` (eqs. 6–7 of the paper; the `Δt⁴/24`
/// snap term enters the position, the `Δt³/6` snap term the velocity).
#[inline]
pub fn predict_j(p: &JParticle, t: f64) -> (Vec3, Vec3) {
    let dt = t - p.t0;
    let dt2 = dt * dt;
    let dt3 = dt2 * dt;
    let dt4 = dt3 * dt;
    let pos =
        p.pos + p.vel * dt + p.acc * (dt2 / 2.0) + p.jerk * (dt3 / 6.0) + p.snap * (dt4 / 24.0);
    let vel = p.vel + p.acc * dt + p.jerk * (dt2 / 2.0) + p.snap * (dt3 / 6.0);
    (pos, vel)
}

/// Reference host-side engine: IEEE-754 double precision direct summation.
#[derive(Clone, Debug, Default)]
pub struct DirectEngine {
    j: Vec<JParticle>,
    /// Predicted j positions at the current time.
    jp_pos: Vec<Vec3>,
    /// Predicted j velocities at the current time.
    jp_vel: Vec<Vec3>,
    time: f64,
    predicted: bool,
    interactions: u64,
}

impl DirectEngine {
    /// Below this many pairwise interactions per `compute` call the kernel
    /// stays scalar; above it rayon splits the i-block across cores.
    pub const PAR_THRESHOLD: usize = 1 << 16;

    /// New engine with `n` zeroed j-slots.
    pub fn new(n: usize) -> Self {
        Self {
            j: vec![JParticle::default(); n],
            jp_pos: vec![Vec3::ZERO; n],
            jp_vel: vec![Vec3::ZERO; n],
            time: 0.0,
            predicted: false,
            interactions: 0,
        }
    }

    /// Immutable view of the stored j-particles.
    pub fn j_particles(&self) -> &[JParticle] {
        &self.j
    }

    fn predict_all(&mut self) {
        if self.predicted {
            return;
        }
        let t = self.time;
        for (i, p) in self.j.iter().enumerate() {
            let (x, v) = predict_j(p, t);
            self.jp_pos[i] = x;
            self.jp_vel[i] = v;
        }
        self.predicted = true;
    }

    fn force_on(&self, ip: &IParticle) -> ForceResult {
        let mut acc = Vec3::ZERO;
        let mut jerk = Vec3::ZERO;
        let mut pot = 0.0;
        for j in 0..self.j.len() {
            let dr = self.jp_pos[j] - ip.pos;
            let dv = self.jp_vel[j] - ip.vel;
            let (a, jr, p) = pair_force(dr, dv, self.j[j].mass, ip.eps2);
            acc += a;
            jerk += jr;
            pot += p;
        }
        ForceResult { acc, jerk, pot }
    }
}

impl ForceEngine for DirectEngine {
    fn n_j(&self) -> usize {
        self.j.len()
    }

    fn set_j_particle(&mut self, addr: usize, p: &JParticle) {
        self.j[addr] = *p;
        self.predicted = false;
    }

    fn set_time(&mut self, t: f64) {
        if t != self.time {
            self.predicted = false;
        }
        self.time = t;
    }

    fn compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(i.len(), out.len(), "i/out length mismatch");
        self.predict_all();
        let work = i.len() * self.j.len();
        if work >= Self::PAR_THRESHOLD && i.len() > 1 {
            out.par_iter_mut().zip(i.par_iter()).for_each(|(o, ip)| {
                *o = self.force_on(ip);
            });
        } else {
            for (o, ip) in out.iter_mut().zip(i) {
                *o = self.force_on(ip);
            }
        }
        self.interactions += work as u64;
    }

    fn name(&self) -> &'static str {
        "direct-f64"
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }
}

/// Convenience: full O(N²) acceleration/jerk/potential of a raw
/// (mass, pos, vel) system at a common time — used by initial-condition
/// setup and diagnostics.  Parallel over targets.
pub fn direct_all(mass: &[f64], pos: &[Vec3], vel: &[Vec3], eps2: f64) -> Vec<ForceResult> {
    let n = mass.len();
    let body = |i: usize| {
        let mut acc = Vec3::ZERO;
        let mut jerk = Vec3::ZERO;
        let mut pot = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let (a, jr, p) = pair_force(pos[j] - pos[i], vel[j] - vel[i], mass[j], eps2);
            acc += a;
            jerk += jr;
            pot += p;
        }
        ForceResult { acc, jerk, pot }
    };
    if n * n >= DirectEngine::PAR_THRESHOLD {
        (0..n).into_par_iter().map(body).collect()
    } else {
        (0..n).map(body).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_force_matches_closed_form() {
        // Unit mass at distance 2 along x, no softening, no velocity.
        let (a, j, p) = pair_force(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO, 1.0, 0.0);
        assert!((a.x - 0.25).abs() < 1e-15); // m/r² = 1/4
        assert_eq!(a.y, 0.0);
        assert_eq!(j, Vec3::ZERO);
        assert!((p + 0.5).abs() < 1e-15); // -m/r
    }

    #[test]
    fn softening_limits_close_forces() {
        let eps2 = 0.01;
        let (a, _, p) = pair_force(Vec3::new(1e-9, 0.0, 0.0), Vec3::ZERO, 1.0, eps2);
        // Force ~ m·r/ε³ → tiny; potential → -1/ε = -10.
        assert!(a.norm() < 1e-5);
        assert!((p + 10.0).abs() < 1e-6);
    }

    #[test]
    fn self_interaction_is_zero_without_softening() {
        let (a, j, p) = pair_force(Vec3::ZERO, Vec3::ZERO, 1.0, 0.0);
        assert_eq!((a, j, p), (Vec3::ZERO, Vec3::ZERO, 0.0));
    }

    #[test]
    fn self_interaction_contributes_potential_with_softening() {
        let (a, j, p) = pair_force(Vec3::ZERO, Vec3::ZERO, 2.0, 0.25);
        assert_eq!(a, Vec3::ZERO);
        assert_eq!(j, Vec3::ZERO);
        assert!((p + 4.0).abs() < 1e-15); // -m/ε = -2/0.5
    }

    #[test]
    fn jerk_matches_numerical_derivative() {
        // d(acc)/dt via finite differences of the acceleration along the
        // relative orbit must match the analytic jerk.
        let dr0 = Vec3::new(1.0, 0.5, -0.3);
        let dv = Vec3::new(-0.2, 0.1, 0.4);
        let m = 1.7;
        let eps2 = 0.01;
        let h = 1e-6;
        let (_, jerk, _) = pair_force(dr0, dv, m, eps2);
        let (ap, _, _) = pair_force(dr0 + dv * h, dv, m, eps2);
        let (am, _, _) = pair_force(dr0 - dv * h, dv, m, eps2);
        let jerk_num = (ap - am) / (2.0 * h);
        assert!(
            (jerk - jerk_num).norm() < 1e-6 * jerk.norm().max(1.0),
            "analytic {jerk:?} vs numeric {jerk_num:?}"
        );
    }

    #[test]
    fn predictor_reproduces_polynomial() {
        let j = JParticle {
            mass: 1.0,
            t0: 2.0,
            pos: Vec3::new(1.0, 0.0, 0.0),
            vel: Vec3::new(0.0, 1.0, 0.0),
            acc: Vec3::new(0.5, 0.0, 0.0),
            jerk: Vec3::new(0.0, -0.6, 0.0),
            snap: Vec3::new(0.24, 0.0, 0.0),
        };
        let dt: f64 = 0.5;
        let (x, v) = predict_j(&j, 2.0 + dt);
        let want_x = 1.0 + 0.5 * dt.powi(2) / 2.0 + 0.24 * dt.powi(4) / 24.0;
        let want_vy = 1.0 - 0.6 * dt.powi(2) / 2.0;
        assert!((x.x - want_x).abs() < 1e-15);
        assert!((v.y - want_vy).abs() < 1e-15);
    }

    #[test]
    fn direct_engine_matches_direct_all() {
        let mass = vec![0.3, 0.5, 0.2, 0.4];
        let pos = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.5, 0.0),
            Vec3::new(-0.5, 0.2, 0.9),
        ];
        let vel = vec![
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.0, -0.2, 0.0),
            Vec3::new(0.3, 0.0, 0.1),
            Vec3::new(0.0, 0.0, -0.4),
        ];
        let eps2 = 0.0; // no softening ⇒ engine self-term vanishes too
        let reference = direct_all(&mass, &pos, &vel, eps2);

        let mut eng = DirectEngine::new(4);
        for a in 0..4 {
            eng.set_j_particle(
                a,
                &JParticle {
                    mass: mass[a],
                    t0: 0.0,
                    pos: pos[a],
                    vel: vel[a],
                    ..Default::default()
                },
            );
        }
        eng.set_time(0.0);
        let ip: Vec<IParticle> = (0..4)
            .map(|a| IParticle {
                pos: pos[a],
                vel: vel[a],
                eps2,
            })
            .collect();
        let mut out = vec![ForceResult::default(); 4];
        eng.compute(&ip, &mut out);
        for a in 0..4 {
            assert!((out[a].acc - reference[a].acc).norm() < 1e-13);
            assert!((out[a].jerk - reference[a].jerk).norm() < 1e-13);
            assert!((out[a].pot - reference[a].pot).abs() < 1e-13);
        }
        assert_eq!(eng.interactions(), 16);
    }

    #[test]
    fn engine_prediction_advances_j_particles() {
        // One moving source: force on a probe must be evaluated at the
        // predicted source position, not the stored one.
        let mut eng = DirectEngine::new(1);
        eng.set_j_particle(
            0,
            &JParticle {
                mass: 1.0,
                t0: 0.0,
                pos: Vec3::new(0.0, 0.0, 0.0),
                vel: Vec3::new(1.0, 0.0, 0.0),
                ..Default::default()
            },
        );
        eng.set_time(1.0); // source now at x = 1
        let ip = [IParticle {
            pos: Vec3::new(2.0, 0.0, 0.0),
            vel: Vec3::ZERO,
            eps2: 0.0,
        }];
        let mut out = [ForceResult::default()];
        eng.compute(&ip, &mut out);
        // Separation is 1 ⇒ acc = -1 along x (source is at smaller x).
        assert!((out[0].acc.x + 1.0).abs() < 1e-14);
        assert!((out[0].pot + 1.0).abs() < 1e-14);
    }
}
