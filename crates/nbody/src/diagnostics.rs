//! Conserved-quantity bookkeeping.
//!
//! Every engine in this workspace (f64 direct, simulated GRAPE-6, treecode)
//! is validated the same way the original machine was: integrate, watch the
//! invariants.  Energy conservation is the canonical N-body correctness
//! check; the paper's §3.4 reproducibility argument ("exactly the same
//! results on machines with different sizes") is checked at the bit level
//! elsewhere, but energy drift is what tells you the *integration* is right.

use rayon::prelude::*;

use crate::particle::ParticleSet;
use crate::vec3::Vec3;

/// Energy decomposition of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Energy {
    /// Kinetic energy `½Σmv²`.
    pub kinetic: f64,
    /// Potential energy `−½ΣΣ m m / √(r² + ε²)` (each pair counted once).
    pub potential: f64,
}

impl Energy {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.potential
    }

    /// Virial ratio `Q = T / |W|` (½ in equilibrium).
    pub fn virial_ratio(&self) -> f64 {
        self.kinetic / self.potential.abs()
    }
}

/// Compute the exact (f64, softened) energy of a snapshot.  O(N²), parallel
/// over particles for large N.
pub fn energy(set: &ParticleSet, eps2: f64) -> Energy {
    let kinetic = set.kinetic_energy();
    let n = set.n();
    let pot_of = |i: usize| {
        let mut w = 0.0;
        for j in (i + 1)..n {
            let r2 = (set.pos[j] - set.pos[i]).norm2() + eps2;
            w -= set.mass[i] * set.mass[j] / r2.sqrt();
        }
        w
    };
    let potential = if n > 512 {
        (0..n).into_par_iter().map(pot_of).sum()
    } else {
        (0..n).map(pot_of).sum()
    };
    Energy { kinetic, potential }
}

/// Per-particle density estimates by the Casertano & Hut (1985) k-th
/// nearest-neighbour method: `ρᵢ ∝ mᵢ₋ₗₒ𝒸ₐₗ / r_k³` with `k = 6`.
/// O(N²) neighbour search, parallel over particles for large N.
pub fn local_densities(set: &ParticleSet) -> Vec<f64> {
    const K: usize = 6;
    let n = set.n();
    let rho_of = |i: usize| -> f64 {
        if n <= K {
            return 0.0;
        }
        // Distances to all others; take the K-th smallest.
        let mut d2: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (set.pos[j] - set.pos[i]).norm2())
            .collect();
        d2.select_nth_unstable_by(K - 1, |a, b| a.partial_cmp(b).unwrap());
        let r_k = d2[K - 1].sqrt().max(1e-30);
        // Mass within the sphere ≈ (K−1) typical masses (CH85 drop the
        // outermost to reduce bias); use the mean particle mass.
        let m_mean = set.total_mass() / n as f64;
        (K - 1) as f64 * m_mean / r_k.powi(3)
    };
    if n > 512 {
        (0..n).into_par_iter().map(rho_of).collect()
    } else {
        (0..n).map(rho_of).collect()
    }
}

/// Density centre (Casertano & Hut 1985): the ρ-weighted mean position —
/// a far more robust cluster centre than the COM once escapers exist.
pub fn density_center(set: &ParticleSet) -> Vec3 {
    let rho = local_densities(set);
    let wsum: f64 = rho.iter().sum();
    if wsum <= 0.0 {
        return set.center_of_mass();
    }
    set.pos.iter().zip(&rho).map(|(&p, &w)| p * w).sum::<Vec3>() / wsum
}

/// Core radius (Casertano & Hut 1985): the ρ-weighted rms distance from
/// the density centre — the quantity whose shrinkage signals core
/// collapse in collisional cluster runs.
pub fn core_radius(set: &ParticleSet) -> f64 {
    let rho = local_densities(set);
    let dc = {
        let wsum: f64 = rho.iter().sum();
        if wsum <= 0.0 {
            return 0.0;
        }
        set.pos.iter().zip(&rho).map(|(&p, &w)| p * w).sum::<Vec3>() / wsum
    };
    let wsum: f64 = rho.iter().sum();
    let s: f64 = set
        .pos
        .iter()
        .zip(&rho)
        .map(|(&p, &w)| w * (p - dc).norm2())
        .sum();
    (s / wsum).sqrt()
}

/// Total angular momentum `Σ m r × v`.
pub fn angular_momentum(set: &ParticleSet) -> Vec3 {
    set.mass
        .iter()
        .zip(set.pos.iter().zip(&set.vel))
        .map(|(&m, (&r, &v))| r.cross(v) * m)
        .sum()
}

/// Relative energy error between two snapshots' energies.
pub fn relative_energy_error(initial: &Energy, current: &Energy) -> f64 {
    ((current.total() - initial.total()) / initial.total()).abs()
}

/// Running tracker a simulation driver updates after every diagnostic
/// interval.
#[derive(Clone, Debug)]
pub struct ConservationTracker {
    initial: Energy,
    initial_l: Vec3,
    /// Worst relative energy error seen.
    pub max_energy_error: f64,
    /// Worst absolute angular-momentum drift seen.
    pub max_l_drift: f64,
}

impl ConservationTracker {
    /// Start tracking from the initial snapshot.
    pub fn new(set: &ParticleSet, eps2: f64) -> Self {
        Self {
            initial: energy(set, eps2),
            initial_l: angular_momentum(set),
            max_energy_error: 0.0,
            max_l_drift: 0.0,
        }
    }

    /// The energy measured at construction.
    pub fn initial_energy(&self) -> Energy {
        self.initial
    }

    /// Record a new snapshot; returns the current relative energy error.
    pub fn record(&mut self, set: &ParticleSet, eps2: f64) -> f64 {
        let e = energy(set, eps2);
        let err = relative_energy_error(&self.initial, &e);
        self.max_energy_error = self.max_energy_error.max(err);
        let drift = (angular_momentum(set) - self.initial_l).norm();
        self.max_l_drift = self.max_l_drift.max(drift);
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary() -> ParticleSet {
        // Equal-mass circular binary, separation 1, G = 1: each mass ½,
        // orbital speed of each component = ½·√(M/r)·... worked out below.
        let mut s = ParticleSet::with_capacity(2);
        // Total mass 1, separation d = 1: relative orbit speed v = √(GM/d)=1;
        // each body moves at v/2 around the COM.
        s.push(0.5, Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0));
        s.push(0.5, Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0));
        s
    }

    #[test]
    fn binary_energy_closed_form() {
        let e = energy(&binary(), 0.0);
        // T = ½(½·¼ + ½·¼) = ⅛ + ... = 0.25/2 = 0.125? T = ½Σmv² = ½(0.5·0.25 + 0.5·0.25) = 0.125
        assert!((e.kinetic - 0.125).abs() < 1e-15);
        // W = -m₁m₂/d = -0.25
        assert!((e.potential + 0.25).abs() < 1e-15);
        assert!((e.total() + 0.125).abs() < 1e-15);
        // Circular binary is virialised: Q = 0.5.
        assert!((e.virial_ratio() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn angular_momentum_of_binary() {
        let l = angular_momentum(&binary());
        // L = 2 · m r v = 2 · 0.5·0.5·0.5 = 0.25 along z.
        assert!((l - Vec3::new(0.0, 0.0, 0.25)).norm() < 1e-15);
    }

    #[test]
    fn softening_reduces_binding() {
        let hard = energy(&binary(), 0.0);
        let soft = energy(&binary(), 0.25);
        assert!(soft.potential > hard.potential);
    }

    #[test]
    fn tracker_records_worst_error() {
        let mut set = binary();
        let mut tr = ConservationTracker::new(&set, 0.0);
        assert_eq!(tr.record(&set, 0.0), 0.0);
        // Perturb kinetic energy by 1%: |ΔE/E| = 0.01·T/|E| = 0.01
        set.vel[0] = set.vel[0] * 1.01;
        let err = tr.record(&set, 0.0);
        assert!(err > 0.0);
        assert_eq!(tr.max_energy_error, err);
        // Restoring doesn't lower the recorded max.
        set.vel[0] = Vec3::new(0.0, 0.5, 0.0);
        tr.record(&set, 0.0);
        assert_eq!(tr.max_energy_error, err);
    }

    #[test]
    fn density_center_tracks_the_dense_clump() {
        // A tight clump at x = +2 plus sparse background: the density
        // centre must sit near the clump even though the COM does not.
        let mut s = ParticleSet::with_capacity(64);
        for k in 0..32 {
            let a = k as f64 * 0.37;
            // Tight clump, radius 0.05.
            s.push(
                1.0 / 64.0,
                Vec3::new(2.0 + 0.05 * a.cos(), 0.05 * a.sin(), 0.01 * (k % 5) as f64),
                Vec3::ZERO,
            );
            // Sparse halo, radius ~5, centred at origin.
            s.push(
                1.0 / 64.0,
                Vec3::new(5.0 * (a * 1.7).cos(), 5.0 * (a * 2.3).sin(), 2.0 * a.sin()),
                Vec3::ZERO,
            );
        }
        let dc = density_center(&s);
        let com = s.center_of_mass();
        assert!((dc - Vec3::new(2.0, 0.0, 0.0)).norm() < 0.5, "dc = {dc:?}");
        assert!((dc - Vec3::new(2.0, 0.0, 0.0)).norm() < (com - Vec3::new(2.0, 0.0, 0.0)).norm());
    }

    #[test]
    fn core_radius_scales_with_the_core() {
        let mk = |scale: f64| -> ParticleSet {
            let mut s = ParticleSet::with_capacity(128);
            for k in 0..128 {
                let a = k as f64 * 0.61;
                let r = scale * (0.2 + 0.8 * ((k % 13) as f64 / 13.0));
                s.push(
                    1.0 / 128.0,
                    Vec3::new(
                        r * a.cos() * (0.5 * a).sin(),
                        r * a.sin() * (0.5 * a).sin(),
                        r * (0.5 * a).cos(),
                    ),
                    Vec3::ZERO,
                );
            }
            s
        };
        let small = core_radius(&mk(0.5));
        let big = core_radius(&mk(1.0));
        assert!(
            big > small * 1.5,
            "core radius should scale: {small} vs {big}"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn tiny_systems_do_not_panic() {
        let mut s = ParticleSet::with_capacity(3);
        for k in 0..3 {
            s.push(1.0, Vec3::new(k as f64, 0.0, 0.0), Vec3::ZERO);
        }
        assert_eq!(local_densities(&s), vec![0.0; 3]);
        let _ = density_center(&s);
        assert_eq!(core_radius(&s), 0.0);
    }

    #[test]
    fn parallel_and_serial_potentials_agree() {
        // Cross the n > 512 threshold and compare against a serial sum.
        let mut s = ParticleSet::with_capacity(600);
        let mut x = 0.1f64;
        for i in 0..600 {
            x = (x * 997.0).fract();
            let y = ((i * 31 % 101) as f64) / 101.0;
            let z = ((i * 17 % 97) as f64) / 97.0;
            s.push(1.0 / 600.0, Vec3::new(x, y, z), Vec3::ZERO);
        }
        let par = energy(&s, 1e-4).potential;
        let mut ser = 0.0;
        for i in 0..600 {
            for j in (i + 1)..600 {
                let r2 = (s.pos[j] - s.pos[i]).norm2() + 1e-4;
                ser -= s.mass[i] * s.mass[j] / r2.sqrt();
            }
        }
        assert!((par - ser).abs() < 1e-12 * ser.abs());
    }
}
