//! # grape6-trace — virtual-time spans and measured breakdowns
//!
//! The SC'03 paper argues through per-term time breakdowns: every figure
//! from 13 to 19 decomposes the time per blockstep into host computation,
//! DMA setup, interface transfer, pipeline time, synchronisation and
//! inter-cluster exchange.  The simulator's discrete-event layer keeps
//! virtual clocks (`Endpoint::clock()`, ensemble cycle counters), but
//! until this crate it only exposed *totals* — sums that cannot say
//! **which** term dominates, which is the entire point of the paper's
//! §4 tuning narrative.
//!
//! This crate is the measurement substrate:
//!
//! * [`Span`] — one phase-tagged interval of virtual time with payload
//!   counters (items, bytes, cycles, retries);
//! * [`Tracer`] — a zero-cost-when-disabled span sink that the engine,
//!   integrator, endpoints and collectives record into;
//! * [`MeasuredBlockTime`] — aggregates spans into the same six-term
//!   shape as the analytic `model::BlockTime`, so model-vs-simulation
//!   tests can assert *per-term* agreement instead of totals;
//! * [`chrome_trace`] — a `chrome://tracing` / Perfetto JSON exporter,
//!   plus a machine-readable metrics dump via `serde`.
//!
//! Nothing here touches physics or clocks: recording a span never
//! advances time, and a disabled tracer is a no-op (`Option<Box<_>>`
//! none-check) — verified bitwise by the trace-overhead test in
//! `tests/model_vs_simulation.rs`.

pub mod breakdown;
pub mod chrome;
pub mod span;
pub mod tracer;

pub use breakdown::{per_track, MeasuredBlockTime};
pub use chrome::{chrome_trace, chrome_trace_to_string};
pub use span::{BarrierAlgo, KernelTag, Phase, Span, SpanCounters, Term};
pub use tracer::Tracer;

use serde::{Deserialize, Serialize};

/// How host work and GRAPE work on one timeline combine into wall time.
///
/// The split-phase host library (`g6calc_firsthalf`/`g6calc_lasthalf`)
/// lets the host run its predictor/corrector arithmetic *while* the
/// pipelines and the DMA engine are busy, so a blockstep costs
/// `max(host, grape + dma + interface)` instead of their sum — the
/// overlap the paper's §4–§5 tuning story hinges on.  Sequential mode is
/// the blocking schedule (one call site active at a time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapMode {
    /// Host and GRAPE take turns: wall time is the sum.
    #[default]
    Sequential,
    /// Host work hides behind GRAPE work (split-phase): wall time is the
    /// maximum of the two sides.
    Overlapped,
}

impl OverlapMode {
    /// Combine the host-side and engine-side (grape + dma + interface)
    /// durations of one schedule region into wall time.
    pub fn wall(self, host: f64, engine: f64) -> f64 {
        match self {
            OverlapMode::Sequential => host + engine,
            OverlapMode::Overlapped => host.max(engine),
        }
    }
}

/// How the per-blockstep inter-host network traffic is scheduled.
///
/// The sequential schedule is the PR 5 shape: a commit barrier, then (on
/// multi-node clusters) a standalone j-exchange, then a post-exchange
/// barrier — every collective pays its own per-message latency and switch
/// charges.  Coalescing folds all three into **one** butterfly wave per
/// blockstep whose high stages *are* the inter-cluster exchange partners,
/// so barrier sentinel + allreduce-min + j-records ride the same wire
/// messages.  The overlapped variant additionally posts the first wave
/// stage before the force pass and completes it afterwards, hiding one
/// stage cost behind compute (split-phase, like `OverlapMode` on the
/// host↔GRAPE side).  All three schedules are bitwise identical in
/// results; they differ only in message count and visible network time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetSchedule {
    /// Separate commit barrier, exchange, post barrier (PR 5 baseline).
    #[default]
    Sequential,
    /// One coalesced butterfly wave per blockstep.
    Coalesced,
    /// Coalesced wave with its first stage hidden behind compute.
    CoalescedOverlapped,
}

impl NetSchedule {
    /// Stable display name (JSON reports, bench output).
    pub fn name(self) -> &'static str {
        match self {
            NetSchedule::Sequential => "sequential",
            NetSchedule::Coalesced => "coalesced",
            NetSchedule::CoalescedOverlapped => "coalesced-overlapped",
        }
    }

    /// Whether j-exchange traffic rides the barrier wave.
    pub fn coalesced(self) -> bool {
        !matches!(self, NetSchedule::Sequential)
    }

    /// Whether the first wave stage is hidden behind compute.
    pub fn overlapped(self) -> bool {
        matches!(self, NetSchedule::CoalescedOverlapped)
    }
}

/// Timing constants the force engine needs to convert its hardware-level
/// activity (chunks, cycles, word transfers) into virtual seconds.
///
/// This mirrors the fields of `grape6_model::GrapeTiming` that describe
/// the host↔GRAPE path; it lives here (with plain `pub` fields) so the
/// engine can depend on it without a dependency cycle through the model
/// crate.  `GrapeTiming::engine_timebase()` performs the conversion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineTimebase {
    /// Seconds per hardware cycle (1 / clock).
    pub sec_per_cycle: f64,
    /// Fixed cost to set up one DMA transfer, seconds.
    pub dma_setup: f64,
    /// DMA transfers per GRAPE call (i upload, force readback, j write).
    pub dma_per_call: f64,
    /// Host↔GRAPE interface bandwidth, bytes/s.
    pub interface_bw: f64,
    /// Bytes to ship one i-particle to the boards.
    pub i_word_bytes: f64,
    /// Bytes returned per force.
    pub f_word_bytes: f64,
    /// Bytes to write one updated j-particle.
    pub j_word_bytes: f64,
    /// How this engine's schedule combines with concurrent host work
    /// (split-phase overlap vs blocking calls).  Declarative: span
    /// *recording* is unchanged either way; integrators and models read
    /// this to pick the `max` or the sum when merging the two sides.
    #[serde(default)]
    pub overlap: OverlapMode,
}

impl EngineTimebase {
    /// Virtual cost of one DMA-driven GRAPE call (setup only).
    pub fn dma_call(&self) -> f64 {
        self.dma_per_call * self.dma_setup
    }

    /// Interface time to ship `n` i-particles and read back their forces.
    pub fn if_time(&self, n: usize) -> f64 {
        n as f64 * (self.i_word_bytes + self.f_word_bytes) / self.interface_bw
    }

    /// Interface time to write one updated j-particle.
    pub fn j_write_time(&self) -> f64 {
        self.j_word_bytes / self.interface_bw
    }
}

/// Host-side per-blockstep cost rates, pre-evaluated for the system size
/// at hand (the cache-dependent `t_step(N)` of the model's `HostProfile`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostRates {
    /// Fixed host cost per blockstep (block assembly, scheduling).
    pub t_block_fixed: f64,
    /// Host cost per particle step (predict + correct + bookkeeping).
    pub t_step: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timebase_arithmetic() {
        let tb = EngineTimebase {
            sec_per_cycle: 1.0 / 90.0e6,
            dma_setup: 12.0e-6,
            dma_per_call: 3.0,
            interface_bw: 200.0e6,
            i_word_bytes: 40.0,
            f_word_bytes: 64.0,
            j_word_bytes: 80.0,
            overlap: OverlapMode::default(),
        };
        assert!((tb.dma_call() - 36.0e-6).abs() < 1e-12);
        assert!((tb.if_time(48) - 48.0 * 104.0 / 200.0e6).abs() < 1e-12);
        assert!((tb.j_write_time() - 0.4e-6).abs() < 1e-12);
    }

    #[test]
    fn net_schedule_names_and_flags() {
        assert_eq!(NetSchedule::default(), NetSchedule::Sequential);
        assert_eq!(NetSchedule::Sequential.name(), "sequential");
        assert_eq!(NetSchedule::Coalesced.name(), "coalesced");
        assert_eq!(
            NetSchedule::CoalescedOverlapped.name(),
            "coalesced-overlapped"
        );
        assert!(!NetSchedule::Sequential.coalesced());
        assert!(NetSchedule::Coalesced.coalesced());
        assert!(!NetSchedule::Coalesced.overlapped());
        assert!(NetSchedule::CoalescedOverlapped.overlapped());
    }

    #[test]
    fn overlap_mode_combines_sum_vs_max() {
        assert_eq!(OverlapMode::default(), OverlapMode::Sequential);
        assert_eq!(OverlapMode::Sequential.wall(2.0, 3.0), 5.0);
        assert_eq!(OverlapMode::Overlapped.wall(2.0, 3.0), 3.0);
        assert_eq!(OverlapMode::Overlapped.wall(4.0, 3.0), 4.0);
    }
}
