//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! The produced JSON is the "trace event" format: complete events
//! (`"ph": "X"`) with microsecond timestamps, one process per traced
//! component (a rank, the single-host engine) and one thread per span
//! track.  Load the file at `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The document is built by direct string formatting: every emitted value
//! is a number or a name from a fixed set, so no JSON library is needed —
//! which also keeps this crate functional in offline builds where the
//! full `serde_json` is unavailable.

use crate::span::Span;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Build a Chrome-trace JSON document from named span streams.
///
/// Each `(name, spans)` pair becomes one process; span tracks become
/// threads within it.  Virtual seconds are exported as microseconds, the
/// unit the viewer expects.
pub fn chrome_trace(streams: &[(String, Vec<Span>)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (name, spans)) in streams.iter().enumerate() {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            json_escape(name)
        ));
        for s in spans {
            let mut extra = String::new();
            if let Some(k) = s.counters.kernel {
                extra.push_str(&format!(r#","kernel":"{}""#, k.name()));
            }
            if s.counters.records > 0 {
                extra.push_str(&format!(r#","records":{}"#, s.counters.records));
            }
            if let Some(a) = s.counters.algo {
                extra.push_str(&format!(r#","algo":"{}""#, a.name()));
            }
            events.push(format!(
                concat!(
                    r#"{{"name":"{name}","cat":"grape6","ph":"X","pid":{pid},"tid":{tid},"#,
                    r#""ts":{ts},"dur":{dur},"#,
                    r#""args":{{"items":{items},"bytes":{bytes},"cycles":{cycles},"retries":{retries}{extra}}}}}"#
                ),
                name = s.phase.name(),
                pid = pid,
                tid = s.track,
                ts = json_f64(s.t0 * 1e6),
                dur = json_f64(s.dur() * 1e6),
                items = s.counters.items,
                bytes = s.counters.bytes,
                cycles = s.counters.cycles,
                retries = s.counters.retries,
                extra = extra,
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

/// Alias kept for discoverability: the exporter already returns a string.
pub fn chrome_trace_to_string(streams: &[(String, Vec<Span>)]) -> String {
    chrome_trace(streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, SpanCounters};

    #[test]
    fn export_has_metadata_and_events() {
        let spans = vec![
            Span::new(Phase::Grape, 1.0e-6, 3.0e-6),
            Span {
                track: 2,
                counters: SpanCounters {
                    bytes: 640,
                    ..Default::default()
                },
                ..Span::new(Phase::Interface, 3.0e-6, 4.0e-6)
            },
        ];
        let doc = chrome_trace(&[("rank0".to_string(), spans)]);
        assert!(doc.contains(r#""traceEvents""#));
        assert!(doc.contains(r#""process_name""#));
        assert!(doc.contains(r#""name":"grape""#));
        assert!(doc.contains(r#""tid":2"#));
        assert!(doc.contains(r#""bytes":640"#));
        // ts of the grape span: 1 µs.
        assert!(doc.contains(r#""ts":1,"#) || doc.contains(r#""ts":0.999"#));
        // Balanced braces (cheap well-formedness check).
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn escaping_and_nonfinite_numbers() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
