//! Phase-tagged virtual-time intervals.

use serde::{Deserialize, Serialize};

/// The six time terms of the paper's breakdown (figs. 13–19 and §4.1's
/// cost equation) — every [`Phase`] maps into one of these, or into none
/// (sub-spans that only exist for trace visualisation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// Host computation (predictor polynomial, corrector, bookkeeping).
    Host,
    /// DMA setup overhead of GRAPE calls.
    Dma,
    /// Host↔GRAPE interface transfer (i-particles, forces, j writeback).
    Interface,
    /// GRAPE pipeline time.
    Grape,
    /// Barrier synchronisation between hosts.
    Sync,
    /// Inter-cluster particle exchange.
    Exchange,
}

/// What a span was spent doing.
///
/// Phases are finer-grained than the six breakdown terms: the engine
/// distinguishes first-attempt pipeline passes from exponent-widening
/// retries and sanity recomputes (all pipeline time), and the network
/// layer records raw send/recv/backoff activity underneath the collective
/// operations built from it.  [`Phase::term`] folds a phase into its
/// breakdown term; phases that return `None` are visualisation-only and
/// excluded from [`crate::MeasuredBlockTime`] so nothing double-counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Host-side prediction of the i-particles of a block.
    Predict,
    /// Remaining host work of a blockstep (correct, retime, scheduling).
    Host,
    /// DMA setup for one GRAPE call.
    Dma,
    /// Interface transfer (i upload + force readback, or j writeback).
    Interface,
    /// A pipeline pass that succeeded first time.
    Grape,
    /// A pipeline pass repeated with widened block-FP exponents.
    WidenRetry,
    /// A pipeline pass repeated after a NaN/overflow sanity failure.
    SanityRecompute,
    /// One board's share of a pass (sub-span of Grape on its own track).
    BoardPass,
    /// A barrier or other synchronisation collective.
    Sync,
    /// Inter-cluster exchange traffic.
    Exchange,
    /// An `Endpoint::send` (sub-span of Sync/Exchange).
    Send,
    /// An endpoint receive, including the wait (sub-span of Sync/Exchange).
    Recv,
    /// Congestion backoff charged on a retried delivery.
    Backoff,
    /// A mid-run known-answer self-test pass (recovery ladder rung 2) —
    /// pipeline time spent proving the hardware, not computing forces.
    Selftest,
    /// A full j-memory reload (redistribution after masking, checkpoint
    /// restore) — interface traffic.
    Reload,
    /// Writing or restoring a checkpoint — host-side work.
    Ckpt,
    /// A liveness heartbeat round on the real-transport cluster —
    /// synchronisation traffic, charged like a barrier.
    Heartbeat,
    /// Cluster recovery coordination after a detected rank death or
    /// stall: suspicion broadcast, dead-set agreement, rejoin-or-shrink,
    /// and the rewind to the last coordinated checkpoint.
    Recover,
}

impl Phase {
    /// The breakdown term this phase accumulates into, or `None` for
    /// visualisation-only sub-spans.
    pub fn term(self) -> Option<Term> {
        match self {
            Phase::Predict | Phase::Host => Some(Term::Host),
            Phase::Dma => Some(Term::Dma),
            Phase::Interface => Some(Term::Interface),
            Phase::Grape | Phase::WidenRetry | Phase::SanityRecompute | Phase::Selftest => {
                Some(Term::Grape)
            }
            Phase::Sync | Phase::Heartbeat | Phase::Recover => Some(Term::Sync),
            Phase::Exchange => Some(Term::Exchange),
            Phase::Reload => Some(Term::Interface),
            Phase::Ckpt => Some(Term::Host),
            Phase::BoardPass | Phase::Send | Phase::Recv | Phase::Backoff => None,
        }
    }

    /// Stable display name (used as the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Predict => "predict",
            Phase::Host => "host",
            Phase::Dma => "dma",
            Phase::Interface => "interface",
            Phase::Grape => "grape",
            Phase::WidenRetry => "widen-retry",
            Phase::SanityRecompute => "sanity-recompute",
            Phase::BoardPass => "board-pass",
            Phase::Sync => "sync",
            Phase::Exchange => "exchange",
            Phase::Send => "send",
            Phase::Recv => "recv",
            Phase::Backoff => "backoff",
            Phase::Selftest => "selftest",
            Phase::Reload => "reload",
            Phase::Ckpt => "ckpt",
            Phase::Heartbeat => "heartbeat",
            Phase::Recover => "recover",
        }
    }
}

/// Which host-side force kernel produced a pipeline span.
///
/// The two kernels are bitwise identical in results and cycle accounting;
/// the tag records which one actually ran so host wall-clock comparisons
/// (the kernel A/B benchmark) can attribute spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelTag {
    /// The per-interaction scalar reference oracle.
    Scalar,
    /// The batched structure-of-arrays kernel.
    Batched,
    /// The hand-rolled SIMD-lane kernel (runtime-dispatched AVX2/AVX-512).
    Simd,
}

impl KernelTag {
    /// Stable display name (exported into Chrome-trace args).
    pub fn name(self) -> &'static str {
        match self {
            KernelTag::Scalar => "scalar",
            KernelTag::Batched => "batched",
            KernelTag::Simd => "simd",
        }
    }
}

/// Which barrier/collective wave pattern actually ran behind a Sync or
/// Exchange span.
///
/// `butterfly_barrier` silently falls back to the dissemination pattern
/// for non-power-of-two rank counts; the §4 model validation charges the
/// *butterfly* stage cost, so a misattributed fallback would corrupt the
/// sync-term comparison.  Recording the algorithm that actually ran makes
/// the substitution observable in both [`SpanCounters`] and the
/// collective cost report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BarrierAlgo {
    /// Pairwise XOR exchange (power-of-two ranks, clock-aligning).
    Butterfly,
    /// Dissemination rounds (any rank count; exits can spread).
    Dissemination,
    /// Central coordinator (the MPICH/p4-like ablation shape).
    Central,
}

impl BarrierAlgo {
    /// Stable display name (exported into Chrome-trace args).
    pub fn name(self) -> &'static str {
        match self {
            BarrierAlgo::Butterfly => "butterfly",
            BarrierAlgo::Dissemination => "dissemination",
            BarrierAlgo::Central => "central",
        }
    }
}

/// Payload counters attached to a span; zero-initialised, fill what
/// applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanCounters {
    /// Particles (i or j) the span processed — for network spans, the
    /// *wire messages* put on the link.
    pub items: u64,
    /// Bytes moved (interface words, wire bytes).
    pub bytes: u64,
    /// Hardware cycles, where the span is clocked hardware.
    pub cycles: u64,
    /// Retries behind this span (widen attempts, link retransmits).
    pub retries: u64,
    /// The force kernel behind a pipeline-pass span; `None` for spans
    /// that are not force passes.
    #[serde(default)]
    pub kernel: Option<KernelTag>,
    /// Logical records packed into the span's wire messages.  A coalesced
    /// network span has `records > items` — k payloads rode one message;
    /// uncoalesced traffic has `records == items` (or 0 where the
    /// distinction does not apply).  The records-per-message ratio is the
    /// measured coalescing factor.
    #[serde(default)]
    pub records: u64,
    /// The barrier/collective wave pattern behind a Sync/Exchange span;
    /// `None` for spans that are not collectives.
    #[serde(default)]
    pub algo: Option<BarrierAlgo>,
}

/// One interval of virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// What the time was spent on.
    pub phase: Phase,
    /// Virtual start time, seconds.
    pub t0: f64,
    /// Virtual end time, seconds.
    pub t1: f64,
    /// Display track (0 = the owning component's main track; the engine
    /// uses 1 + board index for per-board sub-spans).
    pub track: u32,
    /// Payload counters.
    pub counters: SpanCounters,
}

impl Span {
    /// A counter-less span.
    pub fn new(phase: Phase, t0: f64, t1: f64) -> Self {
        Self {
            phase,
            t0,
            t1,
            track: 0,
            counters: SpanCounters::default(),
        }
    }

    /// Duration in virtual seconds (clamped at zero).
    pub fn dur(&self) -> f64 {
        (self.t1 - self.t0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_has_a_name_and_a_term_policy() {
        let all = [
            Phase::Predict,
            Phase::Host,
            Phase::Dma,
            Phase::Interface,
            Phase::Grape,
            Phase::WidenRetry,
            Phase::SanityRecompute,
            Phase::BoardPass,
            Phase::Sync,
            Phase::Exchange,
            Phase::Send,
            Phase::Recv,
            Phase::Backoff,
            Phase::Selftest,
            Phase::Reload,
            Phase::Ckpt,
        ];
        for p in all {
            assert!(!p.name().is_empty());
        }
        // Sub-spans must not reach the breakdown (double counting).
        assert_eq!(Phase::BoardPass.term(), None);
        assert_eq!(Phase::Send.term(), None);
        assert_eq!(Phase::Recv.term(), None);
        assert_eq!(Phase::Backoff.term(), None);
        // Retry flavours are pipeline time.
        assert_eq!(Phase::WidenRetry.term(), Some(Term::Grape));
        assert_eq!(Phase::SanityRecompute.term(), Some(Term::Grape));
        // Recovery work folds into the terms of the hardware it occupies.
        assert_eq!(Phase::Selftest.term(), Some(Term::Grape));
        assert_eq!(Phase::Reload.term(), Some(Term::Interface));
        assert_eq!(Phase::Ckpt.term(), Some(Term::Host));
    }

    #[test]
    fn kernel_tags_have_stable_names() {
        assert_eq!(KernelTag::Scalar.name(), "scalar");
        assert_eq!(KernelTag::Batched.name(), "batched");
        assert_eq!(KernelTag::Simd.name(), "simd");
        // Untagged is the default so non-pipeline spans need no opt-out.
        assert_eq!(SpanCounters::default().kernel, None);
    }

    #[test]
    fn barrier_algos_have_stable_names_and_default_off() {
        assert_eq!(BarrierAlgo::Butterfly.name(), "butterfly");
        assert_eq!(BarrierAlgo::Dissemination.name(), "dissemination");
        assert_eq!(BarrierAlgo::Central.name(), "central");
        // Non-collective spans carry no algorithm and no record count.
        let c = SpanCounters::default();
        assert_eq!(c.algo, None);
        assert_eq!(c.records, 0);
    }

    #[test]
    fn span_duration_clamps() {
        assert_eq!(Span::new(Phase::Host, 1.0, 3.5).dur(), 2.5);
        assert_eq!(Span::new(Phase::Host, 3.5, 1.0).dur(), 0.0);
    }
}
