//! Aggregating spans into the paper's six-term breakdown.

use serde::{Deserialize, Serialize};

use crate::span::{Span, Term};

/// Measured wall-clock (virtual) breakdown of a blockstep — the same six
/// terms as the analytic `model::BlockTime`, but summed from recorded
/// [`Span`]s instead of predicted from workload statistics.  This is what
/// lets `tests/model_vs_simulation.rs` assert *per-term* agreement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasuredBlockTime {
    /// Host computation, seconds.
    pub host: f64,
    /// DMA setup, seconds.
    pub dma: f64,
    /// Interface transfer, seconds.
    pub interface: f64,
    /// GRAPE pipeline (including widen retries and sanity recomputes).
    pub grape: f64,
    /// Barrier synchronisation, seconds.
    pub sync: f64,
    /// Inter-cluster exchange, seconds.
    pub exchange: f64,
    /// Wall-clock extent of the spans (last end − first start), seconds.
    /// Under the sequential schedule this equals [`MeasuredBlockTime::total`]
    /// (spans tile the timeline); under split-phase overlap host spans run
    /// concurrently with engine spans on the same timeline, so the wall is
    /// *shorter* than the sum of the terms — the measured overlap win.
    #[serde(default)]
    pub wall: f64,
}

impl MeasuredBlockTime {
    /// Sum spans into the six terms; visualisation-only phases
    /// (`Phase::term() == None`) are skipped.  `wall` is the timeline
    /// extent of the term-bearing spans.
    pub fn from_spans(spans: &[Span]) -> Self {
        let mut out = Self::default();
        let mut t0 = f64::INFINITY;
        let mut t1 = f64::NEG_INFINITY;
        for s in spans {
            let Some(term) = s.phase.term() else { continue };
            let d = s.dur();
            t0 = t0.min(s.t0);
            t1 = t1.max(s.t1);
            match term {
                Term::Host => out.host += d,
                Term::Dma => out.dma += d,
                Term::Interface => out.interface += d,
                Term::Grape => out.grape += d,
                Term::Sync => out.sync += d,
                Term::Exchange => out.exchange += d,
            }
        }
        if t1 > t0 {
            out.wall = t1 - t0;
        }
        out
    }

    /// How much of the term time the schedule hid: `total / wall`.
    /// 1.0 means no overlap (sequential); approaching 2.0 means host work
    /// fully hidden behind an equally-long engine side.  Returns 1.0 when
    /// no wall was measured.
    pub fn overlap_gain(&self) -> f64 {
        if self.wall > 0.0 {
            self.total() / self.wall
        } else {
            1.0
        }
    }

    /// Total across terms.
    pub fn total(&self) -> f64 {
        self.host + self.dma + self.interface + self.grape + self.sync + self.exchange
    }

    /// Elementwise sum (accumulating blocksteps).  Walls add too:
    /// consecutive blocksteps occupy disjoint stretches of the timeline.
    pub fn add(&mut self, o: &Self) {
        self.host += o.host;
        self.dma += o.dma;
        self.interface += o.interface;
        self.grape += o.grape;
        self.sync += o.sync;
        self.exchange += o.exchange;
        self.wall += o.wall;
    }

    /// Elementwise maximum — the critical path across ranks, term by term
    /// (the paper's breakdown figures plot the slowest host's view).
    pub fn max(&self, o: &Self) -> Self {
        Self {
            host: self.host.max(o.host),
            dma: self.dma.max(o.dma),
            interface: self.interface.max(o.interface),
            grape: self.grape.max(o.grape),
            sync: self.sync.max(o.sync),
            exchange: self.exchange.max(o.exchange),
            wall: self.wall.max(o.wall),
        }
    }

    /// The terms as `(name, seconds)` pairs, in the paper's order.
    pub fn terms(&self) -> [(&'static str, f64); 6] {
        [
            ("host", self.host),
            ("dma", self.dma),
            ("interface", self.interface),
            ("grape", self.grape),
            ("sync", self.sync),
            ("exchange", self.exchange),
        ]
    }

    /// The breakdown as a JSON object (built by hand so it stays
    /// functional in offline builds without the full `serde_json`).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .terms()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", crate::chrome::json_f64(*v)))
            .collect();
        format!(
            "{{{},\"total\":{},\"wall\":{}}}",
            body.join(","),
            crate::chrome::json_f64(self.total()),
            crate::chrome::json_f64(self.wall)
        )
    }
}

/// Fold spans into one breakdown per track id, in track order.
///
/// Multi-tenant consumers (the farm) tag every span of a grant with the
/// owning tenant's id in [`Span::track`]; this splits a mixed span log
/// back into per-tenant six-term breakdowns.  Tracks appear in ascending
/// id order, so the result is deterministic for a deterministic log.
pub fn per_track(spans: &[Span]) -> Vec<(u32, MeasuredBlockTime)> {
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    tracks
        .into_iter()
        .map(|track| {
            let mine: Vec<Span> = spans.iter().filter(|s| s.track == track).cloned().collect();
            (track, MeasuredBlockTime::from_spans(&mine))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, Span};

    #[test]
    fn per_track_splits_a_mixed_log() {
        let mut a = Span::new(Phase::Grape, 0.0, 1.0);
        a.track = 2;
        let mut b = Span::new(Phase::Host, 1.0, 1.5);
        b.track = 0;
        let mut c = Span::new(Phase::Grape, 2.0, 2.25);
        c.track = 2;
        let folded = per_track(&[a, b, c]);
        assert_eq!(folded.len(), 2);
        assert_eq!(folded[0].0, 0);
        assert!((folded[0].1.host - 0.5).abs() < 1e-12);
        assert_eq!(folded[1].0, 2);
        assert!((folded[1].1.grape - 1.25).abs() < 1e-12);
    }

    #[test]
    fn aggregation_maps_phases_to_terms() {
        let spans = vec![
            Span::new(Phase::Predict, 0.0, 1.0),
            Span::new(Phase::Host, 1.0, 2.0),
            Span::new(Phase::Dma, 2.0, 2.5),
            Span::new(Phase::Interface, 2.5, 3.0),
            Span::new(Phase::Grape, 3.0, 5.0),
            Span::new(Phase::WidenRetry, 5.0, 7.0),
            Span::new(Phase::BoardPass, 3.0, 5.0), // sub-span: ignored
            Span::new(Phase::Sync, 7.0, 7.5),
            Span::new(Phase::Exchange, 7.5, 8.0),
            Span::new(Phase::Recv, 7.0, 7.4), // sub-span: ignored
        ];
        let b = MeasuredBlockTime::from_spans(&spans);
        assert_eq!(b.host, 2.0);
        assert_eq!(b.dma, 0.5);
        assert_eq!(b.interface, 0.5);
        assert_eq!(b.grape, 4.0);
        assert_eq!(b.sync, 0.5);
        assert_eq!(b.exchange, 0.5);
        assert!((b.total() - 8.0).abs() < 1e-12);
        // Sequential spans tile the timeline: wall == total, gain 1.
        assert_eq!(b.wall, 8.0);
        assert!((b.overlap_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_spans_shrink_the_wall() {
        // A host span hiding entirely behind a pipeline span: the terms
        // still sum both, the wall only spans the timeline once.
        let spans = vec![
            Span::new(Phase::Grape, 0.0, 4.0),
            Span::new(Phase::Host, 0.0, 3.0),
        ];
        let b = MeasuredBlockTime::from_spans(&spans);
        assert_eq!(b.grape, 4.0);
        assert_eq!(b.host, 3.0);
        assert_eq!(b.total(), 7.0);
        assert_eq!(b.wall, 4.0);
        assert!((b.overlap_gain() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_max_are_elementwise() {
        let a = MeasuredBlockTime {
            host: 1.0,
            dma: 2.0,
            interface: 3.0,
            grape: 4.0,
            sync: 5.0,
            exchange: 6.0,
            wall: 21.0,
        };
        let b = MeasuredBlockTime {
            host: 6.0,
            dma: 5.0,
            interface: 4.0,
            grape: 3.0,
            sync: 2.0,
            exchange: 1.0,
            wall: 20.0,
        };
        let m = a.max(&b);
        assert_eq!(m.host, 6.0);
        assert_eq!(m.exchange, 6.0);
        assert_eq!(m.grape, 4.0);
        let mut s = a;
        s.add(&b);
        assert_eq!(s.total(), a.total() + b.total());
    }

    #[test]
    fn json_dump_contains_every_term() {
        let a = MeasuredBlockTime {
            host: 1.5e-5,
            grape: 0.25,
            ..Default::default()
        };
        let j = a.to_json();
        for k in [
            "host",
            "dma",
            "interface",
            "grape",
            "sync",
            "exchange",
            "total",
            "wall",
        ] {
            assert!(j.contains(&format!("\"{k}\":")), "missing {k} in {j}");
        }
        assert!(j.contains("0.25"));
    }
}
