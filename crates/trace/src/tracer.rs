//! The span sink.

use crate::span::Span;

#[derive(Clone, Debug, Default)]
struct TraceBuf {
    spans: Vec<Span>,
    paused: bool,
}

/// A zero-cost-when-disabled span recorder.
///
/// A disabled tracer is a `None` — every [`Tracer::record`] reduces to one
/// branch and the instrumented code paths allocate nothing.  An enabled
/// tracer can additionally be *paused* ([`Tracer::set_active`]): the
/// measured-breakdown runner uses this to charge only a rank's own share
/// of a block while still computing the foreign members it needs for
/// deterministic trajectories.
#[derive(Clone, Debug, Default)]
pub struct Tracer(Option<Box<TraceBuf>>);

impl Tracer {
    /// The no-op tracer (the default).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A recording tracer.
    pub fn enabled() -> Self {
        Self(Some(Box::default()))
    }

    /// True if this tracer ever records (even while paused).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// True if a [`Tracer::record`] right now would store the span.
    pub fn is_active(&self) -> bool {
        matches!(&self.0, Some(b) if !b.paused)
    }

    /// Pause (`false`) or resume (`true`) recording; no-op when disabled.
    pub fn set_active(&mut self, active: bool) {
        if let Some(b) = &mut self.0 {
            b.paused = !active;
        }
    }

    /// Record one span (dropped when disabled or paused).
    #[inline]
    pub fn record(&mut self, span: Span) {
        if let Some(b) = &mut self.0 {
            if !b.paused {
                b.spans.push(span);
            }
        }
    }

    /// The spans recorded so far (empty when disabled).
    pub fn spans(&self) -> &[Span] {
        match &self.0 {
            Some(b) => &b.spans,
            None => &[],
        }
    }

    /// Drain the recorded spans, leaving the tracer enabled and empty.
    pub fn take(&mut self) -> Vec<Span> {
        match &mut self.0 {
            Some(b) => std::mem::take(&mut b.spans),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    #[test]
    fn disabled_tracer_drops_everything() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.is_active());
        t.record(Span::new(Phase::Host, 0.0, 1.0));
        assert!(t.spans().is_empty());
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_records_and_drains() {
        let mut t = Tracer::enabled();
        assert!(t.is_active());
        t.record(Span::new(Phase::Dma, 0.0, 1.0));
        t.record(Span::new(Phase::Grape, 1.0, 2.0));
        assert_eq!(t.spans().len(), 2);
        let got = t.take();
        assert_eq!(got.len(), 2);
        assert!(t.spans().is_empty());
        assert!(t.is_enabled(), "take keeps the tracer enabled");
    }

    #[test]
    fn pause_resume() {
        let mut t = Tracer::enabled();
        t.set_active(false);
        assert!(t.is_enabled() && !t.is_active());
        t.record(Span::new(Phase::Host, 0.0, 1.0));
        t.set_active(true);
        t.record(Span::new(Phase::Host, 1.0, 2.0));
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].t0, 1.0);
    }
}
