//! The real-cluster smoke test: four OS *processes* exchange the chained
//! coalesced waves over TCP and Unix sockets, and every process's state
//! digest must equal the virtual-time fabric's digest for the same
//! parameters — the transport backends differ only in what a message
//! costs, never in what it delivers.
//!
//! On top of the clean-run gate sit the survival gates: a seeded
//! kill/stall schedule against four real supervised rank processes
//! (SIGKILL → respawn-from-checkpoint, SIGSTOP → shrink → eviction,
//! digests bitwise equal to the unfaulted run throughout), and a
//! torn-frame injector that dies mid-`Frame` on a live mesh.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use grape6_bench::chaos_cluster::{run_cluster_chaos, ClusterChaosConfig};
use grape6_bench::wavecheck::virtual_wave_digests;
use grape6_net::transport::{StreamConfig, StreamKind, StreamTransport, TransportError};

const P: usize = 4;
const STEPS: u64 = 8;
const RECS: usize = 3;

fn spawn_rank(rank: usize, dir: &PathBuf, kind: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_cluster_node"))
        .args([
            &rank.to_string(),
            &P.to_string(),
            dir.to_str().unwrap(),
            kind,
            &STEPS.to_string(),
            &RECS.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cluster_node")
}

fn digest_of(out: std::process::Output, rank: usize, kind: &str) -> u64 {
    assert!(
        out.status.success(),
        "{kind} rank {rank} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest="))
        .unwrap_or_else(|| panic!("{kind} rank {rank}: no digest line in {stdout:?}"));
    u64::from_str_radix(line.trim(), 16).expect("hex digest")
}

fn run_cluster(kind: &str) -> Vec<u64> {
    let dir =
        std::env::temp_dir().join(format!("g6-transport-procs-{kind}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let children: Vec<Child> = (0..P).map(|r| spawn_rank(r, &dir, kind)).collect();
    let digests = children
        .into_iter()
        .enumerate()
        .map(|(r, c)| digest_of(c.wait_with_output().expect("wait"), r, kind))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    digests
}

#[test]
fn four_tcp_processes_match_the_virtual_fabric_bitwise() {
    let want = virtual_wave_digests(P, STEPS, RECS, false);
    let got = run_cluster("tcp");
    assert_eq!(got, want);
}

#[test]
fn four_uds_processes_match_the_virtual_fabric_bitwise() {
    let want = virtual_wave_digests(P, STEPS, RECS, false);
    let got = run_cluster("uds");
    assert_eq!(got, want);
}

/// The acceptance gate of the recovery tentpole: a 4-rank real-process
/// TCP run has one rank SIGKILLed mid-wave (respawned from its
/// coordinated checkpoint) and one rank SIGSTOPped past the read
/// deadline (shrunk, then evicted when SIGCONT wakes it) — and every
/// process that finishes prints the digest an unfaulted run prints.
#[test]
fn chaos_kill_and_stall_recover_bitwise_identical() {
    let dir = std::env::temp_dir().join(format!("g6-proc-chaos-{}", std::process::id()));
    let cfg = ClusterChaosConfig::new(PathBuf::from(env!("CARGO_BIN_EXE_cluster_node")), dir);
    let report = run_cluster_chaos(&cfg);
    assert!(
        report.ok(),
        "chaos violations: {:#?}\nnodes: {:#?}",
        report.violations,
        report
            .nodes
            .iter()
            .map(|n| (n.orank, n.respawned, n.exit, n.stderr.clone()))
            .collect::<Vec<_>>()
    );
    // Both recovery modes ran: the respawned second life finished with
    // the clean digest, and the stalled rank was evicted.
    assert!(report.recoveries >= 2);
    assert!(report
        .nodes
        .iter()
        .any(|n| n.respawned && n.digest == Some(report.clean_digest)));
    assert!(report.recover_seconds > 0.0);
}

/// A peer that dies between two `write(2)` calls of one frame — length
/// prefix promising more than it delivers — must surface as a typed
/// `Down` with the torn frame counted, never a panic or a truncated
/// decode.  The injector is a separate OS process (`cluster_node
/// --torn`), so the tear crosses a real socket.
#[test]
fn torn_frame_from_a_dying_process_is_typed_down() {
    let dir = std::env::temp_dir().join(format!("g6-proc-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nonce = 0x7042;
    let child = Command::new(env!("CARGO_BIN_EXE_cluster_node"))
        .args([
            "1",
            "2",
            dir.to_str().unwrap(),
            "tcp",
            "--torn",
            &format!("--nonce={nonce:}"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn torn injector");
    let scfg = StreamConfig {
        nonce,
        ..StreamConfig::default()
    };
    let mut tr =
        StreamTransport::connect_with(0, 2, &dir, StreamKind::Tcp, &scfg).expect("rendezvous");
    let err = tr
        .recv_frame_deadline(1, Duration::from_millis(200), 5)
        .expect_err("torn frame must be a typed error");
    assert_eq!(err, TransportError::Down { from: 1, to: 0 });
    assert_eq!(tr.torn_frames(), 1);
    let out = child.wait_with_output().expect("injector exit");
    assert!(
        out.status.success(),
        "injector failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
