//! The real-cluster smoke test: four OS *processes* exchange the chained
//! coalesced waves over TCP and Unix sockets, and every process's state
//! digest must equal the virtual-time fabric's digest for the same
//! parameters — the transport backends differ only in what a message
//! costs, never in what it delivers.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use grape6_bench::wavecheck::virtual_wave_digests;

const P: usize = 4;
const STEPS: u64 = 8;
const RECS: usize = 3;

fn spawn_rank(rank: usize, dir: &PathBuf, kind: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_cluster_node"))
        .args([
            &rank.to_string(),
            &P.to_string(),
            dir.to_str().unwrap(),
            kind,
            &STEPS.to_string(),
            &RECS.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cluster_node")
}

fn digest_of(out: std::process::Output, rank: usize, kind: &str) -> u64 {
    assert!(
        out.status.success(),
        "{kind} rank {rank} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest="))
        .unwrap_or_else(|| panic!("{kind} rank {rank}: no digest line in {stdout:?}"));
    u64::from_str_radix(line.trim(), 16).expect("hex digest")
}

fn run_cluster(kind: &str) -> Vec<u64> {
    let dir =
        std::env::temp_dir().join(format!("g6-transport-procs-{kind}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let children: Vec<Child> = (0..P).map(|r| spawn_rank(r, &dir, kind)).collect();
    let digests = children
        .into_iter()
        .enumerate()
        .map(|(r, c)| digest_of(c.wait_with_output().expect("wait"), r, kind))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    digests
}

#[test]
fn four_tcp_processes_match_the_virtual_fabric_bitwise() {
    let want = virtual_wave_digests(P, STEPS, RECS, false);
    let got = run_cluster("tcp");
    assert_eq!(got, want);
}

#[test]
fn four_uds_processes_match_the_virtual_fabric_bitwise() {
    let want = virtual_wave_digests(P, STEPS, RECS, false);
    let got = run_cluster("uds");
    assert_eq!(got, want);
}
