//! The chaos soak: seeded fault schedules against full recovery stacks.
//!
//! Each seed drives one complete robustness scenario through every layer
//! this repo's recovery machinery spans:
//!
//! 1. a [`FaultPlan`] generated from the seed (dead chips, dead
//!    pipelines, stuck j-memory bits, a module death mid-run, transient
//!    reduction glitches) is run under a [`RunSupervisor`] with a
//!    periodic checkpoint policy;
//! 2. the same run is *crashed* at a seed-chosen blockstep — checkpoint
//!    written to disk, everything dropped — then restored from the file
//!    and continued;
//! 3. the checkpoint file is corrupted (one byte flipped at a seeded
//!    offset) and reloaded, which must fail with a typed
//!    [`CkptError`](grape6_ckpt::CkptError), never a panic;
//! 4. a 4-rank cluster run has a seed-chosen rank killed at a seed-chosen
//!    blockstep and must fail over.
//!
//! The invariants asserted after every recovery are the paper's §3.4
//! reproducibility property in operational form: the faulted, the
//! crashed-and-restored, and the failed-over runs must all produce
//! **bitwise identical** particle state to an untouched run of the same
//! system, and the energy error must stay at the integrator's healthy
//! level.  Violations are collected, not panicked — the soak reports
//! every broken invariant of a seed, and the `chaos_soak` binary turns
//! any violation into a nonzero exit for CI.

use std::path::PathBuf;

use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_core::supervisor::{CheckpointPolicy, RunSupervisor, SupervisorConfig};
use grape6_core::{restore, Grape6Engine};
use grape6_fault::{FaultConfig, FaultPlan, MachineGeometry};
use grape6_net::link::LinkProfile;
use grape6_parallel::failover_algo::{run_failover_parallel, FailoverConfig, RankDeath};
use grape6_system::machine::MachineConfig;
use nbody_core::diagnostics::energy;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Healthy-integrator energy-error budget for the soak's short runs; a
/// recovery that perturbed the trajectory would blow straight through it.
pub const ENERGY_TOL: f64 = 5e-4;

/// Shape of one chaos scenario (the seed picks everything else).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Particles in the single-host runs.
    pub n: usize,
    /// System time to integrate to.
    pub t_end: f64,
    /// The machine under test.
    pub machine: MachineConfig,
    /// Fault classes the generated plans draw from.
    pub faults: FaultConfig,
    /// Supervisor checkpoint cadence, blocksteps.
    pub ckpt_every: u64,
    /// Cluster size of the failover scenario.
    pub ranks: usize,
    /// System time of the failover scenario.
    pub rank_t_end: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            n: 32,
            t_end: 0.25,
            machine: MachineConfig::single_board(),
            faults: FaultConfig {
                dead_chips: 1,
                dead_pipelines: 1,
                stuck_bits: 1,
                dead_modules: 1,
                midrun_module_deaths: 1,
                midrun_pass_range: (2, 30),
                reduction_glitches: 2,
                glitch_pass_range: (1, 40),
                ..FaultConfig::default()
            },
            ckpt_every: 8,
            ranks: 4,
            rank_t_end: 0.125,
        }
    }
}

/// Everything one seed's scenario produced; `violations` is empty iff
/// every invariant held.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Blocksteps of the supervised faulted run.
    pub blocksteps: u64,
    /// Units the self-test/mid-run machinery masked.
    pub units_masked: u64,
    /// Checkpoints the supervisor took.
    pub checkpoints_taken: u64,
    /// Blockstep at which the crash/restore was staged.
    pub crash_at: u64,
    /// Relative energy error of the faulted run.
    pub energy_error: f64,
    /// The typed error the corrupted checkpoint produced.
    pub corruption_error: String,
    /// Which rank the failover scenario killed, and when.
    pub rank_killed: (usize, u64),
    /// Every broken invariant, human-readable; empty = seed passed.
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn geometry(m: &MachineConfig) -> MachineGeometry {
    MachineGeometry {
        boards: m.boards,
        modules_per_board: m.modules_per_board,
        chips_per_module: m.chips_per_module,
    }
}

/// Bitwise state identity: positions/velocities/accelerations/jerks as
/// values plus time and timestep *bits*.  Shared by the chaos and farm
/// soaks — "recovered" means nothing unless it means this.
pub fn bits_equal(a: &ParticleSet, b: &ParticleSet) -> bool {
    a.n() == b.n()
        && a.pos == b.pos
        && a.vel == b.vel
        && a.acc == b.acc
        && a.jerk == b.jerk
        && (0..a.n()).all(|i| a.t[i].to_bits() == b.t[i].to_bits())
        && (0..a.n()).all(|i| a.dt[i].to_bits() == b.dt[i].to_bits())
}

/// Run one complete chaos scenario for `seed`.
pub fn chaos_run(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome {
    let mut violations: Vec<String> = Vec::new();
    let plan = FaultPlan::generate(seed, &cfg.faults, geometry(&cfg.machine));
    let set0 = plummer_model(cfg.n, &mut StdRng::seed_from_u64(seed));
    let icfg = IntegratorConfig::default();

    let supervised = |label: &str| -> Result<RunSupervisor, String> {
        let engine = Grape6Engine::with_fault_plan(&cfg.machine, cfg.n, &plan)
            .map_err(|e| format!("engine construction failed: {e}"))?;
        let it = HermiteIntegrator::new(engine, set0.clone(), icfg);
        let mut scfg = SupervisorConfig::for_machine(cfg.machine);
        scfg.policy = CheckpointPolicy {
            every_blocksteps: Some(cfg.ckpt_every),
            every_virtual_seconds: None,
        };
        scfg.plan = Some(plan.clone());
        scfg.label = format!("chaos seed {seed} ({label})");
        Ok(RunSupervisor::new(it, scfg))
    };

    // The reference: the same system on a *healthy* machine, no
    // supervisor.  The §3.4 oracle says every recovered run below must
    // reproduce these bits exactly.
    let mut healthy = HermiteIntegrator::new(
        Grape6Engine::try_new(&cfg.machine, cfg.n).unwrap(),
        set0.clone(),
        icfg,
    );
    healthy.run_until(cfg.t_end);

    // Scenario 1: the faulted run, supervised end to end.
    let (blocksteps, units_masked, checkpoints_taken, energy_error) = match supervised("full") {
        Ok(mut sup) => match sup.run_until(cfg.t_end) {
            Ok(()) => {
                let it = sup.integrator();
                if !bits_equal(it.particles(), healthy.particles()) {
                    violations
                        .push("faulted supervised run diverged bitwise from healthy run".into());
                }
                let eps2 = it.epsilon() * it.epsilon();
                let e0 = energy(&set0, eps2);
                let e1 = energy(it.particles(), eps2);
                let err = ((e1.total() - e0.total()) / e0.total()).abs();
                if err > ENERGY_TOL {
                    violations.push(format!("energy error {err:e} over budget {ENERGY_TOL:e}"));
                }
                let st = it.stats();
                if st.recovery.checkpoints_taken == 0 {
                    violations.push("supervisor took no checkpoints".into());
                }
                (
                    st.blocksteps,
                    st.faults.units_masked,
                    st.recovery.checkpoints_taken,
                    err,
                )
            }
            Err(e) => {
                violations.push(format!("supervised run failed: {e}"));
                (0, 0, 0, f64::NAN)
            }
        },
        Err(e) => {
            violations.push(e);
            (0, 0, 0, f64::NAN)
        }
    };

    // Scenario 2: crash at a seeded blockstep, restore from the file,
    // continue — and land on the same bits.
    let crash_at = 4 + seed % 12;
    let ckpt_path: PathBuf =
        std::env::temp_dir().join(format!("grape6_chaos_{seed}_{}.ckpt", std::process::id()));
    let mut corruption_error = String::from("-");
    match supervised("crash") {
        Ok(mut sup) => {
            let mut ok = true;
            while sup.integrator().stats().blocksteps < crash_at
                && sup.integrator().time() < cfg.t_end
            {
                if let Err(e) = sup.step() {
                    violations.push(format!("crash-leg run failed before the crash: {e}"));
                    ok = false;
                    break;
                }
            }
            if ok {
                let ckpt = sup.checkpoint_now().clone();
                if let Err(e) = ckpt.save(&ckpt_path) {
                    violations.push(format!("checkpoint save failed: {e}"));
                } else {
                    drop(sup); // the crash: every live object gone
                    match grape6_ckpt::Checkpoint::load(&ckpt_path) {
                        Ok(loaded) => match restore(&cfg.machine, Some(&plan), icfg, &loaded) {
                            Ok(it) => {
                                let mut scfg = SupervisorConfig::for_machine(cfg.machine);
                                scfg.policy = CheckpointPolicy {
                                    every_blocksteps: Some(cfg.ckpt_every),
                                    every_virtual_seconds: None,
                                };
                                scfg.plan = Some(plan.clone());
                                let mut resumed = RunSupervisor::new(it, scfg);
                                match resumed.run_until(cfg.t_end) {
                                    Ok(()) => {
                                        if !bits_equal(
                                            resumed.integrator().particles(),
                                            healthy.particles(),
                                        ) {
                                            violations.push(
                                                "restored run diverged bitwise from healthy run"
                                                    .into(),
                                            );
                                        }
                                    }
                                    Err(e) => violations
                                        .push(format!("restored run failed to finish: {e}")),
                                }
                            }
                            Err(e) => violations.push(format!("restore failed: {e}")),
                        },
                        Err(e) => violations.push(format!("checkpoint load failed: {e}")),
                    }
                    // Scenario 3: flip one byte at a seeded offset; the
                    // loader must refuse with a typed error.
                    match std::fs::read(&ckpt_path) {
                        Ok(mut bytes) => {
                            let at = (seed as usize).wrapping_mul(7919) % bytes.len();
                            bytes[at] ^= 0xA5;
                            match grape6_ckpt::Checkpoint::from_bytes(&bytes) {
                                Ok(_) => violations.push(format!(
                                    "corrupted checkpoint (byte {at} flipped) was accepted"
                                )),
                                Err(e) => corruption_error = e.to_string(),
                            }
                        }
                        Err(e) => violations.push(format!("could not re-read checkpoint: {e}")),
                    }
                }
                let _ = std::fs::remove_file(&ckpt_path);
            }
        }
        Err(e) => violations.push(e),
    }

    // Scenario 4: kill a rank of a small cluster mid-run; the survivors'
    // continuation must match a fault-free cluster bitwise.
    let victim = (seed as usize) % cfg.ranks;
    let kill_at = 3 + seed % 6;
    let rank_killed = (victim, kill_at);
    {
        let mut fo = FailoverConfig {
            copy: grape6_parallel::CopyConfig {
                link: LinkProfile::ideal(),
                ..Default::default()
            },
            ..Default::default()
        };
        fo.deaths = vec![RankDeath {
            rank: victim,
            at_blockstep: kill_at,
        }];
        let faulted = run_failover_parallel(&set0, cfg.ranks, cfg.rank_t_end, &fo);
        let clean_cfg = FailoverConfig {
            copy: fo.copy,
            ..Default::default()
        };
        let clean = run_failover_parallel(&set0, cfg.ranks, cfg.rank_t_end, &clean_cfg);
        if faulted.set.pos != clean.set.pos || faulted.set.vel != clean.set.vel {
            violations.push(format!(
                "failover run (rank {victim} killed at blockstep {kill_at}) diverged bitwise"
            ));
        }
        if faulted.survivors.len() != cfg.ranks - 1 {
            violations.push(format!(
                "expected {} survivors, got {:?}",
                cfg.ranks - 1,
                faulted.survivors
            ));
        }
        if faulted.stats.recovery.recovery_seconds <= 0.0 {
            violations.push("failover charged no recovery time".into());
        }
    }

    ChaosOutcome {
        seed,
        blocksteps,
        units_masked,
        checkpoints_taken,
        crash_at,
        energy_error,
        corruption_error,
        rank_killed,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_soaks_clean() {
        // Keep the in-test soak short; the binary runs the full battery.
        let cfg = ChaosConfig {
            t_end: 0.125,
            rank_t_end: 0.0625,
            ..ChaosConfig::default()
        };
        let out = chaos_run(3, &cfg);
        assert!(out.ok(), "violations: {:?}", out.violations);
        assert!(out.blocksteps > 0);
        assert!(out.checkpoints_taken > 0);
        assert!(out.units_masked > 0, "the plan should have masked units");
        assert!(out.corruption_error != "-", "corruption case did not run");
    }
}
