//! The farm soak: a seeded multi-tenant scenario with oversubscription,
//! a board that flunks power-on self-test, and a board that dies
//! mid-run.
//!
//! Each seed builds a 3-board pool where board 1 powers on with a dead
//! module (it can never fit the 48-particle jobs and is rotated out on
//! first contact) and board 2 loses a module mid-run (the supervisor
//! ladder fails, the farm parks the session at its last checkpoint,
//! retires the board, and resumes elsewhere).  More jobs are submitted
//! than the admission ceiling allows, so the typed backpressure path
//! ([`FarmError::Saturated`], [`FarmError::QueueFull`]) fires on every
//! run.
//!
//! Invariants checked (violations → nonzero exit in `farm_soak`):
//!
//! * at least one `Saturated` (with a positive `retry_after`) and one
//!   `QueueFull` rejection;
//! * every admitted session completes — board failures stall nobody;
//! * boards rotate (≥ 2: the power-on failure and the mid-run death),
//!   sessions are evicted (≥ 1) and resumed (≥ 1);
//! * **every tenant's final particle state is bitwise identical to a
//!   dedicated single-tenant run on a healthy board** — multi-tenancy,
//!   eviction, migration and replay are invisible in the §3.4 force
//!   bits;
//! * the per-tenant span log splits cleanly into six-term breakdowns
//!   ([`grape6_trace::per_track`]) whose totals are positive.

use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6_farm::{Farm, FarmConfig, FarmError, Job, SessionId, TenantSpec};
use grape6_fault::rng::mix;
use grape6_fault::FaultPlan;
use grape6_system::machine::MachineConfig;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chaos::bits_equal;

/// Scenario shape.  Defaults reproduce the acceptance scenario: more
/// tenants than board capacity plus two kinds of injected board fault.
#[derive(Clone, Debug)]
pub struct FarmSoakConfig {
    /// Tenants (weights cycle 1, 2, 3, …).
    pub tenants: usize,
    /// Jobs submitted per tenant (before the deliberate overflow ones).
    pub jobs_per_tenant: usize,
    /// Particles per job — 48 so a board missing one module (32 slots)
    /// cannot hold it.
    pub n: usize,
    /// Target time per job.
    pub t_end: f64,
    /// Pool size (board 1 gets the power-on fault, board 2 the mid-run
    /// death, when present).
    pub boards: usize,
    /// Per-tenant queue bound.
    pub queue_depth: usize,
    /// Farm-wide admission ceiling — below the total submitted so the
    /// saturation path always fires.
    pub max_live: usize,
    /// Blocksteps per scheduler grant.
    pub quantum: u64,
    /// Checkpoint cadence (blocksteps).
    pub ckpt_every: u64,
}

impl Default for FarmSoakConfig {
    fn default() -> Self {
        Self {
            tenants: 4,
            jobs_per_tenant: 2,
            n: 48,
            t_end: 0.125,
            boards: 3,
            queue_depth: 2,
            max_live: 5,
            quantum: 4,
            ckpt_every: 4,
        }
    }
}

/// What one seeded farm soak produced.
#[derive(Clone, Debug)]
pub struct FarmSoakOutcome {
    /// The seed.
    pub seed: u64,
    /// Jobs offered / admitted.
    pub submitted: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Typed rejections seen.
    pub rejected_saturated: u64,
    /// Per-tenant queue rejections seen.
    pub rejected_queue_full: u64,
    /// The `retry_after` hint from the first saturation rejection, in
    /// scheduler blocksteps (the in-process unit of [`grape6_farm::RetryAfter`]).
    pub retry_after_hint: u64,
    /// Checkpoint evictions.
    pub evictions: u64,
    /// Parked → resident resumes.
    pub resumes: u64,
    /// Boards pulled from rotation.
    pub board_rotations: u64,
    /// Farm-level step retries (backoff path).
    pub grant_retries: u64,
    /// Virtual seconds spent in retry backoff.
    pub backoff_seconds: f64,
    /// Tenants with a nonzero six-term breakdown.
    pub tenants_traced: usize,
    /// Sessions whose final bits matched their dedicated run.
    pub bitwise_ok: u64,
    /// Every invariant breach, human-readable.
    pub violations: Vec<String>,
}

impl FarmSoakOutcome {
    /// All invariants held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Hand-rolled JSON object (offline-safe) for `BENCH_farm.json`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"submitted\":{},\"admitted\":{},\"completed\":{},",
                "\"rejected_saturated\":{},\"rejected_queue_full\":{},",
                "\"retry_after_hint\":{},\"evictions\":{},\"resumes\":{},",
                "\"board_rotations\":{},\"grant_retries\":{},",
                "\"backoff_seconds\":{:.6e},\"tenants_traced\":{},",
                "\"bitwise_ok\":{},\"ok\":{}}}"
            ),
            self.seed,
            self.submitted,
            self.admitted,
            self.completed,
            self.rejected_saturated,
            self.rejected_queue_full,
            self.retry_after_hint,
            self.evictions,
            self.resumes,
            self.board_rotations,
            self.grant_retries,
            self.backoff_seconds,
            self.tenants_traced,
            self.bitwise_ok,
            self.ok()
        )
    }
}

/// The one-board unit every scenario uses: 2 modules × 2 chips × 16
/// j-slots = 64 particle slots; losing a module leaves 32.
pub fn soak_unit() -> MachineConfig {
    MachineConfig::builder()
        .boards(1)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity(16)
        .build()
        .expect("soak unit geometry is valid")
}

fn ic(n: usize, seed: u64) -> ParticleSet {
    plummer_model(n, &mut StdRng::seed_from_u64(seed))
}

/// The reference a farm session must match bitwise: the same initial
/// conditions on a dedicated, healthy, uninterrupted board.
fn dedicated(machine: &MachineConfig, n: usize, ic_seed: u64, t_end: f64) -> ParticleSet {
    let engine = Grape6Engine::try_new(machine, n).expect("healthy board fits the job");
    let mut it = HermiteIntegrator::new(engine, ic(n, ic_seed), IntegratorConfig::default());
    it.run_until(t_end);
    it.particles().clone()
}

/// Run one complete seeded farm soak.
pub fn farm_soak_run(seed: u64, cfg: &FarmSoakConfig) -> FarmSoakOutcome {
    let mut violations: Vec<String> = Vec::new();
    let machine = soak_unit();

    // Board 1 powers on broken; board 2 dies mid-run at a seed-derived
    // pass so different seeds hit different phases of the integration.
    let mut plans: Vec<Option<FaultPlan>> = vec![None; cfg.boards];
    if cfg.boards > 1 {
        plans[1] = Some(FaultPlan::none().with_dead_module(0, 0));
    }
    if cfg.boards > 2 {
        // Low pass count so the death fires during the victim session's
        // first resident stint (migrated sessions do not re-arm board
        // deaths — restore_migrate leaves faults with the board).
        let at_pass = 3 + mix(seed, 0xb0a2d, 0, 0, 0) % 3;
        plans[2] = Some(FaultPlan::none().with_midrun_death(vec![0, 1], at_pass));
    }

    let fcfg = FarmConfig::builder(machine)
        .boards(cfg.boards)
        .board_plans(plans)
        .queue_depth(cfg.queue_depth)
        .max_live_sessions(cfg.max_live)
        .quantum(cfg.quantum)
        .ckpt_every(cfg.ckpt_every)
        .seed(seed)
        .build()
        .expect("soak config is valid");
    let mut farm = Farm::open(fcfg).expect("soak config is valid");

    let tenants: Vec<_> = (0..cfg.tenants)
        .map(|t| {
            farm.register(TenantSpec::new(1 + (t as u32 % 3)))
                .expect("soak tenant spec is valid")
        })
        .collect();

    // Submit round-robin so saturation lands across tenants, remembering
    // each admitted session's IC seed for the dedicated replay.
    let mut admitted: Vec<(SessionId, u64)> = Vec::new();
    let mut retry_after_hint = 0u64;
    for j in 0..cfg.jobs_per_tenant {
        for (t, &tid) in tenants.iter().enumerate() {
            let ic_seed = mix(seed, t as u64, j as u64, 0xfa52, 1);
            let job = Job::builder(ic(cfg.n, ic_seed))
                .t_end(cfg.t_end)
                .label(format!("soak t{t} j{j}"))
                .build()
                .expect("soak jobs are valid");
            match farm.submit(tid, job) {
                Ok(sid) => admitted.push((sid, ic_seed)),
                Err(FarmError::Saturated { retry_after }) => {
                    if !retry_after.is_positive() {
                        violations.push(format!("saturated with non-positive hint {retry_after}"));
                    }
                    if retry_after_hint == 0 {
                        retry_after_hint = retry_after.blocksteps().unwrap_or(0);
                    }
                }
                Err(FarmError::QueueFull { .. }) => {}
                Err(e) => violations.push(format!("unexpected rejection: {e}")),
            }
        }
    }
    // One deliberate overflow against tenant 0's bounded queue.
    let overflow = Job::builder(ic(cfg.n, mix(seed, 0, 0, 0xfa52, 2)))
        .t_end(cfg.t_end)
        .label("soak overflow")
        .build()
        .expect("soak jobs are valid");
    match farm.submit(tenants[0], overflow) {
        Err(FarmError::QueueFull { .. }) | Err(FarmError::Saturated { .. }) => {}
        Ok(sid) => admitted.push((sid, mix(seed, 0, 0, 0xfa52, 2))),
        Err(e) => violations.push(format!("overflow submit: unexpected {e}")),
    }

    let report = match farm.run() {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("farm run failed: {e}"));
            return summarize(
                seed,
                farm.stats().clone(),
                retry_after_hint,
                0,
                0,
                violations,
            );
        }
    };

    // Every admitted session completed, bitwise equal to dedicated.
    // `take_result` is the one claim path for both the in-process and
    // wire frontends; it hands each outcome over exactly once.
    let mut bitwise_ok = 0u64;
    for (sid, ic_seed) in &admitted {
        match farm.take_result(*sid) {
            Ok(res) => {
                if bits_equal(
                    &res.particles,
                    &dedicated(&machine, cfg.n, *ic_seed, cfg.t_end),
                ) {
                    bitwise_ok += 1;
                } else {
                    violations.push(format!("session {sid}: bits diverge from dedicated run"));
                }
            }
            Err(e) => violations.push(format!("session {sid}: did not complete ({e})")),
        }
    }
    if report.stats.completed != report.stats.admitted {
        violations.push(format!(
            "completed {} != admitted {}",
            report.stats.completed, report.stats.admitted
        ));
    }
    if report.stats.rejected_saturated == 0 {
        violations.push("no Saturated rejection despite oversubscription".into());
    }
    if report.stats.rejected_queue_full == 0 {
        violations.push("no QueueFull rejection despite queue overflow".into());
    }
    if cfg.boards > 2 && report.stats.board_rotations < 2 {
        violations.push(format!(
            "expected >= 2 board rotations, saw {}",
            report.stats.board_rotations
        ));
    }
    if report.stats.evictions == 0 {
        violations.push("no evictions despite more sessions than boards".into());
    }
    if report.stats.resumes == 0 {
        violations.push("no resumes despite evictions/rotations".into());
    }

    // Per-tenant six-term breakdowns out of the tenant-tagged span log.
    let folded = grape6_trace::per_track(farm.spans());
    let tenants_traced = folded.iter().filter(|(_, b)| b.total() > 0.0).count();
    let granted = report.tenants.values().filter(|t| t.grants > 0).count();
    if tenants_traced < granted {
        violations.push(format!(
            "only {tenants_traced} tenants traced, {granted} got grants"
        ));
    }

    summarize(
        seed,
        report.stats,
        retry_after_hint,
        tenants_traced,
        bitwise_ok,
        violations,
    )
}

fn summarize(
    seed: u64,
    stats: grape6_farm::FarmStats,
    retry_after_hint: u64,
    tenants_traced: usize,
    bitwise_ok: u64,
    violations: Vec<String>,
) -> FarmSoakOutcome {
    FarmSoakOutcome {
        seed,
        submitted: stats.submitted,
        admitted: stats.admitted,
        completed: stats.completed,
        rejected_saturated: stats.rejected_saturated,
        rejected_queue_full: stats.rejected_queue_full,
        retry_after_hint,
        evictions: stats.evictions,
        resumes: stats.resumes,
        board_rotations: stats.board_rotations,
        grant_retries: stats.grant_retries,
        backoff_seconds: stats.backoff_seconds,
        tenants_traced,
        bitwise_ok,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down soak that still exercises every path: rejections,
    /// evictions, resumes, both board faults, bitwise identity.
    #[test]
    fn small_soak_holds_every_invariant() {
        let cfg = FarmSoakConfig {
            tenants: 3,
            jobs_per_tenant: 2,
            t_end: 0.0625,
            max_live: 4,
            queue_depth: 2,
            ..FarmSoakConfig::default()
        };
        let out = farm_soak_run(7, &cfg);
        assert!(out.ok(), "violations: {:#?}", out.violations);
        assert_eq!(out.bitwise_ok, out.admitted);
        assert!(out.rejected_saturated >= 1);
        assert!(out.rejected_queue_full >= 1);
    }
}
