//! Measured per-blockstep time breakdowns — the simulation-side twin of
//! the analytic `model::BlockTime`.
//!
//! The paper's figures 13–19 all argue through a six-term decomposition
//! of the blockstep time (host, DMA, interface, GRAPE, sync, exchange).
//! The analytic model predicts those terms from workload statistics; this
//! module *measures* them from the executable stack:
//!
//! * **Single host** — a real [`HermiteIntegrator`] over the bit-level
//!   [`Grape6Engine`] with the engine/integrator span instrumentation
//!   active: every term comes from recorded [`Span`]s (pipeline cycles
//!   from the hardware counters, interface/DMA from the engine timebase,
//!   host phases from calibrated [`HostRates`]).
//! * **Cluster / multi-cluster** — one fabric rank per host.  Every rank
//!   advances a full bit-identical copy of the system (the §3.2 copy
//!   algorithm: identical arithmetic keeps the blockstep schedules
//!   aligned with no data on the wire) and stamps the virtual time the
//!   critical-path host's `⌈n_b/p⌉` share of each block costs, chunked
//!   by the hardware's 48-way i-parallelism, with pipeline passes
//!   charged at the cycles the simulated hardware actually spent.
//!   Synchronisation and the inter-cluster exchange are genuinely
//!   executed over the discrete-event fabric (butterfly barriers;
//!   recursive doubling between cluster pairs with the block's
//!   j-updates striped over the cluster's concurrent streams) and
//!   recorded through the traced collectives.
//!
//! Per blockstep the per-rank breakdowns are folded with an elementwise
//! **max** — the paper's breakdown figures plot the slowest host's view —
//! and summed over blocksteps.  `perf_report` dumps the result next to
//! the analytic prediction for the same real block-size sequence.

use grape6_core::engine::Grape6Engine;
use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_model::calib::{GrapeTiming, NicProfile, BARRIER_SW_OVERHEAD};
use grape6_model::perf::{BlockTime, MachineLayout, PerfModel};
use grape6_net::collectives::{butterfly_barrier, traced, traced_sync};
use grape6_net::exchange::Wave;
use grape6_net::fabric::{run_ranks, Endpoint};
use grape6_net::link::LinkProfile;
use grape6_net::transport::VirtualTransport;
use grape6_system::machine::MachineConfig;
use grape6_system::unit::GrapeUnit;
use grape6_trace::{
    BarrierAlgo, HostRates, MeasuredBlockTime, NetSchedule, OverlapMode, Phase, Span, SpanCounters,
    Tracer,
};
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The [`GrapeTiming`] describing a simulated [`MachineConfig`]: same
/// chip count and clock, the paper's host-interface constants.  This is
/// the model the measured runs must be compared against — `test_small`
/// has 4 chips, not the real machine's 128.
pub fn timing_for(cfg: &MachineConfig) -> GrapeTiming {
    GrapeTiming {
        chips_per_host: cfg.total_chips(),
        clock_hz: cfg.chip.clock_khz as f64 * 1e3,
        vmp_ways: cfg.chip.vmp_ways,
        i_parallel: cfg.chip.pipelines * cfg.chip.vmp_ways,
        ..GrapeTiming::paper_host()
    }
}

/// The fabric link equivalent of a NIC profile, chosen so one
/// dissemination-barrier round (send overhead + one-way latency + recv
/// overhead) costs exactly `rtt + BARRIER_SW_OVERHEAD` — the stage cost
/// the analytic `butterfly_barrier` charges.
pub fn nic_link(nic: &NicProfile) -> LinkProfile {
    LinkProfile {
        latency: nic.rtt / 2.0,
        bandwidth: nic.bandwidth,
        overhead: nic.rtt / 4.0 + BARRIER_SW_OVERHEAD / 2.0,
    }
}

/// One measured-vs-modelled breakdown run.
pub struct BreakdownRun {
    /// The machine layout.
    pub layout: MachineLayout,
    /// System size.
    pub n: usize,
    /// Blocksteps executed.
    pub blocksteps: usize,
    /// Particle steps executed.
    pub particle_steps: u64,
    /// Measured terms: per-blockstep max across ranks, summed over steps.
    pub measured: MeasuredBlockTime,
    /// Analytic terms for the same real block-size sequence, summed.
    pub model: BlockTime,
    /// Analytic *wall* for the same sequence — per step
    /// `BlockTime::wall(overlap)`, summed.  Equals `model.total()` under
    /// the sequential schedule; smaller when overlapped.
    pub model_wall: f64,
    /// The schedule this run executed (and the model wall assumed).
    pub overlap: OverlapMode,
    /// The network schedule this run executed (sequential collectives,
    /// one coalesced wave per blockstep, or the split-phase wave).
    pub sched: NetSchedule,
    /// Per-rank span streams (for Chrome-trace export).
    pub streams: Vec<(String, Vec<Span>)>,
}

impl BreakdownRun {
    /// The run as a JSON object (hand-rolled: stays functional offline).
    pub fn to_json(&self) -> String {
        let model_terms = [
            ("host", self.model.host),
            ("dma", self.model.dma),
            ("interface", self.model.interface),
            ("grape", self.model.grape),
            ("sync", self.model.sync),
            ("exchange", self.model.exchange),
        ];
        let model_body: Vec<String> = model_terms
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:e}"))
            .collect();
        format!(
            "{{\"layout\":\"{}\",\"n\":{},\"blocksteps\":{},\"particle_steps\":{},\
             \"overlap\":\"{}\",\"schedule\":\"{}\",\
             \"measured\":{},\"model\":{{{},\"total\":{:e},\"wall\":{:e}}}}}",
            self.layout.label(),
            self.n,
            self.blocksteps,
            self.particle_steps,
            match self.overlap {
                OverlapMode::Sequential => "sequential",
                OverlapMode::Overlapped => "overlapped",
            },
            self.sched.name(),
            self.measured.to_json(),
            model_body.join(","),
            self.model.total(),
            self.model_wall,
        )
    }
}

/// Elementwise sum of analytic breakdowns (accumulating blocksteps).
fn add_block_time(acc: &mut BlockTime, bt: &BlockTime) {
    acc.host += bt.host;
    acc.dma += bt.dma;
    acc.interface += bt.interface;
    acc.grape += bt.grape;
    acc.sync += bt.sync;
    acc.exchange += bt.exchange;
}

/// Measure the six-term breakdown of a Plummer integration on `machine`
/// hardware in `layout`, against `model`'s analytic prediction for the
/// same blockstep sequence.  `model.grape` must describe `machine` (use
/// [`timing_for`]); host and NIC profiles are taken from `model`.
pub fn measure_breakdown(
    model: &PerfModel,
    machine: &MachineConfig,
    layout: MachineLayout,
    n: usize,
    t_end: f64,
    seed: u64,
) -> BreakdownRun {
    measure_breakdown_net(
        model,
        machine,
        layout,
        n,
        t_end,
        seed,
        NetSchedule::Sequential,
    )
}

/// [`measure_breakdown`] under an explicit network schedule.  Sequential
/// runs the PR 5 collectives (agreement barrier / commit barrier /
/// exchange / post barrier); the coalesced schedules run one
/// [`Wave`] per blockstep instead, split-phase when overlapped.  The
/// integrator state is bit-identical across schedules by construction
/// (every rank advances a full replicated copy); only the network terms
/// of the breakdown move.
#[allow(clippy::too_many_arguments)]
pub fn measure_breakdown_net(
    model: &PerfModel,
    machine: &MachineConfig,
    layout: MachineLayout,
    n: usize,
    t_end: f64,
    seed: u64,
    sched: NetSchedule,
) -> BreakdownRun {
    match layout {
        MachineLayout::SingleHost => measure_single_host(model, machine, n, t_end, seed),
        MachineLayout::Cluster { hosts } => {
            measure_ranks(model, machine, layout, 1, hosts, n, t_end, seed, sched)
        }
        MachineLayout::MultiCluster {
            clusters,
            hosts_per_cluster,
        } => measure_ranks(
            model,
            machine,
            layout,
            clusters,
            hosts_per_cluster,
            n,
            t_end,
            seed,
            sched,
        ),
    }
}

/// Single host: the real traced integrator/engine stack end to end.
fn measure_single_host(
    model: &PerfModel,
    machine: &MachineConfig,
    n: usize,
    t_end: f64,
    seed: u64,
) -> BreakdownRun {
    measure_single_host_mode(model, machine, n, t_end, seed, OverlapMode::Sequential)
}

/// Single host with an explicit schedule: the sequential (blocking) or
/// the split-phase overlapped blockstep.  The six term *sums* are
/// schedule-independent — the same spans are recorded either way, only
/// their timeline layout changes — so the model-vs-measured per-term
/// gates apply unchanged; the measured `wall` (and the analytic
/// `model_wall`) is what the overlap shrinks.
pub fn measure_single_host_mode(
    model: &PerfModel,
    machine: &MachineConfig,
    n: usize,
    t_end: f64,
    seed: u64,
    overlap: OverlapMode,
) -> BreakdownRun {
    let layout = MachineLayout::SingleHost;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let engine = Grape6Engine::try_new(machine, n).unwrap();
    let icfg = IntegratorConfig {
        overlap: overlap == OverlapMode::Overlapped,
        ..IntegratorConfig::default()
    };
    let mut it = HermiteIntegrator::new(engine, set, icfg);
    let tb = match overlap {
        OverlapMode::Sequential => model.grape.engine_timebase(),
        OverlapMode::Overlapped => model.grape.engine_timebase_overlapped(),
    };
    it.engine_mut().set_timebase(tb);
    it.engine_mut().set_tracer(Tracer::enabled());
    it.set_tracer(Tracer::enabled());
    it.set_host_rates(HostRates {
        t_block_fixed: model.host.t_block_fixed,
        t_step: model.host.t_step(n as f64),
    });
    let mut measured = MeasuredBlockTime::default();
    let mut model_sum = BlockTime::default();
    let mut model_wall = 0.0f64;
    let mut all_spans = Vec::new();
    let mut blocksteps = 0usize;
    while it.time() < t_end {
        let (_, n_b) = it.try_step_auto().expect("healthy hardware");
        let spans = it.take_spans();
        measured.add(&MeasuredBlockTime::from_spans(&spans));
        all_spans.extend(spans);
        let bt = model.block_time(layout, n, n_b);
        add_block_time(&mut model_sum, &bt);
        model_wall += bt.wall(overlap);
        blocksteps += 1;
    }
    BreakdownRun {
        layout,
        n,
        blocksteps,
        particle_steps: it.stats().particle_steps,
        measured,
        model: model_sum,
        model_wall,
        overlap,
        sched: NetSchedule::Sequential,
        streams: vec![("host".into(), all_spans)],
    }
}

/// Record a span at the rank's virtual-time cursor and advance it.
fn stamp(tracer: &mut Tracer, vt: &mut f64, phase: Phase, dur: f64, items: u64, bytes: u64) {
    let t0 = *vt;
    let t1 = t0 + dur;
    tracer.record(Span {
        phase,
        t0,
        t1,
        track: 0,
        counters: SpanCounters {
            items,
            bytes,
            ..Default::default()
        },
    });
    *vt = t1;
}

/// Recursive-doubling exchange of the block's j-updates between cluster
/// pairs (§4.3's copy algorithm over the Ethernet).  Stage `k` pairs
/// cluster `ci` with `ci XOR 2^k`; the accumulated updates are striped
/// over the cluster's `streams` concurrently-receiving hosts, so only
/// ranks with in-cluster index below `streams` touch the wire.
fn exchange_blocks(
    ep: &mut Endpoint<Vec<u8>>,
    clusters: usize,
    hosts_per_cluster: usize,
    streams: usize,
    block_bytes: f64,
) {
    let ci = ep.rank() / hosts_per_cluster;
    let hi = ep.rank() % hosts_per_cluster;
    let stages = (clusters as f64).log2().ceil() as u32;
    let per_cluster = block_bytes / clusters as f64;
    for k in 0..stages {
        let partner_cluster = ci ^ (1usize << k);
        if partner_cluster >= clusters {
            continue;
        }
        let partner = partner_cluster * hosts_per_cluster + hi;
        // Only `streams` hosts per cluster sustain full-rate payload; the
        // others exchange a sentinel so every clock rides the same stage
        // pattern (their share of the data reaches them over the
        // cluster's hardware network, not the Ethernet).
        let wire = if hi < streams {
            (per_cluster * (1u64 << k) as f64 / streams as f64).ceil() as usize
        } else {
            1
        };
        ep.send(partner, Vec::new(), wire.max(1));
        ep.recv_checked(partner).expect("lossless fabric");
    }
}

/// The synthetic pad (wire bytes) each wave stage carries: intra-cluster
/// stages are sentinel-only (the hardware network moves the j-data, as in
/// the sequential schedule); each inter-cluster stage `kk` forwards the
/// recursively-doubled accumulation, striped over the cluster's
/// concurrent streams — the same bytes [`exchange_blocks`] puts on the
/// wire, coalesced into the wave's frames.
fn wave_pads(n_stages: u32, intra: u32, hi: usize, streams: usize, per_cluster: f64) -> Vec<u64> {
    let mut pads = vec![0u64; n_stages as usize];
    for kk in 0..n_stages.saturating_sub(intra) {
        pads[(intra + kk) as usize] = if hi < streams {
            (per_cluster * (1u64 << kk) as f64 / streams as f64).ceil() as u64
        } else {
            0
        };
    }
    pads
}

/// Cluster / multi-cluster: one fabric rank per host.
#[allow(clippy::too_many_arguments)]
fn measure_ranks(
    model: &PerfModel,
    machine: &MachineConfig,
    layout: MachineLayout,
    clusters: usize,
    hosts_per_cluster: usize,
    n: usize,
    t_end: f64,
    seed: u64,
    sched: NetSchedule,
) -> BreakdownRun {
    let p = clusters * hosts_per_cluster;
    let tb = model.grape.engine_timebase();
    let rates = HostRates {
        t_block_fixed: model.host.t_block_fixed,
        t_step: model.host.t_step(n as f64),
    };
    let streams = (hosts_per_cluster as f64)
        .min(model.nic.concurrency)
        .max(1.0) as usize;
    let i_par = model.grape.i_parallel.max(1);
    let j_bytes = model.grape.j_word_bytes;
    let link = nic_link(&model.nic);
    let algo = if p.is_power_of_two() {
        BarrierAlgo::Butterfly
    } else {
        BarrierAlgo::Dissemination
    };
    // (per-step breakdowns, per-step block sizes, particle steps, spans)
    type RankOut = (Vec<MeasuredBlockTime>, Vec<usize>, u64, Vec<Span>);
    let results = run_ranks::<Vec<u8>, RankOut, _>(p, link, move |mut ep| {
        let rank = ep.rank();
        let hi = rank % hosts_per_cluster;
        // Full bit-identical copy of the system on every rank: identical
        // arithmetic means identical blockstep schedules, so the fabric
        // carries only timing (empty payloads with explicit wire bytes).
        let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
        let engine = Grape6Engine::try_new(machine, n).unwrap();
        let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        ep.set_tracer(Tracer::enabled());
        let mut tracer = Tracer::enabled();
        let mut per_step = Vec::new();
        let mut sizes = Vec::new();
        let mut all_spans = Vec::new();
        let mut stepno = 0u64;
        while it.time() < t_end {
            // Sequential: the block-agreement barrier opens the step.  The
            // coalesced schedules skip it — the previous step's wave
            // already all-reduced the next block time, which *is* the
            // agreement (that is one of the collectives it absorbs).
            if !sched.coalesced() {
                traced_sync(&mut ep, butterfly_barrier).expect("lossless fabric");
            }
            let (_, n_b) = it.step();
            let pass_cycles = it.engine().hardware().last_pass_cycles();
            // This rank's share of the block: balanced round-robin over
            // block positions (position k goes to rank k mod p).  Every
            // rank *stamps* the critical-path host's share ⌈n_b/p⌉ — the
            // model's per-host charge — because stamping the rank's own
            // ±1-particle imbalance would skew barrier entries and leak
            // wait time between the sync and exchange terms.  (The
            // replicated integrator makes the share synthetic either way;
            // the counters keep the true ownership.)
            let owned = n_b / p + usize::from(rank < n_b % p);
            let share = n_b.div_ceil(p);
            // Coalesced: one wave replaces commit barrier + agreement
            // all-reduce + j-exchange + post barrier.  Its high stages
            // pair hosts across clusters (the exchange topology is
            // contained in the butterfly), so they are attributed to the
            // exchange term and carry the j-volume as synthetic pad.
            let mut wave = if sched.coalesced() {
                let w = Wave::new(rank, p, stepno, it.time(), Vec::new());
                let x_stages = if clusters > 1 {
                    (clusters as f64).log2().ceil() as u32
                } else {
                    0
                };
                let intra = w.n_stages() - x_stages;
                let pads = wave_pads(
                    w.n_stages(),
                    intra,
                    hi,
                    streams,
                    n_b as f64 * j_bytes / clusters as f64,
                );
                Some((w, intra, pads))
            } else {
                None
            };
            // Split-phase overlap: post the wave's first stage *before*
            // charging the step's compute, so its latency hides behind
            // the force pass — the message sequence (and therefore the
            // folded state) is identical to the back-to-back wave.
            let mut posted = false;
            if let Some((w, intra, pads)) = wave.as_mut() {
                if sched.overlapped() && w.n_stages() > 0 {
                    let t0 = ep.clock();
                    let b0 = ep.stats().bytes_sent;
                    {
                        let mut tr = VirtualTransport::new(&mut ep);
                        w.post_stage(&mut tr, pads[0]).expect("lossless fabric");
                    }
                    tracer.record(Span {
                        phase: if *intra > 0 {
                            Phase::Sync
                        } else {
                            Phase::Exchange
                        },
                        t0,
                        t1: ep.clock(),
                        track: 0,
                        counters: SpanCounters {
                            items: 1,
                            bytes: ep.stats().bytes_sent - b0,
                            records: 2,
                            algo: Some(algo),
                            ..Default::default()
                        },
                    });
                    posted = true;
                }
            }
            // Stamp the share's host + hardware time at the fabric clock.
            let mut vt = ep.clock();
            stamp(
                &mut tracer,
                &mut vt,
                Phase::Predict,
                0.5 * rates.t_step * share as f64,
                owned as u64,
                0,
            );
            let mut left = share;
            while left > 0 {
                let chunk = left.min(i_par);
                stamp(
                    &mut tracer,
                    &mut vt,
                    Phase::Dma,
                    tb.dma_call(),
                    chunk as u64,
                    0,
                );
                stamp(
                    &mut tracer,
                    &mut vt,
                    Phase::Interface,
                    tb.if_time(chunk),
                    chunk as u64,
                    (chunk as f64 * (tb.i_word_bytes + tb.f_word_bytes)) as u64,
                );
                // The pass streams the full j-memory whatever the chunk
                // holds; charge the cycles the simulated hardware spent.
                stamp(
                    &mut tracer,
                    &mut vt,
                    Phase::Grape,
                    pass_cycles as f64 * tb.sec_per_cycle,
                    n as u64,
                    0,
                );
                left -= chunk;
            }
            // j writeback over the host interface: a host's own share
            // always crosses it; inside a cluster the rest rides the
            // hardware broadcast network, but the inter-cluster copy
            // algorithm makes every host write the whole block (§4.3).
            let j_items = if clusters > 1 { n_b } else { share };
            stamp(
                &mut tracer,
                &mut vt,
                Phase::Interface,
                j_items as f64 * tb.j_write_time(),
                j_items as u64,
                (j_items as f64 * tb.j_word_bytes) as u64,
            );
            stamp(
                &mut tracer,
                &mut vt,
                Phase::Host,
                rates.t_block_fixed + 0.5 * rates.t_step * share as f64,
                owned as u64,
                0,
            );
            ep.advance_to(vt);
            if let Some((mut w, intra, pads)) = wave.take() {
                // Finish the posted stage (its frame arrived during the
                // compute) and run the rest, each attributed to the sync
                // or exchange term by its pairing topology.
                for k in 0..w.n_stages() {
                    let phase = if k < intra {
                        Phase::Sync
                    } else {
                        Phase::Exchange
                    };
                    let t0 = ep.clock();
                    let b0 = ep.stats().bytes_sent;
                    {
                        let mut tr = VirtualTransport::new(&mut ep);
                        if k > 0 || !posted {
                            w.post_stage(&mut tr, pads[k as usize])
                                .expect("lossless fabric");
                        }
                        w.finish_stage(&mut tr).expect("lossless fabric");
                    }
                    tracer.record(Span {
                        phase,
                        t0,
                        t1: ep.clock(),
                        track: 0,
                        counters: SpanCounters {
                            items: 1,
                            bytes: ep.stats().bytes_sent - b0,
                            records: 2,
                            algo: Some(algo),
                            ..Default::default()
                        },
                    });
                }
                // Replicated copies agree on the next block time: the
                // all-reduced minimum is this rank's own candidate.
                let out = w.outcome();
                debug_assert_eq!(out.t_min, it.time());
            } else {
                // Commit barrier.
                traced_sync(&mut ep, butterfly_barrier).expect("lossless fabric");
                if clusters > 1 {
                    traced(&mut ep, Phase::Exchange, |ep| {
                        exchange_blocks(
                            ep,
                            clusters,
                            hosts_per_cluster,
                            streams,
                            n_b as f64 * j_bytes,
                        )
                    });
                    // The post-exchange barrier is the extra round the paper
                    // blames for the multi-cluster sync overhead (§4.4).
                    traced_sync(&mut ep, butterfly_barrier).expect("lossless fabric");
                }
            }
            stepno += 1;
            let mut spans = tracer.take();
            spans.extend(ep.take_spans());
            per_step.push(MeasuredBlockTime::from_spans(&spans));
            sizes.push(n_b);
            all_spans.extend(spans);
        }
        (per_step, sizes, it.stats().particle_steps, all_spans)
    });
    // Fold: per blockstep the slowest rank's term (the paper's breakdown
    // figures plot the critical path), summed over blocksteps.
    let steps = results[0].0.len();
    let mut measured = MeasuredBlockTime::default();
    for k in 0..steps {
        let mut worst = MeasuredBlockTime::default();
        for r in &results {
            worst = worst.max(&r.0[k]);
        }
        measured.add(&worst);
    }
    let mut model_sum = BlockTime::default();
    let mut model_wall = 0.0f64;
    for &n_b in &results[0].1 {
        let bt = model.block_time_net(layout, n, n_b, sched);
        add_block_time(&mut model_sum, &bt);
        model_wall += bt.wall(OverlapMode::Sequential);
    }
    let streams_out = results
        .iter()
        .enumerate()
        .map(|(r, out)| (format!("rank{r}"), out.3.clone()))
        .collect();
    BreakdownRun {
        layout,
        n,
        blocksteps: steps,
        particle_steps: results[0].2,
        measured,
        model: model_sum,
        model_wall,
        overlap: OverlapMode::Sequential,
        sched,
        streams: streams_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> (PerfModel, MachineConfig) {
        let machine = MachineConfig::test_small();
        let model = PerfModel {
            grape: timing_for(&machine),
            ..PerfModel::default()
        };
        (model, machine)
    }

    #[test]
    fn nic_link_round_costs_one_barrier_stage() {
        let nic = NicProfile::intel_82540em();
        let l = nic_link(&nic);
        // send overhead + latency + recv overhead = rtt + sw.
        let round = 2.0 * l.overhead + l.latency;
        assert!((round - (nic.rtt + BARRIER_SW_OVERHEAD)).abs() < 1e-12);
    }

    #[test]
    fn timing_for_matches_test_small_geometry() {
        let t = timing_for(&MachineConfig::test_small());
        assert_eq!(t.chips_per_host, 4);
        assert_eq!(t.i_parallel, 48);
        assert_eq!(t.clock_hz, 90.0e6);
    }

    #[test]
    fn single_host_breakdown_has_no_network_terms() {
        let (model, machine) = small_model();
        let run = measure_breakdown(&model, &machine, MachineLayout::SingleHost, 64, 0.0625, 42);
        assert!(run.blocksteps > 0);
        assert_eq!(run.measured.sync, 0.0);
        assert_eq!(run.measured.exchange, 0.0);
        assert!(run.measured.host > 0.0 && run.measured.grape > 0.0);
        assert!(run.measured.dma > 0.0 && run.measured.interface > 0.0);
        // Host and DMA are charged from the same constants as the model:
        // they must agree essentially exactly.
        assert!((run.measured.host / run.model.host - 1.0).abs() < 1e-9);
        assert!((run.measured.dma / run.model.dma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coalesced_wave_cuts_network_time_and_keeps_the_run_identical() {
        let (model, machine) = small_model();
        let layout = MachineLayout::MultiCluster {
            clusters: 2,
            hosts_per_cluster: 2,
        };
        let run = |sched| measure_breakdown_net(&model, &machine, layout, 48, 0.0625, 44, sched);
        let seq = run(NetSchedule::Sequential);
        let coa = run(NetSchedule::Coalesced);
        let ovl = run(NetSchedule::CoalescedOverlapped);
        // The integration itself is schedule-independent: same steps, and
        // the stamped compute terms agree to rounding (span durations are
        // differences of absolute clocks, which sit at schedule-dependent
        // offsets).
        let close = |a: f64, b: f64| (a / b - 1.0).abs() < 1e-12;
        for r in [&coa, &ovl] {
            assert_eq!(r.blocksteps, seq.blocksteps);
            assert_eq!(r.particle_steps, seq.particle_steps);
            assert!(close(r.measured.host, seq.measured.host));
            assert!(close(r.measured.dma, seq.measured.dma));
            assert!(close(r.measured.grape, seq.measured.grape));
            assert!(close(r.measured.interface, seq.measured.interface));
        }
        // One wave per step instead of three collectives: the measured
        // network time must drop, and overlap must not cost anything.
        let net = |r: &BreakdownRun| r.measured.sync + r.measured.exchange;
        assert!(
            net(&coa) < 0.6 * net(&seq),
            "coalesced {} vs sequential {}",
            net(&coa),
            net(&seq)
        );
        assert!(
            net(&ovl) <= net(&coa) + 1e-12,
            "{} vs {}",
            net(&ovl),
            net(&coa)
        );
        // Both terms are genuinely exercised (butterfly low stages are
        // sync, high stages carry the exchange volume).
        assert!(coa.measured.sync > 0.0 && coa.measured.exchange > 0.0);
        // The model side follows the same schedule.
        assert!(coa.model.sync < seq.model.sync);
        assert!(coa.to_json().contains("\"schedule\":\"coalesced\""));
    }

    #[test]
    fn wave_spans_carry_the_algorithm_tag() {
        let (model, machine) = small_model();
        let run = measure_breakdown_net(
            &model,
            &machine,
            MachineLayout::Cluster { hosts: 2 },
            48,
            0.0625,
            45,
            NetSchedule::Coalesced,
        );
        let sync_spans: Vec<&Span> = run
            .streams
            .iter()
            .flat_map(|(_, s)| s.iter())
            .filter(|s| s.phase == Phase::Sync)
            .collect();
        assert!(!sync_spans.is_empty());
        for s in &sync_spans {
            assert_eq!(s.counters.algo, Some(BarrierAlgo::Butterfly));
            assert_eq!(s.counters.records, 2);
            assert!(s.counters.bytes > 0);
        }
    }

    #[test]
    fn cluster_breakdown_pays_sync_but_not_exchange() {
        let (model, machine) = small_model();
        let run = measure_breakdown(
            &model,
            &machine,
            MachineLayout::Cluster { hosts: 2 },
            48,
            0.0625,
            43,
        );
        assert!(run.measured.sync > 0.0);
        assert_eq!(run.measured.exchange, 0.0);
        let json = run.to_json();
        assert!(json.contains("\"sync\""), "{json}");
    }
}
