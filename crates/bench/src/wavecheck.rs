//! Bitwise cross-schedule / cross-transport wave checks.
//!
//! The tentpole claim of the coalesced exchange is that the *numeric*
//! result — the all-reduced block time and the merged j-records — is
//! identical bit for bit whatever the schedule (back-to-back or
//! split-phase) and whatever the transport (virtual-time fabric, TCP
//! loopback, Unix sockets, in-process or across OS processes).  This
//! module drives the same chained wave sequence over any
//! [`Transport`] and folds the outcomes into an FNV-1a digest, so every
//! harness (the `crossover_bench` bin, the `cluster_node` per-process
//! rank, the multi-process integration test) compares the same bits.
//!
//! The chain is deliberately stateful: each step's candidate block time
//! derives from the previous step's folded minimum, so a divergence at
//! any step compounds into every later digest instead of washing out.

use std::path::Path;

use grape6_ckpt::wire::{Dec, Enc};
use grape6_net::cluster::ClusterApp;
use grape6_net::exchange::{coalesced_wave, Wave, WaveOutcome};
use grape6_net::fabric::run_ranks;
use grape6_net::link::LinkProfile;
use grape6_net::transport::{
    StreamKind, StreamTransport, Transport, TransportError, VirtualTransport,
};
use grape6_net::wire::JRecord;

/// Synthetic pad (modelled j-volume) charged per wave stage.
const STAGE_PAD: u64 = 64;

/// Deterministic per-rank j-records for one step: indices are disjoint
/// across ranks, payload words are functions of (rank, step, slot) so a
/// misrouted or reordered record changes the digest.
pub fn synthetic_records(rank: usize, step: u64, count: usize) -> Vec<JRecord> {
    (0..count)
        .map(|k| JRecord {
            index: rank as u64 * 1024 + k as u64,
            words: vec![
                ((step + 1) as f64 * 0.25 + rank as f64 * 1e-3 + k as f64 * 1e-6).to_bits(),
                step.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ rank as u64,
            ],
        })
        .collect()
}

/// Fold one wave outcome's *numeric state* into an FNV-1a digest.  The
/// traffic counters (messages, bytes) are deliberately excluded: they
/// are backend-specific costs, not results.  Public so every harness
/// that chains waves — [`run_waves`], the supervised [`WaveChainApp`],
/// the chaos bin — folds the same bits the same way.
pub fn eat_outcome(h: &mut u64, o: &WaveOutcome) {
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(o.t_min.to_bits());
    for r in &o.merged {
        eat(r.index);
        for &w in &r.words {
            eat(w);
        }
    }
}

/// Run `steps` chained coalesced waves over `tr` and return the folded
/// digest.  `split` drives the wave split-phase (post stage 0, then
/// finish + rest — the overlapped schedule's message order), which must
/// not change a single bit of the digest.
pub fn run_waves(
    tr: &mut impl Transport,
    steps: u64,
    recs_per_rank: usize,
    split: bool,
) -> Result<u64, TransportError> {
    let rank = tr.rank();
    let p = tr.n_ranks();
    let pads = [STAGE_PAD; 8];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut t_seed = 0.5f64;
    for step in 0..steps {
        let t_mine = t_seed * (1.0 + rank as f64 * 0.125);
        let recs = synthetic_records(rank, step, recs_per_rank);
        let out = if split && p > 1 {
            let mut w = Wave::new(rank, p, step, t_mine, recs);
            w.post_stage(tr, pads[0])?;
            w.finish_stage(tr)?;
            let n = w.n_stages();
            w.run_stages(tr, n, &pads)?;
            w.outcome()
        } else {
            coalesced_wave(tr, step, t_mine, recs, &pads)?
        };
        eat_outcome(&mut h, &out);
        t_seed = out.t_min * 0.75 + 1e-3;
    }
    Ok(h)
}

/// The chained wave sequence of [`run_waves`] as a [`ClusterApp`], so
/// the fault-tolerant [`grape6_net::cluster::ClusterSupervisor`] can
/// drive it across rank deaths and stalls.
///
/// The digest chain is *identical* to [`run_waves`]: same FNV seed,
/// same [`eat_outcome`] fold, same `t_seed` recurrence, and the same
/// [`synthetic_records`] per original rank — so a supervised run that
/// lost a rank, shrank, rewound and replayed must still print the very
/// digest an unfaulted `run_waves` (or the virtual fabric) prints.
/// That is the whole point: the app's inputs are pure functions of
/// `(orank, step, folded state)`, so survivors reproduce a dead rank's
/// contribution bit for bit.
#[derive(Clone, Debug)]
pub struct WaveChainApp {
    steps: u64,
    recs_per_rank: usize,
    step: u64,
    t_seed: f64,
    h: u64,
}

impl WaveChainApp {
    /// A fresh chain of `steps` waves, `recs_per_rank` records per
    /// original rank per step.
    pub fn new(steps: u64, recs_per_rank: usize) -> Self {
        Self {
            steps,
            recs_per_rank,
            step: 0,
            t_seed: 0.5,
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// The folded digest so far (final state once the run is done).
    pub fn digest(&self) -> u64 {
        self.h
    }
}

impl ClusterApp for WaveChainApp {
    fn step(&self) -> u64 {
        self.step
    }

    fn is_done(&self) -> bool {
        self.step >= self.steps
    }

    fn t_candidate(&self, orank: usize) -> f64 {
        self.t_seed * (1.0 + orank as f64 * 0.125)
    }

    fn records(&self, orank: usize) -> Vec<JRecord> {
        synthetic_records(orank, self.step, self.recs_per_rank)
    }

    fn fold(&mut self, out: &WaveOutcome) {
        eat_outcome(&mut self.h, out);
        self.t_seed = out.t_min * 0.75 + 1e-3;
        self.step += 1;
    }

    fn save(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.step);
        e.u64(self.t_seed.to_bits());
        e.u64(self.h);
        e.into_bytes()
    }

    fn restore(&mut self, payload: &[u8]) -> Result<(), String> {
        let s = |e: grape6_ckpt::wire::WireError| e.to_string();
        let mut d = Dec::new(payload);
        self.step = d.u64().map_err(s)?;
        self.t_seed = f64::from_bits(d.u64().map_err(s)?);
        self.h = d.u64().map_err(s)?;
        d.finish().map_err(s)
    }
}

/// Per-rank digests of the chained waves on the virtual-time fabric.
pub fn virtual_wave_digests(p: usize, steps: u64, recs_per_rank: usize, split: bool) -> Vec<u64> {
    run_ranks::<Vec<u8>, u64, _>(p, LinkProfile::ideal(), move |mut ep| {
        let mut tr = VirtualTransport::new(&mut ep);
        run_waves(&mut tr, steps, recs_per_rank, split).expect("lossless fabric")
    })
}

/// Per-rank digests of the chained waves over real sockets, one OS
/// thread per rank (the per-*process* variant lives in the
/// `cluster_node` bin and `tests/transport_procs.rs`).
pub fn stream_wave_digests(
    p: usize,
    steps: u64,
    recs_per_rank: usize,
    kind: StreamKind,
    dir: &Path,
) -> Vec<u64> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let dir = dir.to_path_buf();
                s.spawn(move || {
                    let mut tr = StreamTransport::connect(rank, p, &dir, kind).expect("rendezvous");
                    run_waves(&mut tr, steps, recs_per_rank, false).expect("stream waves")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_phase_digest_matches_sequential_on_the_fabric() {
        for p in [1usize, 2, 3, 4, 8] {
            let a = virtual_wave_digests(p, 6, 3, false);
            let b = virtual_wave_digests(p, 6, 3, true);
            assert_eq!(a, b, "p={p}");
            // Every rank folds to the same state (it is an all-to-all).
            assert!(a.windows(2).all(|w| w[0] == w[1]), "p={p}");
        }
    }

    #[test]
    fn tcp_threads_digest_matches_the_virtual_fabric() {
        let dir = std::env::temp_dir().join(format!("g6-wavecheck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v = virtual_wave_digests(4, 5, 2, false);
        let t = stream_wave_digests(4, 5, 2, StreamKind::Tcp, &dir);
        assert_eq!(v, t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wave_chain_app_save_restore_roundtrips_bitwise() {
        let mut a = WaveChainApp::new(9, 2);
        // Advance a few steps through fake outcomes so the state is
        // mid-chain, not pristine.
        for step in 0..4u64 {
            let out = WaveOutcome {
                t_min: 0.25 + step as f64 * 1e-3,
                ckpt_min: 0,
                algo: grape6_trace::BarrierAlgo::Dissemination,
                merged: synthetic_records(0, step, 2),
                messages: 0,
                records: 0,
                bytes: 0,
            };
            a.fold(&out);
        }
        let mut b = WaveChainApp::new(9, 2);
        b.restore(&a.save()).expect("restore");
        assert_eq!(b.step(), 4);
        assert_eq!(b.digest(), a.digest());
        assert_eq!(b.t_candidate(3).to_bits(), a.t_candidate(3).to_bits());
        // Truncated payloads are a typed error, never a panic.
        assert!(b.restore(&a.save()[..12]).is_err());
    }

    #[test]
    fn supervised_fault_free_cluster_matches_run_waves_digest() {
        use grape6_net::cluster::{ClusterConfig, ClusterSupervisor};
        use grape6_net::transport::StreamConfig;
        use std::time::Duration;

        let (p, steps, recs) = (3usize, 7u64, 2usize);
        let dir = std::env::temp_dir().join(format!("g6-wavechain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scfg = StreamConfig {
            nonce: 31,
            read_deadline: Duration::from_millis(50),
            read_attempts: 3,
            ..StreamConfig::default()
        };
        let want = virtual_wave_digests(p, steps, recs, false);
        let got: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let (dir, scfg) = (dir.clone(), scfg);
                    s.spawn(move || {
                        let tr =
                            StreamTransport::connect_with(rank, p, &dir, StreamKind::Tcp, &scfg)
                                .expect("rendezvous");
                        let cfg = ClusterConfig::new(&dir);
                        let sup = ClusterSupervisor::new(tr, WaveChainApp::new(steps, recs), cfg);
                        let (app, report) = sup.run().expect("supervised run");
                        assert_eq!(report.recoveries, 0);
                        assert_eq!(report.waves_folded, steps);
                        app.digest()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank"))
                .collect()
        });
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_sensitive_to_the_payload() {
        let a = virtual_wave_digests(4, 4, 2, false);
        let b = virtual_wave_digests(4, 4, 3, false);
        let c = virtual_wave_digests(4, 5, 2, false);
        assert_ne!(a[0], b[0]);
        assert_ne!(a[0], c[0]);
    }
}
