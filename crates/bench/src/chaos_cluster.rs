//! Real-process cluster chaos: kill and stall actual OS ranks mid-run.
//!
//! The virtual-machine chaos soak ([`crate::chaos`]) proves the
//! recovery *algorithms*; this module proves the recovery *deployment*.
//! It spawns `p` copies of the `cluster_node` bin in supervised mode
//! (TCP mesh, heartbeats, deadline reads, coordinated checkpoints),
//! then injects the two real fault shapes the paper's PC-cluster
//! deployment actually suffers, via `kill(1)` so the faults are exactly
//! what an operator or the OOM killer produces:
//!
//! * **SIGKILL** one rank mid-wave — the survivors must detect the
//!   hangup, agree on the dead set, rewind to the last coordinated
//!   checkpoint, and hold the door open while the harness respawns the
//!   rank (`cluster_node --rejoin`), which restores from its on-disk
//!   checkpoint and reconnects at the new generation;
//! * **SIGSTOP** another rank past the read-deadline budget — the
//!   survivors must classify the silence as a stall, *shrink* the
//!   group (a stopped process may wake, so it can never be invited
//!   back), refold the dead rank's share, and continue; when SIGCONT
//!   wakes the process it must discover the manifest and exit
//!   *evicted* (exit code 4), not wedge the survivors.
//!
//! The verdict is the paper's §3.4 reproducibility property in
//! operational form: every rank that finishes must print the **same
//! FNV-1a digest an unfaulted run prints** — computed here from the
//! virtual-time fabric, which the transport gates already pin to the
//! real-socket backends.  Violations are collected, not panicked; the
//! `cluster_chaos` bin turns any violation into a nonzero exit and
//! writes `BENCH_chaos.json` for the CI guard.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::wavecheck::virtual_wave_digests;

/// Exit code `cluster_node` uses for "woke up shrunk" — the stalled
/// rank's only correct ending.
pub const EXIT_EVICTED: i32 = 4;

/// One seeded kill/stall schedule against a real-process cluster.
#[derive(Clone, Debug)]
pub struct ClusterChaosConfig {
    /// Path to the `cluster_node` binary.
    pub node_bin: PathBuf,
    /// Rendezvous/checkpoint directory (wiped before the run).
    pub dir: PathBuf,
    /// Ranks.
    pub p: usize,
    /// Chained waves per rank.
    pub steps: u64,
    /// Records per rank per wave.
    pub recs: usize,
    /// Run nonce stamped on rendezvous artefacts.
    pub nonce: u64,
    /// Per-step sleep in the node, ms — paces the run so the fault
    /// schedule below lands mid-flight, not after the finish line.
    pub step_delay_ms: u64,
    /// Coordinated checkpoint cadence, steps.
    pub ckpt_every: u64,
    /// Heartbeat cadence, steps.
    pub hb_every: u64,
    /// Base read deadline in the nodes, ms.
    pub read_deadline_ms: u64,
    /// Node-side silence grace before recovery starts, ms.
    pub grace_ms: u64,
    /// Node-side per-round recovery collection window, ms.
    pub recover_window_ms: u64,
    /// Node-side respawn door / manifest-poll deadline, ms.
    pub respawn_wait_ms: u64,
    /// Rank to SIGKILL, and when (ms after the mesh is up).
    pub kill_rank: usize,
    /// Milliseconds after rendezvous at which the SIGKILL lands.
    pub kill_after_ms: u64,
    /// Milliseconds after the kill at which the replacement process is
    /// spawned with `--rejoin`.
    pub respawn_after_ms: u64,
    /// Rank to SIGSTOP (shrunk, then evicted on wake).
    pub stall_rank: usize,
    /// Milliseconds after rendezvous at which the SIGSTOP lands.
    pub stall_after_ms: u64,
    /// Milliseconds after the stop at which SIGCONT wakes the rank.
    pub resume_after_ms: u64,
    /// Hard cap on waiting for any node to finish, ms.
    pub wait_cap_ms: u64,
}

impl ClusterChaosConfig {
    /// The default schedule: 4 ranks, rank 1 killed early (and
    /// respawned), rank 3 stalled later (and evicted on wake).
    pub fn new(node_bin: PathBuf, dir: PathBuf) -> Self {
        Self {
            node_bin,
            dir,
            p: 4,
            steps: 280,
            recs: 3,
            nonce: 0x6_4a11,
            step_delay_ms: 20,
            ckpt_every: 8,
            hb_every: 4,
            read_deadline_ms: 50,
            grace_ms: 400,
            recover_window_ms: 2_000,
            respawn_wait_ms: 10_000,
            kill_rank: 1,
            kill_after_ms: 1_200,
            respawn_after_ms: 700,
            stall_rank: 3,
            stall_after_ms: 3_800,
            // Must outlast stall detection (deadline budget + grace)
            // *plus* the round-1 suspicion window, or the woken rank
            // answers the liveness poll and is acquitted instead of
            // shrunk — a healed run, but not the eviction path this
            // schedule exists to exercise.
            resume_after_ms: 4_200,
            wait_cap_ms: 60_000,
        }
    }
}

/// What one node process produced.
#[derive(Clone, Debug)]
pub struct NodeResult {
    /// Original rank.
    pub orank: usize,
    /// Was this the `--rejoin` replacement process?
    pub respawned: bool,
    /// Exit code; `None` means killed by a signal (the SIGKILLed first
    /// life, or a watchdog kill on timeout).
    pub exit: Option<i32>,
    /// The printed digest, if the node finished cleanly.
    pub digest: Option<u64>,
    /// The parsed `report` key/value line, if printed.
    pub report: BTreeMap<String, String>,
    /// Captured stderr (diagnostics on violation).
    pub stderr: String,
}

/// Everything the schedule produced; `violations` is empty iff every
/// invariant held.
#[derive(Clone, Debug)]
pub struct ClusterChaosReport {
    /// The unfaulted reference digest (virtual fabric, same params).
    pub clean_digest: u64,
    /// Per-process outcomes: ranks `0..p` first lives in order, then
    /// the respawned rank's second life.
    pub nodes: Vec<NodeResult>,
    /// Max recoveries any survivor reported (expect ≥ 2: one kill, one
    /// stall).
    pub recoveries: u64,
    /// Max wall-clock seconds any survivor spent inside recovery —
    /// the real-transport analogue of the six-term breakdown's sync
    /// term (heartbeat + recovery phases fold into `Term::Sync`).
    pub recover_seconds: f64,
    /// Heartbeat frames the reporting survivors sent, summed.
    pub heartbeats: u64,
    /// Deadline-budget expiries the reporting survivors saw, summed.
    pub recv_timeouts: u64,
    /// Every broken invariant, human-readable; empty = passed.
    pub violations: Vec<String>,
}

impl ClusterChaosReport {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deliver `sig` (e.g. `"KILL"`, `"STOP"`, `"CONT"`) to `pid` via the
/// `kill` shell utility — the fault is injected exactly the way an
/// operator injects it.
fn signal(pid: u32, sig: &str) -> bool {
    Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn spawn_node(cfg: &ClusterChaosConfig, rank: usize, rejoin: bool) -> std::io::Result<Child> {
    let mut c = Command::new(&cfg.node_bin);
    c.args([
        rank.to_string(),
        cfg.p.to_string(),
        cfg.dir.display().to_string(),
        "tcp".into(),
        cfg.steps.to_string(),
        cfg.recs.to_string(),
        (if rejoin { "--rejoin" } else { "--supervised" }).into(),
        format!("--nonce={}", cfg.nonce),
        format!("--ckpt-every={}", cfg.ckpt_every),
        format!("--hb-every={}", cfg.hb_every),
        format!("--read-deadline-ms={}", cfg.read_deadline_ms),
        format!("--grace-ms={}", cfg.grace_ms),
        format!("--recover-window-ms={}", cfg.recover_window_ms),
        format!("--respawn-wait-ms={}", cfg.respawn_wait_ms),
        format!("--step-delay-ms={}", cfg.step_delay_ms),
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    c.spawn()
}

/// Reap `child` within `cap`; a node that outlives the cap is KILLed
/// and reported with `exit: None`.
fn reap(child: Child, orank: usize, respawned: bool, cap: Duration) -> NodeResult {
    let pid = child.id();
    let deadline = Instant::now() + cap;
    let mut child = child;
    let status = loop {
        match child.try_wait() {
            Ok(Some(st)) => break Some(st),
            Ok(None) if Instant::now() > deadline => {
                signal(pid, "KILL");
                let _ = child.wait();
                break None;
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => break None,
        }
    };
    let mut stdout = String::new();
    let mut stderr = String::new();
    if let Some(mut s) = child.stdout.take() {
        use std::io::Read;
        let _ = s.read_to_string(&mut stdout);
    }
    if let Some(mut s) = child.stderr.take() {
        use std::io::Read;
        let _ = s.read_to_string(&mut stderr);
    }
    let digest = stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest="))
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok());
    let report = stdout
        .lines()
        .find_map(|l| l.strip_prefix("report "))
        .map(|l| {
            l.split_whitespace()
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        })
        .unwrap_or_default();
    NodeResult {
        orank,
        respawned,
        exit: status.and_then(|s| s.code()),
        digest,
        report,
        stderr,
    }
}

/// Parse a `-`-or-CSV rank list from a report value.
fn ranks_of(report: &BTreeMap<String, String>, key: &str) -> Vec<usize> {
    report
        .get(key)
        .map(|v| v.split(',').filter_map(|r| r.parse().ok()).collect())
        .unwrap_or_default()
}

/// Run the schedule and judge the wreckage.
pub fn run_cluster_chaos(cfg: &ClusterChaosConfig) -> ClusterChaosReport {
    let mut violations: Vec<String> = Vec::new();
    assert!(cfg.p >= 3, "need at least one survivor besides the leader");
    assert!(cfg.kill_rank != cfg.stall_rank && cfg.kill_rank < cfg.p && cfg.stall_rank < cfg.p);
    assert!(
        cfg.kill_rank != 0 && cfg.stall_rank != 0,
        "rank 0 anchors the torn-free rendezvous files; fault the others"
    );

    let clean_digest = virtual_wave_digests(cfg.p, cfg.steps, cfg.recs, false)[0];

    let _ = std::fs::remove_dir_all(&cfg.dir);
    let mut children: Vec<Option<Child>> = Vec::new();
    for rank in 0..cfg.p {
        match spawn_node(cfg, rank, false) {
            Ok(c) => children.push(Some(c)),
            Err(e) => {
                violations.push(format!("could not spawn rank {rank}: {e}"));
                children.push(None);
            }
        }
    }

    // Start the fault clock only once the mesh is actually forming:
    // every rank has bound its listener and published its address.
    let t0 = {
        let deadline = Instant::now() + Duration::from_secs(30);
        while (0..cfg.p).any(|r| !cfg.dir.join(format!("rank{r}.addr")).exists()) {
            if Instant::now() > deadline {
                violations.push("rendezvous never published all addresses".into());
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Instant::now()
    };
    let sleep_until = |ms: u64| {
        let at = t0 + Duration::from_millis(ms);
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
    };

    // Fault 1: SIGKILL mid-wave, then respawn from the checkpoint.
    sleep_until(cfg.kill_after_ms);
    let first_life = children[cfg.kill_rank].take().map(|c| {
        signal(c.id(), "KILL");
        reap(c, cfg.kill_rank, false, Duration::from_secs(10))
    });
    sleep_until(cfg.kill_after_ms + cfg.respawn_after_ms);
    let rejoined_child = match spawn_node(cfg, cfg.kill_rank, true) {
        Ok(c) => Some(c),
        Err(e) => {
            violations.push(format!("could not respawn rank {}: {e}", cfg.kill_rank));
            None
        }
    };

    // Fault 2: SIGSTOP past the deadline budget, SIGCONT after the
    // survivors have shrunk the group.
    sleep_until(cfg.stall_after_ms);
    let stall_pid = children[cfg.stall_rank].as_ref().map(|c| c.id());
    if let Some(pid) = stall_pid {
        if !signal(pid, "STOP") {
            violations.push(format!("SIGSTOP of rank {} failed", cfg.stall_rank));
        }
    }
    sleep_until(cfg.stall_after_ms + cfg.resume_after_ms);
    if let Some(pid) = stall_pid {
        if !signal(pid, "CONT") {
            violations.push(format!("SIGCONT of rank {} failed", cfg.stall_rank));
        }
    }

    // Reap everything.
    let cap = Duration::from_millis(cfg.wait_cap_ms);
    let mut nodes: Vec<NodeResult> = Vec::new();
    for (rank, slot) in children.into_iter().enumerate() {
        if rank == cfg.kill_rank {
            if let Some(r) = first_life.clone() {
                nodes.push(r);
            }
            continue;
        }
        if let Some(c) = slot {
            nodes.push(reap(c, rank, false, cap));
        }
    }
    if let Some(c) = rejoined_child {
        nodes.push(reap(c, cfg.kill_rank, true, cap));
    }

    // Judgement.  The SIGKILLed first life must have died to the
    // signal, not exited.
    if let Some(fl) = nodes
        .iter()
        .find(|n| n.orank == cfg.kill_rank && !n.respawned)
    {
        if fl.exit.is_some() {
            violations.push(format!(
                "rank {} survived its SIGKILL (exit {:?})",
                cfg.kill_rank, fl.exit
            ));
        }
    }
    // Every finisher — the untouched survivors and the respawned rank —
    // must exit 0 with the clean digest.
    let finishers: Vec<&NodeResult> = nodes
        .iter()
        .filter(|n| n.orank != cfg.stall_rank && (n.orank != cfg.kill_rank || n.respawned))
        .collect();
    for n in &finishers {
        let who = format!(
            "rank {}{}",
            n.orank,
            if n.respawned { " (respawned)" } else { "" }
        );
        if n.exit != Some(0) {
            violations.push(format!(
                "{who} exited {:?}, stderr:\n{}",
                n.exit,
                n.stderr.trim()
            ));
        }
        match n.digest {
            Some(d) if d == clean_digest => {}
            Some(d) => violations.push(format!(
                "{who} digest {d:016x} != clean {clean_digest:016x}"
            )),
            None => violations.push(format!("{who} printed no digest")),
        }
    }
    // The stalled rank must wake into eviction — exit 4, no digest.
    match nodes.iter().find(|n| n.orank == cfg.stall_rank) {
        Some(n) if n.exit == Some(EXIT_EVICTED) => {}
        Some(n) => violations.push(format!(
            "stalled rank {} exited {:?}, want {EXIT_EVICTED} (evicted), stderr:\n{}",
            cfg.stall_rank,
            n.exit,
            n.stderr.trim()
        )),
        None => violations.push(format!("stalled rank {} was never reaped", cfg.stall_rank)),
    }
    // Survivors must have recovered twice (kill + stall), rejoined the
    // killed rank, shrunk the stalled one, and spent measurable wall
    // clock inside recovery.
    let num = |n: &NodeResult, k: &str| -> u64 {
        n.report.get(k).and_then(|v| v.parse().ok()).unwrap_or(0)
    };
    let fnum = |n: &NodeResult, k: &str| -> f64 {
        n.report.get(k).and_then(|v| v.parse().ok()).unwrap_or(0.0)
    };
    let survivors: Vec<&&NodeResult> = finishers.iter().filter(|n| !n.respawned).collect();
    let recoveries = survivors
        .iter()
        .map(|n| num(n, "recoveries"))
        .max()
        .unwrap_or(0);
    let recover_seconds = survivors
        .iter()
        .map(|n| fnum(n, "recover_s"))
        .fold(0.0, f64::max);
    let heartbeats = survivors.iter().map(|n| num(n, "hb")).sum();
    let recv_timeouts = survivors.iter().map(|n| num(n, "timeouts")).sum();
    if recoveries < 2 {
        violations.push(format!(
            "survivors report {recoveries} recoveries, want >= 2 (one kill, one stall)"
        ));
    }
    if recover_seconds <= 0.0 {
        violations.push("survivors charged no recovery wall clock".into());
    }
    if recv_timeouts == 0 {
        violations.push("no read ever hit its deadline budget — the stall went undetected".into());
    }
    let want_group: Vec<usize> = (0..cfg.p).filter(|&r| r != cfg.stall_rank).collect();
    for n in &survivors {
        let who = format!("rank {}", n.orank);
        if !ranks_of(&n.report, "rejoined").contains(&cfg.kill_rank) {
            violations.push(format!("{who} never saw rank {} rejoin", cfg.kill_rank));
        }
        if ranks_of(&n.report, "shrunk") != vec![cfg.stall_rank] {
            violations.push(format!(
                "{who} shrunk set {:?}, want [{}]",
                ranks_of(&n.report, "shrunk"),
                cfg.stall_rank
            ));
        }
        if ranks_of(&n.report, "group") != want_group {
            violations.push(format!(
                "{who} final group {:?}, want {want_group:?}",
                ranks_of(&n.report, "group")
            ));
        }
    }

    let _ = std::fs::remove_dir_all(&cfg.dir);
    ClusterChaosReport {
        clean_digest,
        nodes,
        recoveries,
        recover_seconds,
        heartbeats,
        recv_timeouts,
        violations,
    }
}
