//! # grape6-bench — the harness that regenerates the paper's evaluation
//!
//! One binary per figure/table (see DESIGN.md §5 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig13` | single-node speed vs N, three softenings |
//! | `fig14` | CPU time per particle step + the two model curves |
//! | `fig15` | 1/2/4-node speed, constant-ε and ε=4/N panels |
//! | `fig16` | 4-node time per step + model |
//! | `fig17` | 4/8/16-node (1/2/4-cluster) speed |
//! | `fig18` | 16-node time per step + model |
//! | `fig19` | NS83820+Athlon vs 82540EM+P4 |
//! | `overlap_bench` | serial/parallel/overlapped schedule comparison (`BENCH_overlap.json`) |
//! | `kernel_bench` | scalar vs batched SoA force-kernel A/B (`BENCH_kernel.json`) |
//! | `table_apps` | §5 application runs (Kuiper belt, binary BH) |
//! | `table_treecode` | §5 treecode comparison (particle-steps/s) |
//! | `calibrate` | re-measures the block statistics the model extrapolates |
//! | `ablation_*` | design-choice studies (see DESIGN.md) |
//!
//! This library holds what the binaries share: log-spaced sweeps, table
//! printing, and the **measured** block-statistics runner that ties the
//! analytic model to real integrations of the bit-level simulator stack.

pub mod breakdown;
pub mod chaos;
pub mod chaos_cluster;
pub mod farm;
pub mod farm_net;
pub mod kernel;
pub mod overlap;
pub mod wavecheck;

use grape6_core::{HermiteIntegrator, IntegratorConfig};
use grape6_model::BlockStatsModel;
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Log-spaced particle counts from `min` to `max` (inclusive-ish).
pub fn log_n_sweep(min: usize, max: usize, points_per_decade: usize) -> Vec<usize> {
    assert!(min >= 2 && max > min && points_per_decade >= 1);
    let mut out = Vec::new();
    let lmin = (min as f64).log10();
    let lmax = (max as f64).log10();
    let steps = ((lmax - lmin) * points_per_decade as f64).ceil() as usize;
    for k in 0..=steps {
        let l = lmin + (lmax - lmin) * k as f64 / steps as f64;
        let n = 10f64.powf(l).round() as usize;
        if out.last() != Some(&n) {
            out.push(n);
        }
    }
    out
}

/// Print an aligned table to stdout.
///
/// When the environment variable `GRAPE6_BENCH_JSON` names a directory,
/// the same table is also written there as
/// `<slugified-title>.json` — machine-readable output for plotting
/// pipelines, with zero changes to the figure binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("GRAPE6_BENCH_JSON") {
        if let Err(e) = write_json_table(&dir, title, headers, rows) {
            eprintln!("warning: could not write JSON table: {e}");
        }
    }
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(k, h)| format!("{:>w$}", h, w = widths[k]))
        .collect();
    println!("{}", line.join("  "));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{:>w$}", c, w = widths[k]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Serialise one table to `<dir>/<slug>.json`.
// `headers`/`rows` are consumed inside `serde_json::json!`; an offline
// build against a stubbed serde_json can expand the macro to a constant,
// which would otherwise warn that they are unused.
#[allow(unused_variables)]
fn write_json_table(
    dir: &str,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write;
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let payload = serde_json::json!({
        "title": title,
        "headers": headers,
        "rows": rows,
    });
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir).join(format!("{slug}.json"));
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", serde_json::to_string_pretty(&payload)?)?;
    Ok(())
}

/// Format a speed in the unit the paper's figure uses.
pub fn fmt_flops(s: f64) -> String {
    if s >= 1e12 {
        format!("{:.2} Tflops", s / 1e12)
    } else {
        format!("{:.1} Gflops", s / 1e9)
    }
}

/// Result of measuring block statistics from a real integration.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredStats {
    /// System size.
    pub n: usize,
    /// Particle steps per time unit.
    pub steps_per_unit: f64,
    /// Blocksteps per time unit.
    pub blocks_per_unit: f64,
    /// Mean block size.
    pub mean_block: f64,
}

/// Integrate a Plummer model of size `n` for `duration` time units with
/// the reference engine and measure the blockstep statistics the
/// performance model needs.
pub fn measure_block_stats(n: usize, soft: Softening, duration: f64, seed: u64) -> MeasuredStats {
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let cfg = IntegratorConfig {
        softening: soft,
        ..Default::default()
    };
    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
    it.run_until(duration);
    let st = it.stats();
    MeasuredStats {
        n,
        steps_per_unit: st.particle_steps as f64 / duration,
        blocks_per_unit: st.blocksteps as f64 / duration,
        mean_block: st.mean_block(),
    }
}

/// Fit a [`BlockStatsModel`] from real runs at the given sizes.
pub fn fit_block_stats(
    sizes: &[usize],
    soft: Softening,
    duration: f64,
    block_sigma: f64,
) -> (BlockStatsModel, Vec<MeasuredStats>) {
    let measured: Vec<MeasuredStats> = sizes
        .iter()
        .map(|&n| measure_block_stats(n, soft, duration, 1000 + n as u64))
        .collect();
    let samples: Vec<(f64, f64, f64)> = measured
        .iter()
        .map(|m| (m.n as f64, m.steps_per_unit, m.blocks_per_unit))
        .collect();
    (
        BlockStatsModel::fit(&samples, 1024.0, block_sigma),
        measured,
    )
}

/// Sustained speed from a **real** integration: run the actual Hermite
/// block-timestep driver at size `n`, charge the performance model for
/// every blockstep that really occurred (actual sizes, actual count), and
/// return `57·N·steps / T_virtual`.  This is the harness's "measured"
/// datum — the mean-block model curves are validated against it where
/// real runs are affordable.
pub fn measured_speed(
    n: usize,
    soft: Softening,
    duration: f64,
    model: &grape6_model::PerfModel,
    layout: grape6_model::MachineLayout,
    seed: u64,
) -> f64 {
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let cfg = IntegratorConfig {
        softening: soft,
        ..Default::default()
    };
    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
    let mut t_virtual = 0.0f64;
    let mut steps = 0u64;
    while it.time() < duration {
        let (_, n_b) = it.step();
        t_virtual += model.block_time(layout, n, n_b).total();
        steps += n_b as u64;
    }
    57.0 * n as f64 * steps as f64 / t_virtual
}

/// The default (pre-fitted) statistics model for a softening policy.
pub fn default_stats(soft: Softening) -> BlockStatsModel {
    match soft {
        Softening::Constant | Softening::Fixed(_) => BlockStatsModel::constant_softening(),
        Softening::InterParticle => BlockStatsModel::inter_particle_softening(),
        Softening::CloseEncounter => BlockStatsModel::close_encounter_softening(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_bounded() {
        let s = log_n_sweep(256, 200_000, 4);
        assert!(s.first() == Some(&256));
        assert!(*s.last().unwrap() >= 190_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.len() > 8 && s.len() < 20);
    }

    #[test]
    fn measured_stats_sane_for_tiny_system() {
        let m = measure_block_stats(64, Softening::Constant, 0.125, 7);
        assert_eq!(m.n, 64);
        assert!(m.steps_per_unit > 64.0, "steps {}", m.steps_per_unit);
        assert!(m.blocks_per_unit > 8.0);
        assert!(m.mean_block >= 1.0 && m.mean_block <= 64.0);
    }

    #[test]
    fn json_table_export() {
        let dir = std::env::temp_dir().join("grape6_bench_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_json_table(
            dir.to_str().unwrap(),
            "Fig. 99 — a test table",
            &["N", "speed"],
            &[vec!["10".into(), "1.5".into()]],
        )
        .unwrap();
        let path = dir.join("fig_99_a_test_table.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["headers"][0], "N");
        assert_eq!(v["rows"][0][1], "1.5");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_flops_units() {
        assert_eq!(fmt_flops(2.5e12), "2.50 Tflops");
        assert_eq!(fmt_flops(3.0e10), "30.0 Gflops");
    }
}
