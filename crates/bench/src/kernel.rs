//! Kernel A/B benchmark: scalar reference oracle vs batched SoA kernel.
//!
//! The simulated pipeline's results are fixed by the bit-exact arithmetic
//! contract, so the only thing a host kernel may change is how fast the
//! host reproduces them.  This module runs the same Plummer integration
//! twice — once on the per-interaction scalar oracle, once on the batched
//! structure-of-arrays kernel — and reports:
//!
//! * a **bitwise identity** verdict over the final particle bits (the
//!   batched kernel performs the same rounded operations in the same
//!   order per (i, j) pair, so any divergence is a bug, and the bin
//!   exits non-zero);
//! * **interactions per second of host wall-clock** for each kernel, the
//!   figure of merit for how large a functional experiment the workspace
//!   can afford.  The speedup is *reported, not asserted* here — `ci.sh`
//!   guards against regression (batched must not fall below scalar).

use std::time::Instant;

use grape6_core::engine::Grape6Engine;
use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_core::KernelMode;
use grape6_system::machine::MachineConfig;
use nbody_core::force::ForceEngine;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::overlap::state_hash;

/// One kernel's outcome over the measured blocksteps.
#[derive(Clone, Debug)]
pub struct KernelRunResult {
    /// Kernel label (`scalar`, `batched`).
    pub label: &'static str,
    /// Real wall-clock seconds for the measured blocksteps.
    pub wall_seconds: f64,
    /// Pairwise interactions the hardware evaluated.
    pub interactions: u64,
    /// FNV-1a hash over the final particle bits (pos/vel/t/dt/acc/jerk).
    pub state_hash: u64,
}

impl KernelRunResult {
    /// Interactions per second of host wall-clock.
    pub fn interactions_per_sec(&self) -> f64 {
        self.interactions as f64 / self.wall_seconds.max(1e-12)
    }
}

/// The scalar-vs-batched comparison.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// System size.
    pub n: usize,
    /// Blocksteps measured per kernel.
    pub blocksteps: usize,
    /// Boards in the machine under test.
    pub boards: usize,
    /// The per-interaction scalar oracle.
    pub scalar: KernelRunResult,
    /// The batched SoA kernel.
    pub batched: KernelRunResult,
}

impl KernelReport {
    /// Did both kernels land on identical particle bits?
    pub fn bitwise_identical(&self) -> bool {
        self.scalar.state_hash == self.batched.state_hash
    }

    /// Host-throughput speedup of the batched kernel over the oracle.
    pub fn speedup(&self) -> f64 {
        self.batched.interactions_per_sec() / self.scalar.interactions_per_sec().max(1e-12)
    }

    /// Hand-rolled JSON (offline-safe) for `BENCH_kernel.json`.
    pub fn to_json(&self) -> String {
        let run = |r: &KernelRunResult| {
            format!(
                "{{\"label\":\"{}\",\"wall_seconds\":{:e},\"interactions\":{},\
                 \"interactions_per_sec\":{:e},\"state_hash\":{}}}",
                r.label,
                r.wall_seconds,
                r.interactions,
                r.interactions_per_sec(),
                r.state_hash,
            )
        };
        format!(
            "{{\"n\":{},\"blocksteps\":{},\"boards\":{},\
             \"bitwise_identical\":{},\"speedup\":{:e},\
             \"scalar\":{},\"batched\":{}}}",
            self.n,
            self.blocksteps,
            self.boards,
            self.bitwise_identical(),
            self.speedup(),
            run(&self.scalar),
            run(&self.batched),
        )
    }
}

/// Run `blocksteps` blocksteps of a seeded Plummer model on one kernel
/// and measure it.
fn run_kernel(
    machine: &MachineConfig,
    n: usize,
    blocksteps: usize,
    seed: u64,
    mode: KernelMode,
) -> KernelRunResult {
    let label = mode.name();
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let mut engine = Grape6Engine::try_new(machine, n).unwrap();
    engine.set_kernel_mode(mode);
    let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
    let before = it.engine().interactions();
    let t0 = Instant::now();
    for _ in 0..blocksteps {
        it.try_step_auto().expect("healthy hardware");
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    KernelRunResult {
        label,
        wall_seconds,
        interactions: it.engine().interactions() - before,
        state_hash: state_hash(it.particles()),
    }
}

/// The scalar-vs-batched comparison on `machine` for `blocksteps` steps
/// of an `n`-particle Plummer model.
pub fn run_kernel_bench(
    machine: &MachineConfig,
    n: usize,
    blocksteps: usize,
    seed: u64,
) -> KernelReport {
    let scalar = run_kernel(machine, n, blocksteps, seed, KernelMode::Scalar);
    let batched = run_kernel(machine, n, blocksteps, seed, KernelMode::Batched);
    KernelReport {
        n,
        blocksteps,
        boards: machine.boards,
        scalar,
        batched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_bitwise_identical_over_whole_blocksteps() {
        let machine = MachineConfig::builder()
            .boards(2)
            .modules_per_board(2)
            .chips_per_module(1)
            .jmem_capacity(1024)
            .build()
            .unwrap();
        let report = run_kernel_bench(&machine, 96, 16, 7);
        assert!(report.bitwise_identical(), "kernels diverged bitwise");
        // Both runs drove the same hardware schedule.
        assert_eq!(report.scalar.interactions, report.batched.interactions);
        assert!(report.scalar.interactions > 0);
        let json = report.to_json();
        assert!(json.contains("\"bitwise_identical\":true"), "{json}");
        assert!(json.contains("\"batched\""), "{json}");
    }
}
