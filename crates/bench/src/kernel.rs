//! Kernel A/B/C benchmark: scalar oracle vs batched SoA vs SIMD lanes.
//!
//! The simulated pipeline's results are fixed by the bit-exact arithmetic
//! contract, so the only thing a host kernel may change is how fast the
//! host reproduces them.  This module runs the same Plummer integration
//! once per **kernel variant** — the per-interaction scalar oracle, the
//! auto-vectorised batched SoA kernel, and the hand-rolled SIMD-lane
//! kernel at each dispatch level the host supports (`simd-avx2`, and
//! `simd-avx512` where detected) — across a matrix of system sizes, and
//! reports per variant:
//!
//! * a **bitwise identity** verdict over the final particle bits (every
//!   kernel performs the same rounded operations in the same order per
//!   (i, j) pair, so any divergence is a bug, and the bin exits
//!   non-zero);
//! * **interactions per second of host wall-clock**, the figure of merit
//!   for how large a functional experiment the workspace can afford.
//!   Speedups are *reported, not asserted* here — `ci.sh` guards the
//!   relational floor (batched ≥ scalar, best SIMD ≥ batched).
//!
//! SIMD levels are pinned per run through the dispatch override
//! (`grape6_arith::simd::set_dispatch_override`), which can cap but never
//! raise the detected level — so a `simd-avx2` row on an AVX-512 host
//! really does time the 4-wide lanes.

use std::time::Instant;

use grape6_arith::simd::{active_level, set_dispatch_override, DispatchOverride, SimdLevel};
use grape6_core::engine::Grape6Engine;
use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_core::KernelMode;
use grape6_system::machine::MachineConfig;
use nbody_core::force::ForceEngine;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::overlap::state_hash;

/// One kernel variant's outcome over the measured blocksteps.
#[derive(Clone, Debug)]
pub struct KernelRunResult {
    /// Variant label (`scalar`, `batched`, `simd-avx2`, `simd-avx512`).
    pub label: String,
    /// Real wall-clock seconds for the measured blocksteps.
    pub wall_seconds: f64,
    /// Pairwise interactions the hardware evaluated.
    pub interactions: u64,
    /// FNV-1a hash over the final particle bits (pos/vel/t/dt/acc/jerk).
    pub state_hash: u64,
}

impl KernelRunResult {
    /// Interactions per second of host wall-clock.
    pub fn interactions_per_sec(&self) -> f64 {
        self.interactions as f64 / self.wall_seconds.max(1e-12)
    }
}

/// All variants at one system size.
#[derive(Clone, Debug)]
pub struct KernelEntry {
    /// System size.
    pub n: usize,
    /// One result per kernel variant, scalar first.
    pub variants: Vec<KernelRunResult>,
}

impl KernelEntry {
    /// Did every variant land on identical particle bits?
    pub fn bitwise_identical(&self) -> bool {
        self.variants
            .windows(2)
            .all(|w| w[0].state_hash == w[1].state_hash)
    }

    /// Look a variant up by label.
    pub fn variant(&self, label: &str) -> Option<&KernelRunResult> {
        self.variants.iter().find(|v| v.label == label)
    }

    /// The fastest `simd-*` variant, if any ran.
    pub fn best_simd(&self) -> Option<&KernelRunResult> {
        self.variants
            .iter()
            .filter(|v| v.label.starts_with("simd"))
            .max_by(|a, b| {
                a.interactions_per_sec()
                    .total_cmp(&b.interactions_per_sec())
            })
    }

    /// Host-throughput speedup of a labelled variant over the oracle.
    pub fn speedup_over_scalar(&self, label: &str) -> Option<f64> {
        let s = self.variant("scalar")?.interactions_per_sec();
        Some(self.variant(label)?.interactions_per_sec() / s.max(1e-12))
    }
}

/// The full kernel comparison matrix.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Blocksteps measured per variant.
    pub blocksteps: usize,
    /// Boards in the machine under test.
    pub boards: usize,
    /// One entry per system size.
    pub entries: Vec<KernelEntry>,
}

impl KernelReport {
    /// Did every variant at every size land on identical particle bits?
    pub fn bitwise_identical(&self) -> bool {
        self.entries.iter().all(KernelEntry::bitwise_identical)
    }

    /// Hand-rolled JSON (offline-safe) for `BENCH_kernel.json`.
    pub fn to_json(&self) -> String {
        let run = |r: &KernelRunResult| {
            format!(
                "{{\"label\":\"{}\",\"wall_seconds\":{:e},\"interactions\":{},\
                 \"interactions_per_sec\":{:e},\"state_hash\":{}}}",
                r.label,
                r.wall_seconds,
                r.interactions,
                r.interactions_per_sec(),
                r.state_hash,
            )
        };
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let variants = e.variants.iter().map(run).collect::<Vec<_>>().join(",");
                format!(
                    "{{\"n\":{},\"bitwise_identical\":{},\"variants\":[{}]}}",
                    e.n,
                    e.bitwise_identical(),
                    variants,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"blocksteps\":{},\"boards\":{},\"bitwise_identical\":{},\
             \"entries\":[{}]}}",
            self.blocksteps,
            self.boards,
            self.bitwise_identical(),
            entries,
        )
    }
}

/// The kernel variants this host can time: the two portable kernels plus
/// one `simd-*` row per dispatch level the hardware (and environment)
/// actually supports.
pub fn variant_plan() -> Vec<(String, KernelMode, Option<DispatchOverride>)> {
    let mut plan = vec![
        ("scalar".to_string(), KernelMode::Scalar, None),
        ("batched".to_string(), KernelMode::Batched, None),
    ];
    // `active_level()` under Auto = detected hardware ∧ environment; caps
    // below it are honest timings, a cap above it would silently fall
    // back to the batched path and mislabel the row.
    set_dispatch_override(DispatchOverride::Auto);
    match active_level() {
        Some(SimdLevel::Avx512) => {
            plan.push((
                "simd-avx2".to_string(),
                KernelMode::Simd,
                Some(DispatchOverride::CapAvx2),
            ));
            plan.push((
                "simd-avx512".to_string(),
                KernelMode::Simd,
                Some(DispatchOverride::CapAvx512),
            ));
        }
        Some(SimdLevel::Avx2) => {
            plan.push((
                "simd-avx2".to_string(),
                KernelMode::Simd,
                Some(DispatchOverride::CapAvx2),
            ));
        }
        None => {}
    }
    plan
}

/// Run `blocksteps` blocksteps of a seeded Plummer model on one kernel
/// variant and measure it.
fn run_variant(
    machine: &MachineConfig,
    n: usize,
    blocksteps: usize,
    seed: u64,
    label: &str,
    mode: KernelMode,
    level: Option<DispatchOverride>,
) -> KernelRunResult {
    set_dispatch_override(level.unwrap_or(DispatchOverride::Auto));
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let mut engine = Grape6Engine::try_new(machine, n).unwrap();
    engine.set_kernel_mode(mode);
    let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
    let before = it.engine().interactions();
    let t0 = Instant::now();
    for _ in 0..blocksteps {
        it.try_step_auto().expect("healthy hardware");
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    set_dispatch_override(DispatchOverride::Auto);
    KernelRunResult {
        label: label.to_string(),
        wall_seconds,
        interactions: it.engine().interactions() - before,
        state_hash: state_hash(it.particles()),
    }
}

/// The full variant × size comparison on `machine` for `blocksteps`
/// steps of seeded Plummer models.
pub fn run_kernel_bench(
    machine: &MachineConfig,
    sizes: &[usize],
    blocksteps: usize,
    seed: u64,
) -> KernelReport {
    let plan = variant_plan();
    let entries = sizes
        .iter()
        .map(|&n| KernelEntry {
            n,
            variants: plan
                .iter()
                .map(|(label, mode, level)| {
                    run_variant(machine, n, blocksteps, seed, label, *mode, *level)
                })
                .collect(),
        })
        .collect();
    KernelReport {
        blocksteps,
        boards: machine.boards,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The dispatch override is process-global; tests that set or assert
    /// on it serialise here.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn all_variants_are_bitwise_identical_over_whole_blocksteps() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let machine = MachineConfig::builder()
            .boards(2)
            .modules_per_board(2)
            .chips_per_module(1)
            .jmem_capacity(1024)
            .build()
            .unwrap();
        let report = run_kernel_bench(&machine, &[96], 16, 7);
        assert!(report.bitwise_identical(), "kernels diverged bitwise");
        let entry = &report.entries[0];
        // Scalar and batched always run; SIMD rows depend on the host.
        assert!(entry.variant("scalar").is_some());
        assert!(entry.variant("batched").is_some());
        // Every variant drove the same hardware schedule.
        let inter = entry.variant("scalar").unwrap().interactions;
        assert!(inter > 0);
        for v in &entry.variants {
            assert_eq!(v.interactions, inter, "{}", v.label);
        }
        let json = report.to_json();
        assert!(json.contains("\"bitwise_identical\":true"), "{json}");
        assert!(json.contains("\"batched\""), "{json}");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_rows_follow_the_detected_level() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let plan = variant_plan();
        let labels: Vec<&str> = plan.iter().map(|(l, _, _)| l.as_str()).collect();
        set_dispatch_override(DispatchOverride::Auto);
        match active_level() {
            Some(SimdLevel::Avx512) => {
                assert!(labels.contains(&"simd-avx2"));
                assert!(labels.contains(&"simd-avx512"));
            }
            Some(SimdLevel::Avx2) => {
                assert!(labels.contains(&"simd-avx2"));
                assert!(!labels.contains(&"simd-avx512"));
            }
            None => {
                assert_eq!(labels, ["scalar", "batched"]);
            }
        }
    }
}
