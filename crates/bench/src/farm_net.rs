//! The networked farm soak: real OS processes against a real socket.
//!
//! One `farm_server` process serves the shared board pool over TCP or
//! UDS; around it the harness arranges every operational insult the
//! in-process soak knows, plus the ones only a socket can deliver:
//!
//! * **oversubscription** — a victim client parks one session on the
//!   admission ceiling, then two worker clients submit four more jobs
//!   against a ceiling of three, so at least one submit *must* come
//!   back as a typed `Saturated` denial (in wall milliseconds) and
//!   clear through the deterministic backoff ladder;
//! * **two injected board faults** — board 1 flunks power-on self-test
//!   (dead module; a 48-particle job can never fit) and board 2 dies
//!   mid-run (recovery ladder, park, rotation, resume elsewhere);
//! * **one SIGKILLed client** — the victim is killed mid-job with no
//!   `Bye`; the server must notice (EOF or heartbeat-grace), detach its
//!   session onto a checkpoint, and hand the board to the workers;
//! * **wire vandals** — a torn-frame injector that dies mid-frame and a
//!   mid-handshake deserter, both of which the server must classify and
//!   shrug off.
//!
//! The verdict is the same as everywhere else in this repo: every job a
//! worker client fetched over the wire must be **bitwise identical** to
//! the same job run in-process on a dedicated healthy board
//! ([`grape6_farm::particles_digest`] on both sides).  `farm_net_soak`
//! runs this for TCP and UDS and writes `BENCH_farm_net.json`.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6_farm::particles_digest;
use grape6_fault::rng::mix;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::farm::soak_unit;

/// The initial conditions client `seed` uses for its `j`-th job — the
/// one function both the `farm_client` bin and the dedicated-replay
/// oracle call, so the bits they integrate are the same by construction.
pub fn job_ic(seed: u64, j: u64, n: usize) -> ParticleSet {
    let ic_seed = mix(seed, j, 0xfa57, 7, 1);
    plummer_model(n, &mut StdRng::seed_from_u64(ic_seed))
}

/// The oracle: the same job on a dedicated healthy board, in-process,
/// uninterrupted — the digest the wire result must reproduce exactly.
pub fn dedicated_digest(seed: u64, j: u64, n: usize, t_end: f64) -> u64 {
    let engine = Grape6Engine::try_new(&soak_unit(), n).expect("healthy board fits the job");
    let mut it = HermiteIntegrator::new(engine, job_ic(seed, j, n), IntegratorConfig::default());
    it.run_until(t_end);
    particles_digest(it.particles())
}

/// Scenario shape for one transport kind.
#[derive(Clone, Debug)]
pub struct FarmNetConfig {
    /// Path to the `farm_server` binary.
    pub server_bin: PathBuf,
    /// Path to the `farm_client` binary.
    pub client_bin: PathBuf,
    /// Rendezvous directory (recreated per run).
    pub dir: PathBuf,
    /// `"tcp"` or `"uds"`.
    pub kind: String,
    /// Run nonce (stale-rendezvous guard).
    pub nonce: u64,
    /// Particles per job — 48 so the dead-module board can never help.
    pub n: usize,
    /// Target time per worker job.
    pub t_end: f64,
    /// Jobs per worker client.
    pub jobs_per_client: usize,
    /// Admission ceiling; victim + 2×jobs must exceed it.
    pub max_live: usize,
    /// Scenario seed (client seeds derive from it).
    pub seed: u64,
    /// Wall cap on the whole scenario.
    pub wall_cap: Duration,
}

impl FarmNetConfig {
    /// The acceptance scenario: ceiling 3, five jobs offered, two board
    /// faults, one murdered client.
    pub fn new(server_bin: PathBuf, client_bin: PathBuf, dir: PathBuf, kind: &str) -> Self {
        Self {
            server_bin,
            client_bin,
            dir,
            kind: kind.into(),
            nonce: 0xfa43,
            n: 48,
            t_end: 0.0625,
            jobs_per_client: 2,
            max_live: 3,
            seed: 17,
            wall_cap: Duration::from_secs(180),
        }
    }
}

/// What one networked soak produced.
#[derive(Clone, Debug, Default)]
pub struct FarmNetOutcome {
    /// Transport kind.
    pub kind: String,
    /// Scenario seed.
    pub seed: u64,
    /// Worker jobs fetched over the wire.
    pub jobs_done: u64,
    /// Of those, bitwise identical to the dedicated in-process run.
    pub digests_ok: u64,
    /// Typed `Saturated` denials the workers saw (and retried through).
    pub saturated_denials: u64,
    /// Torn frames the server classified.
    pub torn_frames: u64,
    /// Connections the server declared dead (victim, vandals).
    pub client_deaths: u64,
    /// Sessions detached onto checkpoints (the victim's).
    pub detached: u64,
    /// Sessions the farm completed.
    pub completed: u64,
    /// Boards rotated out (the two injected faults).
    pub board_rotations: u64,
    /// Total typed denials the server sent.
    pub denials: u64,
    /// Wall time of the whole scenario.
    pub wall_ms: u64,
    /// Every broken invariant; empty = passed.
    pub violations: Vec<String>,
}

impl FarmNetOutcome {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Hand-rolled JSON object (offline-safe) for `BENCH_farm_net.json`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"{}\",\"seed\":{},\"jobs_done\":{},\"digests_ok\":{},",
                "\"saturated_denials\":{},\"torn_frames\":{},\"client_deaths\":{},",
                "\"detached\":{},\"completed\":{},\"board_rotations\":{},",
                "\"denials\":{},\"wall_ms\":{},\"ok\":{}}}"
            ),
            self.kind,
            self.seed,
            self.jobs_done,
            self.digests_ok,
            self.saturated_denials,
            self.torn_frames,
            self.client_deaths,
            self.detached,
            self.completed,
            self.board_rotations,
            self.denials,
            self.wall_ms,
            self.ok()
        )
    }
}

/// Deliver `sig` to `pid` the way an operator would.
fn signal(pid: u32, sig: &str) -> bool {
    Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn spawn(bin: &PathBuf, args: &[String]) -> std::io::Result<Child> {
    Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
}

/// Read lines from a child's stdout on a thread until one starts with
/// `prefix`; give up after `cap`.
fn await_line(child: &mut Child, prefix: &'static str, cap: Duration) -> Option<String> {
    let stdout = child.stdout.take()?;
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = Vec::new();
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            let hit = line.starts_with(prefix);
            lines.push(line);
            if hit {
                let _ = tx.send(lines);
                return;
            }
        }
        let _ = tx.send(lines);
    });
    let lines = rx.recv_timeout(cap).ok()?;
    lines.into_iter().find(|l| l.starts_with(prefix))
}

/// Reap a child within `cap` (KILL past it); returns (exit-ok, stdout).
fn reap(mut child: Child, cap: Duration) -> (bool, String) {
    let pid = child.id();
    let deadline = Instant::now() + cap;
    let status = loop {
        match child.try_wait() {
            Ok(Some(st)) => break Some(st),
            Ok(None) if Instant::now() > deadline => {
                signal(pid, "KILL");
                let _ = child.wait();
                break None;
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => break None,
        }
    };
    let mut stdout = String::new();
    if let Some(mut s) = child.stdout.take() {
        use std::io::Read;
        let _ = s.read_to_string(&mut stdout);
    }
    (status.map(|s| s.success()).unwrap_or(false), stdout)
}

fn parse_counter(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// Run one complete networked scenario; see the module docs for the
/// script and the invariants.
pub fn farm_net_run(cfg: &FarmNetConfig) -> FarmNetOutcome {
    let t0 = Instant::now();
    let mut out = FarmNetOutcome {
        kind: cfg.kind.clone(),
        seed: cfg.seed,
        ..FarmNetOutcome::default()
    };
    let _ = std::fs::remove_dir_all(&cfg.dir);
    if let Err(e) = std::fs::create_dir_all(&cfg.dir) {
        out.violations.push(format!("scratch dir: {e}"));
        return out;
    }

    let common = |extra: &[String]| -> Vec<String> {
        let mut v = vec![
            cfg.dir.display().to_string(),
            cfg.kind.clone(),
            format!("--nonce={}", cfg.nonce),
        ];
        v.extend_from_slice(extra);
        v
    };

    // The server: 3 boards with both injected faults, ceiling 3.
    let server = match spawn(
        &cfg.server_bin,
        &common(&[
            "--boards=3".into(),
            "--faults".into(),
            format!("--max-live={}", cfg.max_live),
            format!("--seed={}", cfg.seed),
            "--idle-exit-ms=1500".into(),
            format!("--max-wall-ms={}", cfg.wall_cap.as_millis()),
        ]),
    ) {
        Ok(c) => c,
        Err(e) => {
            out.violations.push(format!("spawn farm_server: {e}"));
            return out;
        }
    };
    let server_pid = server.id();

    // The victim: submits one long job, then hangs until murdered.
    let victim_seed = mix(cfg.seed, 0xdead, 0, 0, 0);
    let mut victim = match spawn(
        &cfg.client_bin,
        &common(&[
            "--mode=hang".into(),
            format!("--seed={victim_seed}"),
            format!("--n={}", cfg.n),
            "--t-end=16.0".into(),
        ]),
    ) {
        Ok(c) => c,
        Err(e) => {
            out.violations.push(format!("spawn victim: {e}"));
            signal(server_pid, "KILL");
            return out;
        }
    };
    if await_line(&mut victim, "submitted", Duration::from_secs(60)).is_none() {
        out.violations.push("victim never submitted".into());
    }

    // The wire vandals: one dies mid-frame, one deserts mid-handshake.
    for mode in ["torn", "midhello"] {
        match spawn(&cfg.client_bin, &common(&[format!("--mode={mode}")])) {
            Ok(c) => {
                let (ok, _) = reap(c, Duration::from_secs(30));
                if !ok {
                    out.violations.push(format!("{mode} injector failed"));
                }
            }
            Err(e) => out.violations.push(format!("spawn {mode}: {e}")),
        }
    }

    // Two workers race four jobs against what is left of the ceiling.
    let workers: Vec<(u64, Child)> = (0..2u64)
        .filter_map(|w| {
            let wseed = mix(cfg.seed, 0x303c + w, 0, 0, 0);
            match spawn(
                &cfg.client_bin,
                &common(&[
                    "--mode=run".into(),
                    format!("--seed={wseed}"),
                    format!("--jobs={}", cfg.jobs_per_client),
                    format!("--n={}", cfg.n),
                    format!("--t-end={}", cfg.t_end),
                    "--max-attempts=64".into(),
                ]),
            ) {
                Ok(c) => Some((wseed, c)),
                Err(e) => {
                    out.violations.push(format!("spawn worker {w}: {e}"));
                    None
                }
            }
        })
        .collect();

    // Let the workers hit the occupied ceiling, then murder the victim:
    // no Bye, no flush — the server must detach and reclaim.
    std::thread::sleep(Duration::from_millis(300));
    if !signal(victim.id(), "KILL") {
        out.violations.push("could not SIGKILL the victim".into());
    }
    let _ = victim.wait();

    // Collect the workers and check every digest against the oracle.
    for (wseed, child) in workers {
        let (ok, stdout) = reap(child, cfg.wall_cap);
        if !ok {
            out.violations
                .push(format!("worker {wseed:#x} exited nonzero:\n{stdout}"));
        }
        for line in stdout.lines() {
            if line.starts_with("saturated ") {
                out.saturated_denials += 1;
            }
            if !line.starts_with("result ") {
                continue;
            }
            let (Some(j), Some(digest)) = (
                parse_counter(line, "job"),
                line.split_whitespace()
                    .find_map(|tok| tok.strip_prefix("digest="))
                    .and_then(|v| u64::from_str_radix(v, 16).ok()),
            ) else {
                out.violations
                    .push(format!("unparsable result line: {line}"));
                continue;
            };
            out.jobs_done += 1;
            if digest == dedicated_digest(wseed, j, cfg.n, cfg.t_end) {
                out.digests_ok += 1;
            } else {
                out.violations.push(format!(
                    "worker {wseed:#x} job {j}: wire digest {digest:016x} diverges from dedicated run"
                ));
            }
        }
    }

    // The server idles out once the workers say Bye; read its counters.
    let (server_ok, server_out) = reap(server, cfg.wall_cap);
    if !server_ok {
        out.violations
            .push(format!("server exited nonzero:\n{server_out}"));
    }
    for line in server_out.lines() {
        if line.starts_with("served ") {
            out.torn_frames += parse_counter(line, "torn").unwrap_or(0);
            out.client_deaths += parse_counter(line, "deaths").unwrap_or(0);
            out.denials += parse_counter(line, "denials").unwrap_or(0);
        }
        if line.starts_with("farm ") {
            out.detached += parse_counter(line, "detached").unwrap_or(0);
            out.completed += parse_counter(line, "completed").unwrap_or(0);
            out.board_rotations += parse_counter(line, "rotations").unwrap_or(0);
        }
    }

    // The invariants.
    let expect_jobs = (2 * cfg.jobs_per_client) as u64;
    if out.jobs_done != expect_jobs {
        out.violations.push(format!(
            "{} of {expect_jobs} worker jobs fetched",
            out.jobs_done
        ));
    }
    if out.digests_ok != out.jobs_done {
        out.violations.push(format!(
            "{}/{} digests bitwise",
            out.digests_ok, out.jobs_done
        ));
    }
    if out.saturated_denials == 0 {
        out.violations
            .push("no Saturated denial despite 5 jobs on a ceiling of 3".into());
    }
    if out.torn_frames == 0 {
        out.violations.push("torn frame was not classified".into());
    }
    if out.client_deaths == 0 {
        out.violations.push("victim death went unnoticed".into());
    }
    if out.detached == 0 {
        out.violations
            .push("victim session was not detached onto its checkpoint".into());
    }
    if out.completed < expect_jobs {
        out.violations.push(format!(
            "farm completed {} < {expect_jobs} worker jobs",
            out.completed
        ));
    }
    if out.board_rotations < 2 {
        out.violations.push(format!(
            "expected both faulted boards to rotate, saw {}",
            out.board_rotations
        ));
    }

    let _ = std::fs::remove_dir_all(&cfg.dir);
    out.wall_ms = t0.elapsed().as_millis() as u64;
    out
}
