//! Figure 16: calculation time per particle step, 4-node system.
//!
//! Paper: "This figure clearly shows why the value of N for the crossover
//! is rather large.  For 'small' N (N < 10⁴), the calculation time is
//! inversely proportional to the number of particles N.  This is because
//! the communication between hosts, which takes constant time per one
//! blockstep, dominates the total cost in this regime. … An extension of
//! the performance model which includes the synchronization overhead
//! reproduces the measured result quite accurately."

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    let model = PerfModel::default();
    let layout = MachineLayout::Cluster { hosts: 4 };
    let stats = default_stats(Softening::Constant);
    // The "theory without sync" curve shows what the naive model misses.
    let sweep = log_n_sweep(512, 1_000_000, 3);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let n_b = stats.mean_block(n as f64).round().max(1.0) as usize;
            let bt = model.block_time(layout, n, n_b);
            let with_sync = bt.total() / n_b as f64;
            let without_sync = (bt.total() - bt.sync) / n_b as f64;
            vec![
                n.to_string(),
                format!("{:.2}", with_sync * 1e6),
                format!("{:.2}", without_sync * 1e6),
                format!("{:.1}", bt.sync * 1e6),
                format!("{:.0}", n_b),
            ]
        })
        .collect();
    print_table(
        "Fig. 16 — time per particle step [µs] vs N (4-node)",
        &[
            "N",
            "model+sync",
            "model w/o sync",
            "sync/block [µs]",
            "<n_b>",
        ],
        &rows,
    );
    // Verify the 1/N branch quantitatively.
    let t1 = model.time_per_step(layout, 1_000, &stats);
    let t2 = model.time_per_step(layout, 4_000, &stats);
    println!(
        "\nsmall-N scaling: T(1000)/T(4000) = {:.2} (1/N behaviour would give ~{:.1})",
        t1 / t2,
        4f64.powf(1.0 + stats.steps_slope - stats.blocks_slope)
    );
    println!("paper shape: time/step ∝ 1/N for N < 10⁴ (sync-dominated), rising with N beyond.");
}
