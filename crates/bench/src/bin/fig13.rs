//! Figure 13: single-node (1 host, 4 boards) calculation speed vs N.
//!
//! Paper: "Figure 13: The calculation speed of 1-host, 4-board system in
//! Gflops, plotted as a function of the number of particles in the
//! system", for the three softening choices ε = 1/64, ε = 1/[8(2N)^(1/3)]
//! and ε = 4/N.  Expected shape: speed rising with N (larger blocks, more
//! j-work per fixed cost) towards > 1 Tflops at N = 2×10⁵, and "the
//! achieved speed is practically independent of the choice of the
//! softening".

use grape6_bench::{default_stats, log_n_sweep, measured_speed, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    // `--measure` adds a column where the speed comes from a *real*
    // integration (the timing model charged block by block with the actual
    // block sizes) instead of the mean-block workload model — affordable
    // up to a few thousand particles.
    let measure = std::env::args().any(|a| a == "--measure");
    let model = PerfModel::default();
    let layout = MachineLayout::SingleHost;
    let sweep = log_n_sweep(256, 200_000, 4);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for soft in Softening::PAPER_CHOICES {
                let stats = default_stats(soft);
                let s = model.speed(layout, n, &stats);
                row.push(format!("{:.1}", s / 1e9));
            }
            if measure {
                row.push(if n <= 4096 {
                    let s = measured_speed(n, Softening::Constant, 0.125, &model, layout, 42);
                    format!("{:.1}", s / 1e9)
                } else {
                    "-".into()
                });
            }
            row
        })
        .collect();
    let mut headers = vec!["N", "eps=1/64", "eps=1/[8(2N)^1/3]", "eps=4/N"];
    if measure {
        headers.push("real blocks (eps=1/64)");
    }
    print_table("Fig. 13 — single-node speed [Gflops] vs N", &headers, &rows);
    let s = model.speed(layout, 200_000, &default_stats(Softening::Constant));
    println!(
        "\npaper anchor: >1 Tflops at N=2e5 (measured here: {:.2} Tflops)",
        s / 1e12
    );
    println!("paper claim: speed practically independent of softening choice");
}
