//! The chaos soak: seeded fault schedules against the full recovery
//! stack, with a nonzero exit if any invariant breaks.
//!
//! Each seed drives the four scenarios of [`grape6_bench::chaos`]:
//! a supervised run on a faulted machine (dead chip, dead pipeline,
//! stuck j-memory bit, a module death mid-run, transient reduction
//! glitches), a crash-to-disk/restore/continue leg, a corrupted
//! checkpoint that must be refused with a typed error, and a 4-rank
//! cluster losing one rank mid-run.  Every recovered run must land on
//! **bitwise identical** particle state to the healthy reference
//! (the §3.4 block-FP order-independence property made operational),
//! and energy error must stay at the integrator's healthy level.
//!
//! Usage: `chaos_soak [seeds...]` — defaults to six seeds.

use grape6_bench::chaos::{chaos_run, ChaosConfig};
use grape6_bench::print_table;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("seeds must be integers"))
        .collect();
    let seeds = if args.is_empty() {
        vec![11, 22, 33, 44, 55, 66]
    } else {
        args
    };

    let cfg = ChaosConfig::default();
    let mut rows = Vec::new();
    let mut failures: Vec<(u64, Vec<String>)> = Vec::new();
    for &seed in &seeds {
        let out = chaos_run(seed, &cfg);
        rows.push(vec![
            out.seed.to_string(),
            out.blocksteps.to_string(),
            out.units_masked.to_string(),
            out.checkpoints_taken.to_string(),
            out.crash_at.to_string(),
            format!("{:.2e}", out.energy_error),
            format!("r{}@{}", out.rank_killed.0, out.rank_killed.1),
            out.corruption_error.clone(),
            if out.ok() { "ok".into() } else { "FAIL".into() },
        ]);
        if !out.ok() {
            failures.push((seed, out.violations));
        }
    }

    print_table(
        &format!(
            "Chaos soak: {} seeded fault schedules (machine 1x8x4, n={}, {} ranks)",
            seeds.len(),
            cfg.n,
            cfg.ranks
        ),
        &[
            "seed",
            "blocksteps",
            "masked",
            "ckpts",
            "crash@",
            "dE/E",
            "kill",
            "corruption error",
            "verdict",
        ],
        &rows,
    );

    if failures.is_empty() {
        println!(
            "\nall {} seeds survived: bitwise-identical recovery, bounded energy error, \
             every corrupt checkpoint refused",
            seeds.len()
        );
    } else {
        for (seed, violations) in &failures {
            eprintln!("\nseed {seed} violations:");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        std::process::exit(1);
    }
}
