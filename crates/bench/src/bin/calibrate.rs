//! Re-derive the block-statistics power laws from real integrations.
//!
//! The performance model extrapolates two measured power laws (particle
//! steps per time unit, blocksteps per time unit) from laptop-affordable N
//! to the paper's 10⁵–2×10⁶ range, leaning on §4.2's "the number of
//! particles integrated in one blockstep is roughly proportional to N".
//! This binary runs the actual Hermite block-timestep integrator at a
//! ladder of sizes, fits the laws, and prints them next to the defaults
//! baked into `grape6-model` — the provenance trail for every figure.
//!
//! Usage: `calibrate [--full]` (`--full` doubles the ladder and duration).

use grape6_bench::{fit_block_stats, print_table};
use nbody_core::softening::Softening;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: Vec<usize> = if full {
        vec![256, 512, 1024, 2048, 4096, 8192]
    } else {
        vec![256, 512, 1024, 2048]
    };
    let duration = if full { 0.25 } else { 0.125 };

    for soft in Softening::PAPER_CHOICES {
        let (fitted, measured) = fit_block_stats(&sizes, soft, duration, 1.0);
        let default = grape6_bench::default_stats(soft);
        let rows: Vec<Vec<String>> = measured
            .iter()
            .map(|m| {
                vec![
                    m.n.to_string(),
                    format!("{:.0}", m.steps_per_unit),
                    format!("{:.0}", m.blocks_per_unit),
                    format!("{:.1}", m.mean_block),
                    format!("{:.1}", default.mean_block(m.n as f64)),
                ]
            })
            .collect();
        print_table(
            &format!("measured block statistics, {}", soft.label()),
            &["N", "steps/unit", "blocks/unit", "<n_b>", "model <n_b>"],
            &rows,
        );
        println!("\nfitted power laws (anchor N = 1024):");
        println!(
            "  steps/particle: measured {:.1}·(N/1024)^{:.2}   model default {:.1}·(N/1024)^{:.2}",
            fitted.steps_per_particle_ref,
            fitted.steps_slope,
            default.steps_per_particle_ref,
            default.steps_slope
        );
        println!(
            "  blocks/unit:    measured {:.0}·(N/1024)^{:.2}   model default {:.0}·(N/1024)^{:.2}",
            fitted.blocks_ref, fitted.blocks_slope, default.blocks_ref, default.blocks_slope
        );
    }
    println!("\nNOTE: the model defaults are the fit of a --full run of this binary;");
    println!("re-run with --full to reproduce them (takes a few minutes).");
}
