//! Ablation: shared-memory (GRAPE-4-style) vs local-memory (GRAPE-6) design.
//!
//! §3.4's central design argument: scaling the GRAPE-4 shared-memory
//! architecture to GRAPE-6 speeds would have pushed the number of
//! i-particles computed in parallel from ~100 to ~1000+ — "This number is
//! too large, if we want to obtain a reasonable performance for
//! simulations of star clusters with small, high-density cores."  Giving
//! every chip its own j-memory keeps the i-parallelism at 48 while the
//! j-work is divided.
//!
//! This study makes the argument quantitative with the cycle model: for a
//! host's worth of silicon (128 chips), compare
//!
//! * **local-j** (GRAPE-6): i-parallelism 48, each chip streams N/128;
//! * **shared-j** (GRAPE-4 scaled): i-parallelism 48×128 = 6144, every
//!   chip streams all N.
//!
//! Both have identical peak throughput; the difference is pure efficiency
//! versus block size.

use grape6_bench::print_table;
use grape6_model::GrapeTiming;

/// Pipeline time to serve a block of `n_b` i-particles (seconds).
fn block_grape_time(g: &GrapeTiming, i_parallel: usize, j_per_chip: usize, n_b: usize) -> f64 {
    let passes = (n_b as f64 / i_parallel as f64).ceil().max(1.0);
    passes * (g.pipeline_depth + g.vmp_ways as f64 * j_per_chip as f64) / g.clock_hz
}

fn main() {
    let g = GrapeTiming::paper_host();
    let n = 100_000usize;
    let peak_pairs_per_sec =
        g.chips_per_host as f64 * (g.i_parallel / g.vmp_ways) as f64 * g.clock_hz;
    let rows: Vec<Vec<String>> = [1usize, 8, 48, 96, 192, 384, 768, 1536, 6144]
        .iter()
        .map(|&n_b| {
            let pairs = (n_b * n) as f64;
            // GRAPE-6: j divided over 128 chips.
            let t_local = block_grape_time(&g, g.i_parallel, n / g.chips_per_host, n_b);
            // GRAPE-4 scaled: every chip holds all N, i-parallelism 6144.
            let wide = g.i_parallel * g.chips_per_host;
            let t_shared = block_grape_time(&g, wide, n, n_b);
            let eff = |t: f64| pairs / (t * peak_pairs_per_sec) * 100.0;
            vec![
                n_b.to_string(),
                format!("{:.1}", t_local * 1e6),
                format!("{:.0}%", eff(t_local)),
                format!("{:.1}", t_shared * 1e6),
                format!("{:.0}%", eff(t_shared)),
            ]
        })
        .collect();
    print_table(
        &format!("local-j (GRAPE-6) vs shared-j (GRAPE-4 scaled), N = {n}"),
        &[
            "block size",
            "local-j t [µs]",
            "local-j eff",
            "shared-j t [µs]",
            "shared-j eff",
        ],
        &rows,
    );
    println!("\nreading: with realistic block sizes (tens to hundreds; the paper keeps the");
    println!("machine's parallelism 'less than 400' on purpose), the shared-j design wastes");
    println!("nearly all of its pipelines; the two designs only meet for blocks ≥ 6144.");
}
