//! The fig. 18 crossover under the three network schedules.
//!
//! The paper's fig. 17/18 analysis pins the multi-host crossover — the N
//! above which adding nodes pays — on per-blockstep network cost: for
//! small N "the main bottleneck is again the synchronization time".  The
//! coalesced wave (one message per partner per stage instead of three
//! collectives) and its split-phase overlapped variant attack exactly
//! that term, so they must move the crossover down.
//!
//! This bin measures it both ways:
//!
//! * **measured sweep** — real replicated Plummer integrations on the
//!   discrete-event fabric, 1→16 nodes × 3 schedules, six-term
//!   breakdowns from recorded virtual-time spans;
//! * **model crossover** — the analytic `speed_net` sweep locating the N
//!   where the 16-node (4-cluster) layout overtakes the 4-node cluster,
//!   per schedule;
//! * **bitwise gate** — the same chained wave sequence digested over the
//!   virtual fabric (back-to-back and split-phase) and over real TCP and
//!   Unix-socket meshes: all digests must be identical bit for bit.
//!
//! Output: `BENCH_crossover.json`.  Exit 1 if the coalesced+overlapped
//! schedule fails to cut the 4-node network share, or any digest
//! diverges.
//!
//! Usage: `crossover_bench [N] [T_END]` (defaults 256, 0.0625 on the
//! `test_small` machine).

use grape6_bench::breakdown::{measure_breakdown_net, timing_for, BreakdownRun};
use grape6_bench::wavecheck::{stream_wave_digests, virtual_wave_digests};
use grape6_bench::{default_stats, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use grape6_net::transport::StreamKind;
use grape6_system::machine::MachineConfig;
use grape6_trace::NetSchedule;
use nbody_core::softening::Softening;

const SCHEDS: [NetSchedule; 3] = [
    NetSchedule::Sequential,
    NetSchedule::Coalesced,
    NetSchedule::CoalescedOverlapped,
];

fn net_share(r: &BreakdownRun) -> f64 {
    (r.measured.sync + r.measured.exchange) / r.measured.total()
}

/// Analytic N at which the 16-node (4-cluster) layout overtakes the
/// 4-node cluster under `sched` (the fig. 17/18 crossover).
fn model_crossover(sched: NetSchedule) -> Option<usize> {
    let m = PerfModel::default();
    let stats = default_stats(Softening::Constant);
    let four = MachineLayout::Cluster { hosts: 4 };
    let sixteen = MachineLayout::MultiCluster {
        clusters: 4,
        hosts_per_cluster: 4,
    };
    let mut n = 2_000usize;
    while n <= 4 << 20 {
        if m.speed_net(sixteen, n, &stats, sched) > m.speed_net(four, n, &stats, sched) {
            return Some(n);
        }
        n = (n as f64 * 1.1) as usize;
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(256);
    let t_end: f64 = args
        .next()
        .map(|a| a.parse().expect("T_END must be a number"))
        .unwrap_or(0.0625);

    let machine = MachineConfig::test_small();
    let model = PerfModel {
        grape: timing_for(&machine),
        ..PerfModel::default()
    };
    let layouts: [(usize, MachineLayout); 5] = [
        (1, MachineLayout::SingleHost),
        (2, MachineLayout::Cluster { hosts: 2 }),
        (4, MachineLayout::Cluster { hosts: 4 }),
        (
            8,
            MachineLayout::MultiCluster {
                clusters: 2,
                hosts_per_cluster: 4,
            },
        ),
        (
            16,
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
        ),
    ];

    // Measured sweep: 1→16 nodes × 3 schedules.
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    let mut four_node = [0.0f64; 3];
    for &(nodes, layout) in &layouts {
        for (si, &sched) in SCHEDS.iter().enumerate() {
            let run = measure_breakdown_net(&model, &machine, layout, n, t_end, 2003, sched);
            let share = net_share(&run);
            let step_us = run.measured.total() / run.particle_steps as f64 * 1e6;
            if nodes == 4 {
                four_node[si] = share;
            }
            rows.push(vec![
                nodes.to_string(),
                sched.name().into(),
                format!("{:.4e}", run.measured.sync),
                format!("{:.4e}", run.measured.exchange),
                format!("{:.4e}", run.measured.total()),
                format!("{:.3}", share),
                format!("{:.2}", step_us),
            ]);
            sweep_json.push(format!(
                "{{\"nodes\":{nodes},\"layout\":\"{}\",\"schedule\":\"{}\",\
                 \"blocksteps\":{},\"particle_steps\":{},\
                 \"sync\":{:e},\"exchange\":{:e},\"total\":{:e},\
                 \"net_share\":{:e},\"step_us\":{:e}}}",
                run.layout.label(),
                sched.name(),
                run.blocksteps,
                run.particle_steps,
                run.measured.sync,
                run.measured.exchange,
                run.measured.total(),
                share,
                step_us,
            ));
        }
    }
    print_table(
        &format!("Measured network cost, 1→16 nodes × schedule (N = {n})"),
        &[
            "nodes",
            "schedule",
            "sync [s]",
            "exchange [s]",
            "total [s]",
            "net share",
            "µs/step",
        ],
        &rows,
    );

    // Bitwise gate: same chained waves, four backends, one digest.
    let dir = std::env::temp_dir().join(format!("g6-crossover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d_virtual = virtual_wave_digests(4, 8, 3, false);
    let d_split = virtual_wave_digests(4, 8, 3, true);
    let d_tcp = stream_wave_digests(4, 8, 3, StreamKind::Tcp, &dir.join("tcp"));
    let d_uds = stream_wave_digests(4, 8, 3, StreamKind::Uds, &dir.join("uds"));
    std::fs::remove_dir_all(&dir).ok();
    let reference = d_virtual[0];
    let bitwise_ok = [&d_virtual, &d_split, &d_tcp, &d_uds]
        .iter()
        .all(|d| d.iter().all(|&h| h == reference));

    // Model crossover per schedule.
    let crossings: Vec<Option<usize>> = SCHEDS.iter().map(|&s| model_crossover(s)).collect();

    println!(
        "\n4-node net share: sequential {:.3}, coalesced {:.3}, coalesced+overlapped {:.3}",
        four_node[0], four_node[1], four_node[2]
    );
    println!(
        "model 16-vs-4-node crossover N: sequential {:?}, coalesced {:?}, overlapped {:?}",
        crossings[0], crossings[1], crossings[2]
    );
    println!(
        "bitwise (virtual / split-phase / tcp / uds): {} (digest {:016x})",
        if bitwise_ok { "identical" } else { "DIVERGED" },
        reference
    );

    let crossing_json: Vec<String> = SCHEDS
        .iter()
        .zip(&crossings)
        .map(|(s, c)| {
            format!(
                "\"{}\":{}",
                s.name(),
                c.map_or("null".into(), |v| v.to_string())
            )
        })
        .collect();
    let payload = format!(
        "{{\"n\":{n},\"t_end\":{t_end},\"sweep\":[{}],\
         \"four_node\":{{\"sequential_share\":{:e},\"coalesced_share\":{:e},\
         \"coalesced_overlapped_share\":{:e}}},\
         \"bitwise\":{{\"identical\":{},\"digest\":\"{:016x}\"}},\
         \"model_crossover_n\":{{{}}}}}",
        sweep_json.join(","),
        four_node[0],
        four_node[1],
        four_node[2],
        bitwise_ok,
        reference,
        crossing_json.join(","),
    );
    std::fs::write("BENCH_crossover.json", &payload).expect("write BENCH_crossover.json");
    println!("wrote BENCH_crossover.json");

    if !bitwise_ok {
        eprintln!("ERROR: wave digests diverged across schedules/transports");
        std::process::exit(1);
    }
    if four_node[2] >= four_node[0] {
        eprintln!(
            "ERROR: coalesced+overlapped did not cut the 4-node network share \
             ({:.3} vs sequential {:.3})",
            four_node[2], four_node[0]
        );
        std::process::exit(1);
    }
}
