//! Overlap/parallelism schedule comparison — `BENCH_overlap.json`.
//!
//! Runs the same Plummer integration three times — serial board walk with
//! blocking blocksteps, rayon-parallel walk with blocking blocksteps, and
//! rayon-parallel walk with split-phase overlapped blocksteps — verifies
//! the three land on bitwise-identical particle state (§3.4), and reports
//! real wall-clock, measured virtual wall, and the analytic
//! `BlockTime::wall(mode)` prediction per schedule.
//!
//! Speedups are **reported, not asserted**: on a single-core host (or
//! under the offline sequential rayon stub) the parallel walk cannot win
//! real time.  The virtual-time overlap gain is host-independent — it is
//! the simulated hardware schedule — and is what the acceptance gate in
//! `tests/overlap_bitwise.rs` checks.
//!
//! Usage: `overlap_bench [N] [BLOCKSTEPS] [BOARDS]`
//! (defaults 192 / 32 / 4 — CI-sized; the paper-scale point is
//! `overlap_bench 8192 100 4` on a multi-core host).
//!
//! Output: prints a table and writes `BENCH_overlap.json` to the current
//! directory.

use grape6_bench::overlap::run_overlap_bench;
use grape6_bench::print_table;
use grape6_system::machine::MachineConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(192);
    let blocksteps: usize = args
        .next()
        .map(|a| a.parse().expect("BLOCKSTEPS must be an integer"))
        .unwrap_or(32);
    let boards: usize = args
        .next()
        .map(|a| a.parse().expect("BOARDS must be an integer"))
        .unwrap_or(4);

    // A scaled multi-board machine (big enough that the board walk has
    // real width, small enough that the bit-level simulator stays
    // CI-affordable).  Capacity scales with the board count.
    let machine = MachineConfig::builder()
        .boards(boards)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity((n.div_ceil(4 * boards).max(64)).next_power_of_two())
        .build()
        .expect("valid bench machine");

    let report = run_overlap_bench(&machine, n, blocksteps, 2003);

    let row = |s: &grape6_bench::overlap::ScheduleResult| {
        vec![
            s.label.to_string(),
            format!("{:.3}", s.wall_seconds),
            format!("{:.4e}", s.virtual_wall),
            format!("{:.4e}", s.model_wall),
            format!("{:.4e}", s.measured.total()),
            format!("{:016x}", s.state_hash),
        ]
    };
    print_table(
        &format!("Overlap bench — N={n}, {boards} boards, {blocksteps} blocksteps"),
        &[
            "schedule",
            "wall [s]",
            "virtual wall [s]",
            "model wall [s]",
            "term sum [s]",
            "state hash",
        ],
        &[
            row(&report.serial),
            row(&report.parallel),
            row(&report.overlapped),
        ],
    );
    println!(
        "\nbitwise identical: {}   parallel speedup: {:.2}x   overlap speedup: {:.2}x   \
         virtual overlap gain: {:.3}x",
        report.bitwise_identical(),
        report.parallel_speedup(),
        report.overlap_speedup(),
        report.virtual_overlap_gain(),
    );
    println!(
        "(real speedups need a multi-core host with real rayon; the virtual gain is \
         the simulated hardware schedule and holds everywhere)"
    );

    if !report.bitwise_identical() {
        eprintln!("ERROR: schedules diverged bitwise — §3.4 reproducibility violated");
        std::process::exit(1);
    }

    std::fs::write("BENCH_overlap.json", report.to_json() + "\n")
        .expect("write BENCH_overlap.json");
    println!("\nwrote BENCH_overlap.json");
}
