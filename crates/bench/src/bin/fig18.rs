//! Figure 18: time per particle step, 16-node (4-cluster) system.
//!
//! Paper: "Theoretical estimate took into account the fact that hosts on
//! different cluster need to exchange the data of particles.  Here, again,
//! the calculation time per one particle step is inversely proportional to
//! N, for N < 10⁵.  This means that the main bottleneck is again the
//! synchronization time."

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    let model = PerfModel::default();
    let layout = MachineLayout::MultiCluster {
        clusters: 4,
        hosts_per_cluster: 4,
    };
    let stats = default_stats(Softening::Constant);
    let sweep = log_n_sweep(1_000, 2_000_000, 3);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let n_b = stats.mean_block(n as f64).round().max(1.0) as usize;
            let bt = model.block_time(layout, n, n_b);
            vec![
                n.to_string(),
                format!("{:.2}", bt.total() / n_b as f64 * 1e6),
                format!("{:.1}", bt.sync * 1e6),
                format!("{:.1}", bt.exchange * 1e6),
                format!("{:.1}", bt.grape * 1e6),
                format!("{:.0}", n_b),
            ]
        })
        .collect();
    print_table(
        "Fig. 18 — time per particle step [µs] vs N (16-node, 4-cluster)",
        &[
            "N",
            "T/step",
            "sync/block",
            "exchange/block",
            "grape/block",
            "<n_b>",
        ],
        &rows,
    );
    let t1 = model.time_per_step(layout, 4_000, &stats);
    let t2 = model.time_per_step(layout, 16_000, &stats);
    println!(
        "\nsmall-N scaling: T(4k)/T(16k) = {:.2} (sync-dominated 1/N regime)",
        t1 / t2
    );
    println!("paper shape: 1/N branch up to N ≈ 10⁵, synchronization is the bottleneck.");
}
