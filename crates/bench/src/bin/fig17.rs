//! Figure 17: multi-cluster speed vs N.
//!
//! Paper: "Solid, dashed and dotted curves show the results for 4, 8 and
//! 16-node (1, 2, and 4-cluster) systems… The crossover point at which
//! multi-cluster systems becomes faster than single-cluster system is
//! rather high (N ≈ 10⁵), and even for N = 10⁶, the speedup factors
//! achieved by multi-cluster systems are significantly smaller than the
//! ideal speedup."  Constant softening for all runs.

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    let model = PerfModel::default();
    let stats = default_stats(Softening::Constant);
    let layouts = [
        MachineLayout::Cluster { hosts: 4 },
        MachineLayout::MultiCluster {
            clusters: 2,
            hosts_per_cluster: 4,
        },
        MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        },
    ];
    let sweep = log_n_sweep(4_000, 2_000_000, 3);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for l in layouts {
                row.push(format!("{:.3}", model.speed(l, n, &stats) / 1e12));
            }
            row
        })
        .collect();
    print_table(
        "Fig. 17 — speed [Tflops] vs N (1/2/4 clusters, constant softening)",
        &["N", "4-node", "8-node", "16-node"],
        &rows,
    );
    // Crossover and speedup-at-1e6 anchors.
    let mut crossover = None;
    let mut n = 10_000usize;
    while n <= 4 << 20 {
        if model.speed(layouts[2], n, &stats) > model.speed(layouts[0], n, &stats) {
            crossover = Some(n);
            break;
        }
        n = (n as f64 * 1.05) as usize + 1;
    }
    let s1 = model.speed(layouts[0], 1_000_000, &stats);
    let s4 = model.speed(layouts[2], 1_000_000, &stats);
    println!(
        "\n16-node vs 4-node crossover at N ≈ {} (paper: ≈ 10⁵)",
        crossover.map_or("∞".into(), |v| v.to_string())
    );
    println!(
        "speedup(16-node / 4-node) at N = 10⁶: {:.2}× (ideal 4×; paper: significantly below ideal)",
        s4 / s1
    );
}
