//! A farm tenant as an OS process: submit over the wire, fetch bits.
//!
//! The counterpart to `farm_server` and the per-process half of the
//! `farm_net_soak` gate.  Four modes:
//!
//! * `--mode=run` (default) — connect, submit `--jobs` Plummer jobs
//!   through the deterministic backoff ladder (each typed `Saturated`
//!   denial prints a `saturated …` line), wait for every result, and
//!   print one `result job=<j> session=<sid> digest=<16 hex>` line per
//!   job.  The digest is `grape6_farm::particles_digest` of the fetched
//!   particles — comparable bit for bit with an in-process dedicated
//!   run of the same IC (see `grape6_bench::farm_net::job_ic`).
//! * `--mode=hang` — connect, submit one long job, print
//!   `submitted session=<sid>`, then sleep forever: the harness's
//!   SIGKILL target.  The server must detach the session and reclaim
//!   the board.
//! * `--mode=torn` — fault injector: dial, then die mid-frame (length
//!   prefix promising 80 bytes, 12 delivered).  The server must count a
//!   torn frame, never panic.
//! * `--mode=midhello` — dial the published address and hang up before
//!   saying anything at all.
//!
//! Usage:
//!
//! ```text
//! farm_client <dir> <tcp|uds> [--nonce=N] [--mode=run|hang|torn|midhello]
//!             [--jobs=N] [--n=N] [--t-end=F] [--seed=N] [--weight=N]
//!             [--max-attempts=N] [--wait-ms=N]
//! ```
//!
//! Exit codes: 0 ok, 1 a submit/fetch failed or a job timed out, 2 bad
//! usage, 3 rendezvous/handshake failure.

use std::path::PathBuf;
use std::time::Duration;

use grape6_bench::farm_net::job_ic;
use grape6_farm::{particles_digest, DenyReason, FarmClient, FarmClientError, Job, TenantSpec};
use grape6_net::transport::{dial_service, wait_for_service_addr, StreamConfig, StreamKind};

fn usage() -> ! {
    eprintln!(
        "usage: farm_client <dir> <tcp|uds> [--nonce=N] [--mode=run|hang|torn|midhello] \
         [--jobs=N] [--n=N] [--t-end=F] [--seed=N] [--weight=N] [--max-attempts=N] \
         [--wait-ms=N]"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")))
        .map(|v| {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| usage())
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let dir = PathBuf::from(&args[0]);
    let kind = match args[1].as_str() {
        "tcp" => StreamKind::Tcp,
        "uds" => StreamKind::Uds,
        _ => usage(),
    };
    let nonce = flag(&args, "nonce").unwrap_or(0);
    let mode = args
        .iter()
        .find_map(|a| a.strip_prefix("--mode="))
        .unwrap_or("run");
    let seed = flag(&args, "seed").unwrap_or(1);
    let n = flag(&args, "n").unwrap_or(48) as usize;
    let t_end = args
        .iter()
        .find_map(|a| a.strip_prefix("--t-end="))
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0.0625f64);
    let jobs = flag(&args, "jobs").unwrap_or(2);
    let wait = Duration::from_millis(flag(&args, "wait-ms").unwrap_or(120_000));

    // The vandal modes speak raw transport, below the typed client.
    if mode == "torn" || mode == "midhello" {
        let stream = StreamConfig {
            nonce,
            ..StreamConfig::default()
        };
        let addr = wait_for_service_addr(&dir, "farm", &stream).unwrap_or_else(|e| {
            eprintln!("farm_client: rendezvous failed: {e}");
            std::process::exit(3);
        });
        let mut conn = dial_service(&addr, kind, &stream).unwrap_or_else(|e| {
            eprintln!("farm_client: dial failed: {e}");
            std::process::exit(3);
        });
        if mode == "torn" {
            let mut partial = (80u64).to_le_bytes().to_vec();
            partial.extend_from_slice(&[0xAB; 12]);
            if conn.send_raw(&partial).is_err() {
                eprintln!("farm_client: torn injection write failed");
                std::process::exit(1);
            }
            println!("torn sent=12 promised=80");
        } else {
            println!("midhello");
        }
        return; // drop the socket mid-protocol — that IS the fault
    }

    let mut client = FarmClient::builder(&dir)
        .kind(kind)
        .nonce(nonce)
        .seed(seed)
        .tenant(TenantSpec::new(flag(&args, "weight").unwrap_or(1) as u32))
        .connect()
        .unwrap_or_else(|e| {
            eprintln!("farm_client: connect failed: {e}");
            std::process::exit(3);
        });

    if mode == "hang" {
        let job = Job::builder(job_ic(seed, 0, n))
            .t_end(t_end)
            .label(format!("hang {seed:#x}"))
            .build()
            .expect("hang job is valid");
        match client.submit(&job) {
            Ok(sid) => {
                println!("submitted session={sid}");
                // Make sure the harness sees the line before the murder.
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("farm_client: hang submit failed: {e}");
                std::process::exit(1);
            }
        }
        loop {
            std::thread::sleep(Duration::from_secs(600));
        }
    }

    // run mode: submit everything first (so the ceiling is actually
    // contested), then wait for each result.
    let max_attempts = flag(&args, "max-attempts").unwrap_or(64) as u32;
    let mut tickets = Vec::new();
    for j in 0..jobs {
        let job = Job::builder(job_ic(seed, j, n))
            .t_end(t_end)
            .label(format!("net {seed:#x} j{j}"))
            .build()
            .expect("worker jobs are valid");
        let mut attempt = 0u32;
        let sid = loop {
            attempt += 1;
            match client.submit(&job) {
                Ok(sid) => break sid,
                Err(FarmClientError::Denied(DenyReason::Saturated { retry_after }))
                    if attempt < max_attempts =>
                {
                    println!("saturated job={j} attempt={attempt} hint={retry_after}");
                    std::thread::sleep(client.backoff_after(&retry_after, attempt));
                }
                Err(e) => {
                    eprintln!("farm_client: submit job {j} failed: {e}");
                    std::process::exit(1);
                }
            }
        };
        println!("ticket job={j} session={sid}");
        tickets.push((j, sid));
    }
    for (j, sid) in tickets {
        match client.wait_result(sid, wait) {
            Ok(res) => {
                println!(
                    "result job={j} session={sid} digest={:016x}",
                    particles_digest(&res.particles)
                );
            }
            Err(e) => {
                eprintln!("farm_client: job {j} ({sid}) failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = client.bye() {
        eprintln!("farm_client: bye failed: {e}");
        std::process::exit(1);
    }
    println!("done jobs={jobs}");
}
