//! Ablation: plain Hermite vs the Ahmad–Cohen neighbour scheme.
//!
//! The paper's integrator reference \[10\] is "On a Hermite integrator with
//! Ahmad–Cohen scheme" — the production codes split the force so the
//! expensive full-N (GRAPE) evaluation happens only on the long *regular*
//! timestep while cheap neighbour sums run on the short *irregular* one.
//! This study measures what that buys on real integrations: the reduction
//! in full-force (engine) evaluations at matched energy accuracy.

use grape6_bench::print_table;
use grape6_core::neighbor::{AcConfig, AcHermiteIntegrator};
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use nbody_core::diagnostics::energy;
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let duration = 0.25;
    let rows: Vec<Vec<String>> = [128usize, 256, 512, 1024]
        .iter()
        .map(|&n| {
            let set = plummer_model(n, &mut StdRng::seed_from_u64(n as u64 + 9));
            let eps2 = Softening::Constant.epsilon2(n);
            let e0 = energy(&set, eps2);

            let mut plain = HermiteIntegrator::new(
                DirectEngine::new(n),
                set.clone(),
                IntegratorConfig::default(),
            );
            plain.run_until(duration);
            let e_plain = energy(&plain.synchronized_snapshot(), eps2);
            let err_plain = ((e_plain.total() - e0.total()) / e0.total()).abs();
            let plain_full = plain.stats().particle_steps;

            let mut ac = AcHermiteIntegrator::new(DirectEngine::new(n), set, AcConfig::default());
            ac.run_until(duration);
            let e_ac = energy(&ac.synchronized_snapshot(), eps2);
            let err_ac = ((e_ac.total() - e0.total()) / e0.total()).abs();

            vec![
                n.to_string(),
                plain_full.to_string(),
                ac.regular_evals().to_string(),
                format!("{:.1}x", plain_full as f64 / ac.regular_evals() as f64),
                format!("{:.1}", ac.mean_neighbours()),
                format!("{err_plain:.1e}"),
                format!("{err_ac:.1e}"),
            ]
        })
        .collect();
    print_table(
        "plain Hermite vs Ahmad-Cohen (Plummer, 0.25 time units)",
        &[
            "N",
            "full evals (plain)",
            "full evals (AC)",
            "savings",
            "<n_nb>",
            "|dE/E| plain",
            "|dE/E| AC",
        ],
        &rows,
    );
    println!("\nreading: every saved full evaluation is an O(N) GRAPE sum the neighbour");
    println!("scheme replaced with an O(n_nb) host sum — on the real machine this directly");
    println!("reduces pipeline and host-interface traffic (Makino & Aarseth 1992).");
}
