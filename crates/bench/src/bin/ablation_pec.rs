//! Ablation: corrector iterations — P(EC) vs P(EC)².
//!
//! The paper's benchmark uses the standard single-corrector Hermite cycle;
//! a second corrector pass costs one extra GRAPE call per step and moves
//! the scheme towards the implicit Hermite solution.  This study maps the
//! accuracy/cost frontier on real integrations: at each η, the energy
//! error and the pairwise-interaction count for one and two EC passes.

use grape6_bench::print_table;
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use nbody_core::diagnostics::energy;
use nbody_core::force::{DirectEngine, ForceEngine};
use nbody_core::ic::plummer::plummer_model;
use nbody_core::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let duration = 0.5;
    let mut rows = Vec::new();
    for eta in [0.005f64, 0.01, 0.02, 0.04] {
        let mut cells = vec![format!("{eta}")];
        for pec in [1usize, 2] {
            let set = plummer_model(n, &mut StdRng::seed_from_u64(77));
            let eps2 = Softening::Constant.epsilon2(n);
            let e0 = energy(&set, eps2);
            let cfg = IntegratorConfig {
                eta,
                eta_start: eta / 4.0,
                pec_iterations: pec,
                ..Default::default()
            };
            let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
            it.run_until(duration);
            let e1 = energy(&it.synchronized_snapshot(), eps2);
            let err = ((e1.total() - e0.total()) / e0.total()).abs();
            cells.push(format!("{err:.1e}"));
            cells.push(format!("{:.2e}", it.engine().interactions() as f64));
        }
        rows.push(cells);
    }
    print_table(
        &format!("P(EC) vs P(EC)^2, Plummer N = {n}, {duration} time units"),
        &[
            "eta",
            "|dE/E| PEC",
            "pairs PEC",
            "|dE/E| PEC2",
            "pairs PEC2",
        ],
        &rows,
    );
    println!("\nreading: the second corrector pass doubles the GRAPE work per step; whether");
    println!("it pays depends on η — at loose η it buys accuracy, at tight η the truncation");
    println!("error is already predictor-limited (the paper's production codes used PEC).");
}
