//! Figure 15: multi-node (single-cluster) speed vs N.
//!
//! Paper: "Solid, dashed and dotted curves show the results for 1, 2 and
//! 4-node systems… The left panel shows the result for constant softening,
//! and the right panel ε = 4/N.  … the two-host system becomes faster than
//! the single-host system only at N ≈ 3000, and for ε = 4/N, this
//! crossover point moves to around N ≈ 3×10⁴."

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use grape6_model::BlockStatsModel;
use nbody_core::softening::Softening;

fn crossover(
    model: &PerfModel,
    a: MachineLayout,
    b: MachineLayout,
    stats: &BlockStatsModel,
) -> Option<usize> {
    let mut n = 256usize;
    while n <= 4 << 20 {
        if model.speed(b, n, stats) > model.speed(a, n, stats) {
            return Some(n);
        }
        n = ((n as f64) * 1.08) as usize + 1;
    }
    None
}

fn main() {
    let model = PerfModel::default();
    let layouts = [
        MachineLayout::SingleHost,
        MachineLayout::Cluster { hosts: 2 },
        MachineLayout::Cluster { hosts: 4 },
    ];
    for (panel, soft) in [
        ("left panel: eps = 1/64", Softening::Constant),
        ("right panel: eps = 4/N", Softening::CloseEncounter),
    ] {
        let stats = default_stats(soft);
        let sweep = log_n_sweep(512, 1_000_000, 3);
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|&n| {
                let mut row = vec![n.to_string()];
                for l in layouts {
                    row.push(format!("{:.1}", model.speed(l, n, &stats) / 1e9));
                }
                row
            })
            .collect();
        print_table(
            &format!("Fig. 15 ({panel}) — speed [Gflops] vs N"),
            &["N", "1-node", "2-node", "4-node"],
            &rows,
        );
        let c2 = crossover(&model, layouts[0], layouts[1], &stats);
        let c4 = crossover(&model, layouts[0], layouts[2], &stats);
        println!(
            "\ncrossover vs 1-node: 2-node at N ≈ {}, 4-node at N ≈ {}",
            c2.map_or("∞".into(), |v| v.to_string()),
            c4.map_or("∞".into(), |v| v.to_string())
        );
    }
    println!("\npaper anchors: constant-ε 2-node crossover ≈ 3×10³; ε=4/N crossover ≈ 3×10⁴.");
}
