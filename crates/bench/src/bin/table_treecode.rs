//! §5's treecode comparison, in particle-steps per second.
//!
//! Paper: "the speed achieved with GRAPE-6 is around 3.3×10⁵ particle
//! steps per second"; Gadget on 16 T3E processors reached "around 10⁴
//! steps/sec, or around 3% of the speed achieved with our calculations";
//! Warren et al.'s shared-timestep treecode on 6800-processor ASCI-Red did
//! 2.55×10⁶ particle-steps/s, "around 7 times faster than GRAPE-6.
//! However, this is for shared timestep.  If we use shared timestep, we
//! need at least 100 times more particle steps, since the ratio between
//! the smallest timestep and (harmonic) mean timestep is larger than 100."
//!
//! This binary measures, with this workspace's own codes:
//!
//! 1. the GRAPE-6 (model) particle-steps/s at the §5 workload scale;
//! 2. our Barnes–Hut treecode's particle-steps/s on this machine;
//! 3. the **shared-vs-individual step-count ratio** from a real
//!    integration's timestep distribution — the paper's "factor > 100".

use std::time::Instant;

use bh_tree::integrate::LeapfrogIntegrator;
use grape6_bench::{default_stats, print_table};
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // (1) GRAPE-6 model at the application scale.
    let model = PerfModel::tuned();
    let layout = MachineLayout::MultiCluster {
        clusters: 4,
        hosts_per_cluster: 4,
    };
    let stats = default_stats(Softening::Constant);
    let n_app = 1_800_000;
    let grape_steps_per_sec = 1.0 / model.time_per_step(layout, n_app, &stats);

    // (2) Our treecode, measured on this machine (wall clock, honestly
    // labelled as such — the paper's comparators were measured on theirs).
    let n_tree = 30_000;
    let set = plummer_model(n_tree, &mut StdRng::seed_from_u64(55));
    let mut lf = LeapfrogIntegrator::new(set, 0.6, 1e-4, 1.0 / 64.0);
    let wall = Instant::now();
    for _ in 0..8 {
        lf.step();
    }
    let tree_steps_per_sec = lf.particle_steps() as f64 / wall.elapsed().as_secs_f64();

    // (3) Shared-vs-individual ratio from a real Hermite run's dt range.
    let n_h = 2_048;
    let set = plummer_model(n_h, &mut StdRng::seed_from_u64(56));
    let mut it = HermiteIntegrator::new(DirectEngine::new(n_h), set, IntegratorConfig::default());
    it.run_until(0.25);
    let st = it.stats();
    // Harmonic-mean step over the particles vs the global minimum.
    let p = it.particles();
    let harm: f64 = p.dt.len() as f64 / p.dt.iter().map(|&d| 1.0 / d).sum::<f64>();
    let ratio = harm / st.dt_min;

    let rows = vec![
        vec![
            "GRAPE-6 (model, 16-node, N=1.8M)".to_string(),
            format!("{:.2e}", grape_steps_per_sec),
            "virtual time".into(),
        ],
        vec![
            format!("our BH treecode (θ=0.6, N={n_tree}, shared dt)"),
            format!("{:.2e}", tree_steps_per_sec),
            "this machine, wall clock".into(),
        ],
    ];
    print_table(
        "§5 — particle-steps per second",
        &["code", "steps/s", "measured on"],
        &rows,
    );
    println!("\npaper anchors: GRAPE-6 ≈ 3.3×10⁵ steps/s; Gadget/16-T3E ≈ 10⁴ (≈3%);");
    println!(
        "Warren et al. shared-dt ASCI-Red ≈ 2.55×10⁶ (≈7× GRAPE-6 before step-count correction)."
    );
    println!(
        "\nshared-vs-individual cost factor (measured, N={n_h}): harmonic<dt>/dt_min = {ratio:.0}"
    );
    println!("paper: \"the ratio between the smallest timestep and (harmonic) mean timestep is");
    println!("larger than 100\" — so a shared-timestep code pays ≳100× more particle steps.");
}
