//! The §3 generation gap, measured: GRAPE-4 vs GRAPE-6.
//!
//! "The GRAPE-6 chip integrates 6 pipelines operating at 90 MHz, offering
//! the speed of 30.8 Gflops, and the entire GRAPE-6 system with 2048 chips
//! offers the speed of 63.04 Tflops, nearly two orders of magnitude faster
//! than that of GRAPE-4" (§1); "roughly speaking, a single GRAPE-6 chip
//! offers the speed two orders of magnitude higher than that of GRAPE-4"
//! — 20× more transistors × 3–4× clock (§3.1).
//!
//! Everything below comes out of the two machines' cycle models plus one
//! functional contrast run (the §3.4 reproducibility difference).

use grape4::{Grape4Config, Grape4Engine};
use grape6_bench::print_table;
use grape6_chip::chip::ChipConfig;
use grape6_core::engine::Grape6Engine;
use grape6_system::machine::MachineConfig;
use nbody_core::force::{ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::ic::plummer::plummer_model;
use nbody_core::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g4 = Grape4Config::full_machine();
    let g6_chip = ChipConfig::default();
    let g6_host = MachineConfig::paper_host();
    let g4_chip_flops = g4.board.peak_flops() / g4.board.chips as f64;

    let rows = vec![
        vec![
            "chip peak [Gflops]".into(),
            format!("{:.2}", g4_chip_flops / 1e9),
            format!("{:.2}", g6_chip.peak_flops() / 1e9),
            format!("{:.0}x", g6_chip.peak_flops() / g4_chip_flops),
        ],
        vec![
            "pipelines x VMP per chip".into(),
            "1 x 2".into(),
            "6 x 8".into(),
            "24x".into(),
        ],
        vec![
            "clock [MHz]".into(),
            format!("{:.0}", g4.board.clock_hz / 1e6),
            format!("{:.0}", g6_chip.clock_hz / 1e6),
            format!("{:.1}x", g6_chip.clock_hz / g4.board.clock_hz),
        ],
        vec![
            "system peak [Tflops]".into(),
            format!("{:.2}", g4.peak_flops() / 1e12),
            format!("{:.2}", 16.0 * g6_host.peak_flops() / 1e12),
            format!("{:.0}x", 16.0 * g6_host.peak_flops() / g4.peak_flops()),
        ],
        vec![
            "i-parallelism per board".into(),
            format!("{}", g4.board.i_parallelism()),
            "48".into(),
            "j-divided instead".into(),
        ],
        vec![
            "memory design".into(),
            "shared per board".into(),
            "local per chip".into(),
            "§3.4".into(),
        ],
        vec![
            "board summation".into(),
            "float (order-dep.)".into(),
            "block FP (exact)".into(),
            "§3.4".into(),
        ],
    ];
    print_table(
        "GRAPE-4 (1995) vs GRAPE-6 (2002)",
        &["quantity", "GRAPE-4", "GRAPE-6", "ratio/why"],
        &rows,
    );

    // Functional contrast: run the same force on both simulators at two
    // machine sizes each; GRAPE-6 bits never move, GRAPE-4 bits do.
    let n = 200;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(2002));
    let probes: Vec<IParticle> = (0..8)
        .map(|k| IParticle {
            pos: set.pos[k],
            vel: set.vel[k],
            eps2: 2.44e-4,
        })
        .collect();
    let load = |eng: &mut dyn ForceEngine| {
        for i in 0..n {
            eng.set_j_particle(
                i,
                &JParticle {
                    mass: set.mass[i],
                    t0: 0.0,
                    pos: set.pos[i],
                    vel: set.vel[i],
                    ..Default::default()
                },
            );
        }
        eng.set_time(0.0);
    };
    let forces = |eng: &mut dyn ForceEngine| -> Vec<ForceResult> {
        let mut out = vec![ForceResult::default(); probes.len()];
        eng.compute(&probes, &mut out);
        out
    };
    let mut g6a = Grape6Engine::try_new(
        &MachineConfig {
            boards: 1,
            ..MachineConfig::test_small()
        },
        n,
    )
    .unwrap();
    let mut g6b = Grape6Engine::try_new(
        &MachineConfig {
            boards: 4,
            ..MachineConfig::test_small()
        },
        n,
    )
    .unwrap();
    let mut g4a = Grape4Engine::new(
        &Grape4Config {
            boards: 1,
            ..Grape4Config::test_small()
        },
        n,
    );
    let mut g4b = Grape4Engine::new(
        &Grape4Config {
            boards: 4,
            ..Grape4Config::test_small()
        },
        n,
    );
    load(&mut g6a);
    load(&mut g6b);
    load(&mut g4a);
    load(&mut g4b);
    let f6a = forces(&mut g6a);
    let f6b = forces(&mut g6b);
    let f4a = forces(&mut g4a);
    let f4b = forces(&mut g4b);
    let identical6 = f6a
        .iter()
        .zip(&f6b)
        .all(|(x, y)| x.acc == y.acc && x.pot == y.pot);
    let identical4 = f4a
        .iter()
        .zip(&f4b)
        .all(|(x, y)| x.acc == y.acc && x.pot == y.pot);
    let worst4 = f4a
        .iter()
        .zip(&f4b)
        .map(|(x, y)| (x.acc - y.acc).norm() / x.acc.norm())
        .fold(0.0f64, f64::max);
    println!(
        "\n1-board vs 4-board forces bit-identical?  GRAPE-6: {identical6}   GRAPE-4: {identical4}"
    );
    println!("GRAPE-4 worst relative bit-difference: {worst4:.2e} (harmless physically — but");
    println!("§3.4: \"it is quite useful to be able to obtain exactly the same results on");
    println!("machines with different sizes, since it makes the validation much simpler\").");
    let _ = Vec3::ZERO;
}
