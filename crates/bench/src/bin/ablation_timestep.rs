//! Ablation: individual (block) timesteps vs shared timesteps.
//!
//! §1 and §5 rest on one number: a shared-timestep code must advance every
//! particle at the *smallest* timestep in the system, so it pays
//! `N·(T/dt_min)` particle steps where the individual-timestep code pays
//! `Σᵢ T/dtᵢ` — the ratio is `dt_harmonic/dt_min`-ish and exceeds 100 for
//! centrally concentrated systems.  This study measures the distribution
//! from real integrations at several N and prints the cost factor.

use grape6_bench::print_table;
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let duration = 0.25;
    let rows: Vec<Vec<String>> = [256usize, 512, 1024, 2048, 4096]
        .iter()
        .map(|&n| {
            let set = plummer_model(n, &mut StdRng::seed_from_u64(n as u64));
            let mut it =
                HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
            it.run_until(duration);
            let st = it.stats();
            let individual_steps = st.particle_steps as f64;
            // Shared-timestep equivalent: everyone at dt_min for `duration`.
            let shared_steps = n as f64 * (duration / st.dt_min);
            let p = it.particles();
            let harm = p.dt.len() as f64 / p.dt.iter().map(|&d| 1.0 / d).sum::<f64>();
            vec![
                n.to_string(),
                format!("{:.2e}", individual_steps),
                format!("{:.2e}", shared_steps),
                format!("{:.0}", shared_steps / individual_steps),
                format!("{:.0}", harm / st.dt_min),
                format!("{:.1e}", st.dt_min),
            ]
        })
        .collect();
    print_table(
        "individual vs shared timestep cost (Plummer, eps=1/64, eta=0.01)",
        &[
            "N",
            "indiv steps",
            "shared steps",
            "cost factor",
            "harm<dt>/dt_min",
            "dt_min",
        ],
        &rows,
    );
    println!("\npaper: \"we need at least 100 times more particle steps [with shared dt], since");
    println!("the ratio between the smallest timestep and (harmonic) mean timestep is larger");
    println!("than 100\" — the factor grows with N as the core resolves harder encounters.");
}
