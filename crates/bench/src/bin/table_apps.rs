//! §5 "Performance for real applications": the two production runs.
//!
//! Paper numbers:
//!
//! * **Kuiper belt** — N = 1.8M planetesimals, 21120 dynamical time units,
//!   1.911×10¹⁰ individual steps, 16.30 h wall ⇒
//!   1.911×10¹⁰ × 1 799 999 × 57 = 1.961×10¹⁸ flops ⇒ **33.4 Tflops**;
//! * **Binary black hole** — N = 2M Plummer + two 0.5 % "black hole"
//!   particles, 36 time units, 4.143×10¹⁰ steps, 37.19 h ⇒
//!   4.723×10¹⁸ flops ⇒ **35.3 Tflops**.
//!
//! This binary (a) re-derives the paper's own Tflops arithmetic, (b) runs
//! *scaled-down real simulations* of both workloads through this
//! workspace's stack (demonstrating the code paths exist and conserve
//! energy), and (c) asks the performance model what the full-scale runs
//! would sustain on the tuned 16-node machine.
//!
//! Pass `--grape` to run the scaled-down workloads through the bit-level
//! hardware simulator instead of the f64 reference engine (slower).

use grape6_bench::{default_stats, print_table};
use grape6_core::engine::Grape6Engine;
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use grape6_model::perf::{MachineLayout, PerfModel};
use grape6_system::machine::MachineConfig;
use nbody_core::diagnostics::energy;
use nbody_core::force::DirectEngine;
use nbody_core::ic::binary_bh::binary_bh_model;
use nbody_core::ic::disk::{planetesimal_disk, DiskParams};
use nbody_core::particle::ParticleSet;
use nbody_core::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct PaperRun {
    name: &'static str,
    n: f64,
    steps: f64,
    hours: f64,
}

fn paper_accounting() {
    let runs = [
        PaperRun {
            name: "Kuiper belt (1.8M)",
            n: 1_800_000.0,
            steps: 1.911e10,
            hours: 16.30,
        },
        PaperRun {
            name: "Binary BH (2M)",
            n: 2_000_000.0,
            steps: 4.143e10,
            hours: 37.19,
        },
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            // The paper multiplies by (N−1): each step interacts with the
            // other particles.
            let flops = r.steps * (r.n - 1.0) * 57.0;
            let tflops = flops / (r.hours * 3600.0) / 1e12;
            vec![
                r.name.into(),
                format!("{:.3e}", r.steps),
                format!("{:.2}", r.hours),
                format!("{:.3e}", flops),
                format!("{:.1}", tflops),
            ]
        })
        .collect();
    print_table(
        "§5 paper accounting (re-derived from the published step counts)",
        &["run", "steps", "hours", "flops", "Tflops"],
        &rows,
    );
    println!("\npaper quotes: 33.4 Tflops (Kuiper belt), 35.3 Tflops (binary BH) — the rows above");
    println!("must reproduce those numbers exactly, since they are pure arithmetic.");
}

fn scaled_run(
    name: &str,
    set: ParticleSet,
    soft: Softening,
    t_end: f64,
    use_grape: bool,
) -> Vec<String> {
    let n = set.n();
    let eps2 = soft.epsilon2(n);
    let e0 = energy(&set, eps2);
    let cfg = IntegratorConfig {
        softening: soft,
        ..Default::default()
    };
    let (steps, blocks, err, engine_name) = if use_grape {
        let engine = Grape6Engine::try_new(&MachineConfig::single_board(), n).unwrap();
        let mut it = HermiteIntegrator::new(engine, set, cfg);
        it.run_until(t_end);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        (
            it.stats().particle_steps,
            it.stats().blocksteps,
            ((e1.total() - e0.total()) / e0.total()).abs(),
            "grape6-sim",
        )
    } else {
        let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
        it.run_until(t_end);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        (
            it.stats().particle_steps,
            it.stats().blocksteps,
            ((e1.total() - e0.total()) / e0.total()).abs(),
            "direct-f64",
        )
    };
    vec![
        name.into(),
        n.to_string(),
        format!("{t_end}"),
        steps.to_string(),
        blocks.to_string(),
        format!("{err:.2e}"),
        engine_name.into(),
    ]
}

fn main() {
    let use_grape = std::env::args().any(|a| a == "--grape");
    paper_accounting();

    // Scaled-down real runs of both §5 workloads.
    let mut rng = StdRng::seed_from_u64(2003);
    let disk = planetesimal_disk(1_500, &DiskParams::default(), &mut rng);
    let bbh = binary_bh_model(1_000, 0.005, 0.3, &mut rng);
    let rows = vec![
        scaled_run(
            "Kuiper belt (scaled)",
            disk,
            Softening::Fixed(1e-4),
            0.5,
            use_grape,
        ),
        scaled_run(
            "Binary BH (scaled)",
            bbh,
            Softening::Constant,
            0.5,
            use_grape,
        ),
    ];
    print_table(
        "scaled-down real runs through this workspace's stack",
        &["run", "N", "t_end", "steps", "blocks", "|dE/E|", "engine"],
        &rows,
    );

    // Model prediction for the full-scale runs on the tuned machine.
    let model = PerfModel::tuned();
    let layout = MachineLayout::MultiCluster {
        clusters: 4,
        hosts_per_cluster: 4,
    };
    let stats = default_stats(Softening::Constant);
    let rows: Vec<Vec<String>> = [(1_800_000usize, 1.911e10), (2_000_000, 4.143e10)]
        .iter()
        .map(|&(n, steps)| {
            let t_step = model.time_per_step(layout, n, &stats);
            let hours = steps * t_step / 3600.0;
            let tflops = steps * (n as f64 - 1.0) * 57.0 / (steps * t_step) / 1e12;
            vec![
                n.to_string(),
                format!("{steps:.3e}"),
                format!("{hours:.1}"),
                format!("{tflops:.1}"),
            ]
        })
        .collect();
    print_table(
        "model prediction for the full-scale runs (tuned 16-node machine)",
        &["N", "steps", "model hours", "model Tflops"],
        &rows,
    );
    println!("\npaper: 16.30 h / 33.4 Tflops (Kuiper), 37.19 h / 35.3 Tflops (binary BH).");
}
