//! One rank of a real multi-process cluster: connect the TCP/UDS mesh,
//! run the chained coalesced waves, print the state digest.
//!
//! This is the per-OS-process half of the transport bitwise gate: the
//! `tests/transport_procs.rs` integration test (and any hand-driven
//! cluster) spawns `n_ranks` copies of this bin, which rendezvous
//! through the shared directory, exchange the deterministic wave
//! sequence of `grape6_bench::wavecheck`, and print
//! `digest=<16 hex digits>` — every process must print the same value,
//! and it must equal the virtual-fabric digest for the same parameters.
//!
//! Usage:
//!
//! ```text
//! cluster_node <rank> <n_ranks> <dir> <tcp|uds> [steps] [recs] [flags]
//! ```
//!
//! Defaults: 8 steps, 3 records/rank.  Without flags the bin runs the
//! bare `run_waves` chain (no fault tolerance) exactly as before.
//! Flags select the fault-tolerant paths:
//!
//! * `--supervised` — drive the chain under a
//!   `grape6_net::cluster::ClusterSupervisor`: heartbeats, deadlines,
//!   coordinated checkpoints, shrink-or-respawn recovery.  Prints a
//!   second machine-readable `report …` line for the chaos harness.
//! * `--rejoin` — re-enter a supervised run after this rank was killed:
//!   poll the manifest for the rejoin invitation, restore from the
//!   coordinated checkpoint, reconnect at the manifest generation.
//! * `--torn` — fault injector: speak just enough of the rendezvous
//!   protocol to reach rank 0, then die mid-frame (length prefix
//!   promising 64 bytes, 3 bytes delivered).  The peer must count a
//!   torn frame and see `Down`, never a panic.
//! * `--nonce=N --ckpt-every=N --hb-every=N --read-deadline-ms=N`
//!   `--respawn-wait-ms=N --step-delay-ms=N --grace-ms=N`
//!   `--recover-window-ms=N` — supervised-run tuning knobs.
//!
//! Exit codes: 0 ok, 1 exchange/cluster failure, 2 bad usage,
//! 3 rendezvous failure, 4 evicted (stalled past a recovery, woke up
//! shrunk), 5 unrecoverable cluster state.

use std::io::Write;
use std::time::Duration;

use grape6_bench::wavecheck::{run_waves, WaveChainApp};
use grape6_net::cluster::{ClusterConfig, ClusterError, ClusterReport, ClusterSupervisor};
use grape6_net::transport::{StreamConfig, StreamKind, StreamTransport};

fn usage() -> ! {
    eprintln!(
        "usage: cluster_node <rank> <n_ranks> <dir> <tcp|uds> [steps] [recs] \
         [--supervised] [--rejoin] [--torn] [--nonce=N] [--ckpt-every=N] [--hb-every=N] \
         [--read-deadline-ms=N] [--respawn-wait-ms=N] [--step-delay-ms=N] [--grace-ms=N] \
         [--recover-window-ms=N]"
    );
    std::process::exit(2);
}

/// CSV of a rank list, `-` when empty (keeps the report line splittable
/// on spaces).
fn csv(v: &[usize]) -> String {
    if v.is_empty() {
        "-".into()
    } else {
        v.iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn print_report(rank: usize, n: usize, r: &ClusterReport) {
    println!(
        "report waves={} recoveries={} rejoined={} shrunk={} group={} recover_s={:.3} \
         hb={} timeouts={} torn={} bytes={} msgs={}",
        r.waves_folded,
        r.recoveries,
        csv(&r.rejoined),
        csv(&r.shrunk),
        csv(&r.group),
        r.recover_seconds,
        r.heartbeats_sent,
        r.recv_timeouts,
        r.torn_frames,
        r.bytes_sent,
        r.messages_sent,
    );
    eprintln!(
        "rank {rank}/{n}: {} frames, {} bytes on the wire, {} recoveries",
        r.messages_sent, r.bytes_sent, r.recoveries
    );
}

/// Die mid-frame on rank 0's doorstep: poll for its nonce-stamped
/// address file, connect, send a well-formed 24-byte hello, then write
/// a length prefix promising 64 bytes and only 3 of them before
/// exiting.  This reproduces, from a *separate OS process*, exactly
/// the torn write a SIGKILL between two `write(2)` calls produces.
fn torn_exit(rank: usize, dir: &std::path::Path, kind: StreamKind, nonce: u64) -> ! {
    let fail = |msg: String| -> ! {
        eprintln!("rank {rank}: torn injector: {msg}");
        std::process::exit(3);
    };
    let addr_file = dir.join("rank0.addr");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let mut it = text.split_whitespace();
            let stamped = it
                .next()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or_else(|| fail(format!("malformed address file {addr_file:?}")));
            if stamped != nonce {
                fail(format!("nonce mismatch: file {stamped:#x}, run {nonce:#x}"));
            }
            match it.next() {
                Some(a) => break a.to_string(),
                None => fail(format!("malformed address file {addr_file:?}")),
            }
        }
        if std::time::Instant::now() > deadline {
            fail("rank 0 never published an address".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let mut stream: Box<dyn Write> = match kind {
        StreamKind::Tcp => Box::new(
            std::net::TcpStream::connect(&addr).unwrap_or_else(|e| fail(format!("connect: {e}"))),
        ),
        StreamKind::Uds => Box::new(
            std::os::unix::net::UnixStream::connect(&addr)
                .unwrap_or_else(|e| fail(format!("connect: {e}"))),
        ),
    };
    // Hello: (rank, nonce, generation), u64 LE each.
    let mut hello = Vec::with_capacity(24);
    hello.extend_from_slice(&(rank as u64).to_le_bytes());
    hello.extend_from_slice(&nonce.to_le_bytes());
    hello.extend_from_slice(&0u64.to_le_bytes());
    stream
        .write_all(&hello)
        .unwrap_or_else(|e| fail(format!("hello: {e}")));
    // The torn frame: promise 64 bytes, deliver 3, die.
    stream
        .write_all(&64u64.to_le_bytes())
        .unwrap_or_else(|e| fail(format!("prefix: {e}")));
    stream
        .write_all(&[0xde, 0xad, 0xbe])
        .unwrap_or_else(|e| fail(format!("partial body: {e}")));
    stream.flush().ok();
    std::process::exit(0);
}

fn main() {
    let all: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags): (Vec<&String>, Vec<&String>) = all.iter().partition(|a| !a.starts_with("--"));
    if pos.len() < 4 {
        usage();
    }
    let rank: usize = pos[0].parse().unwrap_or_else(|_| usage());
    let n_ranks: usize = pos[1].parse().unwrap_or_else(|_| usage());
    let dir = std::path::PathBuf::from(pos[2]);
    let kind = match pos[3].as_str() {
        "tcp" => StreamKind::Tcp,
        "uds" => StreamKind::Uds,
        _ => usage(),
    };
    let steps: u64 = pos
        .get(4)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8);
    let recs: usize = pos
        .get(5)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);

    let (mut supervised, mut rejoin, mut torn) = (false, false, false);
    let mut nonce = 0u64;
    let mut ckpt_every = 8u64;
    let mut hb_every = 4u64;
    let mut read_deadline_ms = 50u64;
    let mut respawn_wait_ms = 5_000u64;
    let mut step_delay_ms = 0u64;
    let mut grace_ms = 300u64;
    let mut recover_window_ms = 3_000u64;
    for f in flags {
        let (key, val) = match f.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (f.as_str(), None),
        };
        let num = || -> u64 { val.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()) };
        match key {
            "--supervised" => supervised = true,
            "--rejoin" => rejoin = true,
            "--torn" => torn = true,
            "--nonce" => nonce = num(),
            "--ckpt-every" => ckpt_every = num(),
            "--hb-every" => hb_every = num(),
            "--read-deadline-ms" => read_deadline_ms = num(),
            "--respawn-wait-ms" => respawn_wait_ms = num(),
            "--step-delay-ms" => step_delay_ms = num(),
            "--grace-ms" => grace_ms = num(),
            "--recover-window-ms" => recover_window_ms = num(),
            _ => usage(),
        }
    }

    if torn {
        torn_exit(rank, &dir, kind, nonce);
    }

    if supervised || rejoin {
        let scfg = StreamConfig {
            nonce,
            read_deadline: Duration::from_millis(read_deadline_ms),
            read_attempts: 2,
            ..StreamConfig::default()
        };
        let ccfg = ClusterConfig {
            ckpt_every,
            hb_every,
            grace: Duration::from_millis(grace_ms),
            recover_window: Duration::from_millis(recover_window_ms),
            respawn_wait: Duration::from_millis(respawn_wait_ms),
            step_delay: Duration::from_millis(step_delay_ms),
            ..ClusterConfig::new(&dir)
        };
        let app = WaveChainApp::new(steps, recs);
        let sup = if rejoin {
            match ClusterSupervisor::respawned(rank, n_ranks, kind, &scfg, ccfg, app) {
                Ok(sup) => sup,
                Err(e) => {
                    eprintln!("rank {rank}: rejoin failed: {e}");
                    std::process::exit(5);
                }
            }
        } else {
            let tr = match StreamTransport::connect_with(rank, n_ranks, &dir, kind, &scfg) {
                Ok(tr) => tr,
                Err(e) => {
                    eprintln!("rank {rank}: rendezvous failed: {e}");
                    std::process::exit(3);
                }
            };
            ClusterSupervisor::new(tr, app, ccfg)
        };
        match sup.run() {
            Ok((app, report)) => {
                println!("digest={:016x}", app.digest());
                print_report(rank, n_ranks, &report);
            }
            Err(ClusterError::Evicted { gen }) => {
                eprintln!("rank {rank}: evicted at generation {gen}");
                std::process::exit(4);
            }
            Err(e) => {
                eprintln!("rank {rank}: cluster run failed: {e}");
                std::process::exit(5);
            }
        }
        return;
    }

    // Bare mode: the original digest smoke, generous default deadlines.
    let scfg = StreamConfig {
        nonce,
        ..StreamConfig::default()
    };
    let mut tr = match StreamTransport::connect_with(rank, n_ranks, &dir, kind, &scfg) {
        Ok(tr) => tr,
        Err(e) => {
            eprintln!("rank {rank}: rendezvous failed: {e}");
            std::process::exit(3);
        }
    };
    match run_waves(&mut tr, steps, recs, false) {
        Ok(digest) => {
            println!("digest={digest:016x}");
            eprintln!(
                "rank {rank}/{n_ranks}: {} frames, {} bytes on the wire",
                tr.messages_sent(),
                tr.bytes_sent()
            );
        }
        Err(e) => {
            eprintln!("rank {rank}: exchange failed: {e}");
            std::process::exit(1);
        }
    }
}
