//! One rank of a real multi-process cluster: connect the TCP/UDS mesh,
//! run the chained coalesced waves, print the state digest.
//!
//! This is the per-OS-process half of the transport bitwise gate: the
//! `tests/transport_procs.rs` integration test (and any hand-driven
//! cluster) spawns `n_ranks` copies of this bin, which rendezvous
//! through the shared directory, exchange the deterministic wave
//! sequence of `grape6_bench::wavecheck`, and print
//! `digest=<16 hex digits>` — every process must print the same value,
//! and it must equal the virtual-fabric digest for the same parameters.
//!
//! Usage: `cluster_node <rank> <n_ranks> <dir> <tcp|uds> [steps] [recs]`
//! (defaults: 8 steps, 3 records/rank).  Exit codes: 2 bad usage,
//! 3 rendezvous failure, 1 exchange failure.

use grape6_bench::wavecheck::run_waves;
use grape6_net::transport::{StreamKind, StreamTransport};

fn usage() -> ! {
    eprintln!("usage: cluster_node <rank> <n_ranks> <dir> <tcp|uds> [steps] [recs]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 4 {
        usage();
    }
    let rank: usize = args[0].parse().unwrap_or_else(|_| usage());
    let n_ranks: usize = args[1].parse().unwrap_or_else(|_| usage());
    let dir = std::path::PathBuf::from(&args[2]);
    let kind = match args[3].as_str() {
        "tcp" => StreamKind::Tcp,
        "uds" => StreamKind::Uds,
        _ => usage(),
    };
    let steps: u64 = args
        .get(4)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8);
    let recs: usize = args
        .get(5)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);

    let mut tr = match StreamTransport::connect(rank, n_ranks, &dir, kind) {
        Ok(tr) => tr,
        Err(e) => {
            eprintln!("rank {rank}: rendezvous failed: {e}");
            std::process::exit(3);
        }
    };
    match run_waves(&mut tr, steps, recs, false) {
        Ok(digest) => {
            println!("digest={digest:016x}");
            eprintln!(
                "rank {rank}/{n_ranks}: {} frames, {} bytes on the wire",
                tr.messages_sent(),
                tr.bytes_sent()
            );
        }
        Err(e) => {
            eprintln!("rank {rank}: exchange failed: {e}");
            std::process::exit(1);
        }
    }
}
