//! Figure 19: the §4.4 tuning result — NIC/host swap.
//!
//! Paper: "Comparison of the calculation speed with Intel 82540EM (upper
//! curve) and NS 83820 (lower curve). … the performance is improved by
//! 50-100% for the entire range of N.  The improvement is larger for
//! smaller N, since the communication overhead is more serious with
//! smaller N.  For 1.8M particles, the measured speed reached 36.0
//! Tflops."  16-node (4-cluster) system, constant softening.

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::calib::NicProfile;
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    let old = PerfModel::default(); // Athlon + NS 83820
    let new = PerfModel::tuned(); // P4 2.85 + Intel 82540EM
                                  // The intermediate option the paper also measured: "Netgear GA621T
                                  // with Tigon 2 chipset … somewhat better throughput (85MB/s), but not
                                  // much improvement in the latency" — on the Athlon host.
    let mid = PerfModel {
        nic: NicProfile::tigon2(),
        ..PerfModel::default()
    };
    let layout = MachineLayout::MultiCluster {
        clusters: 4,
        hosts_per_cluster: 4,
    };
    let stats = default_stats(Softening::Constant);
    let sweep = log_n_sweep(10_000, 1_800_000, 3);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let s_old = old.speed(layout, n, &stats);
            let s_mid = mid.speed(layout, n, &stats);
            let s_new = new.speed(layout, n, &stats);
            vec![
                n.to_string(),
                format!("{:.2}", s_old / 1e12),
                format!("{:.2}", s_mid / 1e12),
                format!("{:.2}", s_new / 1e12),
                format!("{:.0}%", (s_new / s_old - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 19 — NIC/host tuning [Tflops] (16-node)",
        &["N", "NS83820+Athlon", "Tigon2+Athlon", "82540EM+P4", "gain"],
        &rows,
    );
    let s18 = new.speed(layout, 1_800_000, &stats);
    println!(
        "\npaper anchor: 36.0 Tflops at N = 1.8M with the tuned system (model: {:.1} Tflops)",
        s18 / 1e12
    );
    println!("paper shape: 50-100% gain across the range, larger at small N.");
}
