//! Figure 14: CPU time per particle step vs N, single node.
//!
//! Paper: "Solid curve is the measured result.  Dashed and dotted curves
//! denote two different theoretical estimates" — the dashed one assumes a
//! constant T_host, the dotted one refines it with the cache-hit model;
//! "For N < 1000, the experimental value is larger than the prediction of
//! the refined theory … The overhead to invoke DMA operations becomes
//! visible."
//!
//! Here the "measured" column is the full blockstep simulation of the
//! model (all terms including DMA), and the two theory columns reproduce
//! the paper's two estimates (no DMA term, constant vs cache-refined
//! T_host).

use grape6_bench::{default_stats, log_n_sweep, print_table};
use grape6_model::perf::{MachineLayout, PerfModel};
use nbody_core::softening::Softening;

fn main() {
    let model = PerfModel::default();
    let layout = MachineLayout::SingleHost;
    let stats = default_stats(Softening::Constant);
    // "Theory" variants drop the DMA term, as the paper's estimates do.
    let mut no_dma = model;
    no_dma.grape.dma_setup = 0.0;
    let sweep = log_n_sweep(256, 200_000, 4);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let measured = model.time_per_step(layout, n, &stats);
            let theory_const = no_dma.time_per_step_const_host(layout, n, &stats);
            let theory_cache = no_dma.time_per_step(layout, n, &stats);
            vec![
                n.to_string(),
                format!("{:.2}", measured * 1e6),
                format!("{:.2}", theory_const * 1e6),
                format!("{:.2}", theory_cache * 1e6),
            ]
        })
        .collect();
    print_table(
        "Fig. 14 — CPU time per particle step [µs] vs N (single node)",
        &[
            "N",
            "measured(sim)",
            "theory:const T_host",
            "theory:cache model",
        ],
        &rows,
    );
    println!("\npaper shape: measured exceeds refined theory below N≈1000 (DMA overhead);");
    println!(
        "cache-refined theory < constant-T_host theory at small N; all curves rise at large N."
    );
}
