//! The farm soak — `BENCH_farm.json`.
//!
//! Seeded multi-tenant scenarios against the farm service: more jobs
//! than the admission ceiling (typed backpressure must fire), a board
//! that flunks power-on self-test, and a board that dies mid-run
//! (rotation, eviction, and checkpoint-resume must all engage).  Every
//! admitted session must complete with particle bits **identical** to a
//! dedicated single-tenant run — see [`grape6_bench::farm`] for the
//! full invariant list.
//!
//! Usage: `farm_soak [seeds...]` — defaults to three seeds.  Exits
//! nonzero if any invariant breaks (including a scheduler stall, the
//! deadlock signal).  Output: a table per run plus `BENCH_farm.json` in
//! the current directory.

use grape6_bench::farm::{farm_soak_run, FarmSoakConfig};
use grape6_bench::print_table;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("seeds must be integers"))
        .collect();
    let seeds = if args.is_empty() {
        vec![17, 29, 43]
    } else {
        args
    };

    let cfg = FarmSoakConfig::default();
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    let mut failures: Vec<(u64, Vec<String>)> = Vec::new();
    for &seed in &seeds {
        let out = farm_soak_run(seed, &cfg);
        rows.push(vec![
            out.seed.to_string(),
            format!("{}/{}", out.admitted, out.submitted),
            out.completed.to_string(),
            out.rejected_saturated.to_string(),
            out.rejected_queue_full.to_string(),
            out.retry_after_hint.to_string(),
            out.board_rotations.to_string(),
            out.evictions.to_string(),
            out.resumes.to_string(),
            out.grant_retries.to_string(),
            format!("{}/{}", out.bitwise_ok, out.admitted),
            if out.ok() { "ok".into() } else { "FAIL".into() },
        ]);
        if !out.ok() {
            failures.push((seed, out.violations.clone()));
        }
        outcomes.push(out);
    }

    print_table(
        &format!(
            "Farm soak: {} seeded multi-tenant scenarios ({} tenants, n={}, {} boards, 2 injected faults)",
            seeds.len(),
            cfg.tenants,
            cfg.n,
            cfg.boards
        ),
        &[
            "seed",
            "admit/sub",
            "done",
            "saturated",
            "queuefull",
            "retry_bsteps",
            "rotations",
            "evictions",
            "resumes",
            "retries",
            "bitwise",
            "verdict",
        ],
        &rows,
    );

    let body: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
    let all_ok = failures.is_empty();
    let json = format!(
        "{{\"runs\":[{}],\"bitwise_ok\":{all_ok}}}\n",
        body.join(",")
    );
    std::fs::write("BENCH_farm.json", json).expect("write BENCH_farm.json");
    println!("\nwrote BENCH_farm.json");

    if !all_ok {
        for (seed, violations) in &failures {
            eprintln!("\nseed {seed} FAILED:");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        std::process::exit(1);
    }
    println!("farm soak: every invariant held on every seed");
}
