//! The networked farm soak — `BENCH_farm_net.json`.
//!
//! Runs the full multi-process scenario of [`grape6_bench::farm_net`]
//! once over TCP and once over UDS: one `farm_server`, a SIGKILLed
//! victim client, a torn-frame injector, a mid-handshake deserter, and
//! two worker clients racing five jobs against an admission ceiling of
//! three on a pool carrying two injected board faults.  Every job a
//! worker fetches over the wire must be bitwise identical to the same
//! job run in-process on a dedicated healthy board.
//!
//! Usage: `farm_net_soak [seed]` (default 17).  Exits nonzero if any
//! invariant breaks; writes `BENCH_farm_net.json` in the current
//! directory.

use grape6_bench::farm_net::{farm_net_run, FarmNetConfig};
use grape6_bench::print_table;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(17);

    let exe = std::env::current_exe().expect("own path");
    let server_bin = exe.with_file_name("farm_server");
    let client_bin = exe.with_file_name("farm_client");
    if !server_bin.exists() || !client_bin.exists() {
        eprintln!("farm_net_soak: sibling binaries farm_server/farm_client not built");
        std::process::exit(2);
    }

    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for kind in ["tcp", "uds"] {
        let dir = std::env::temp_dir().join(format!("g6-farm-net-{kind}-{}", std::process::id()));
        let mut cfg = FarmNetConfig::new(server_bin.clone(), client_bin.clone(), dir, kind);
        cfg.seed = seed;
        let out = farm_net_run(&cfg);
        rows.push(vec![
            out.kind.clone(),
            format!("{}/{}", out.digests_ok, out.jobs_done),
            out.saturated_denials.to_string(),
            out.torn_frames.to_string(),
            out.client_deaths.to_string(),
            out.detached.to_string(),
            out.completed.to_string(),
            out.board_rotations.to_string(),
            format!("{:.1}", out.wall_ms as f64 / 1e3),
            if out.ok() { "ok".into() } else { "FAIL".into() },
        ]);
        outcomes.push(out);
    }

    print_table(
        &format!(
            "Farm over the wire: seed {seed}, 5 jobs on a ceiling of 3, 2 board faults, \
             1 murdered client, 2 wire vandals"
        ),
        &[
            "kind",
            "bitwise",
            "saturated",
            "torn",
            "deaths",
            "detached",
            "completed",
            "rotations",
            "wall_s",
            "verdict",
        ],
        &rows,
    );

    let all_ok = outcomes.iter().all(|o| o.ok());
    let body: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
    let json = format!(
        "{{\"runs\":[{}],\"bitwise_ok\":{all_ok}}}\n",
        body.join(",")
    );
    std::fs::write("BENCH_farm_net.json", json).expect("write BENCH_farm_net.json");
    println!("\nwrote BENCH_farm_net.json");

    if !all_ok {
        for o in &outcomes {
            if !o.ok() {
                eprintln!("\n{} FAILED:", o.kind);
                for v in &o.violations {
                    eprintln!("  - {v}");
                }
            }
        }
        std::process::exit(1);
    }
    println!("farm_net_soak: every invariant held on TCP and UDS");
}
