//! Demonstration of the fig. 12 two-dimensional hardware network.
//!
//! "Instead of two-dimensional grid of host processors, we can construct a
//! two-dimensional grid of GRAPE hardwares with orthogonal broadcast
//! networks" (§3.2).  This binary builds r×c grids of simulated chips,
//! verifies the force is identical to a flat machine, and shows the two
//! knobs the topology offers: rows divide the per-pass j-stream, columns
//! multiply the i-parallelism.

use grape6_bench::print_table;
use grape6_chip::chip::{Chip, ChipConfig};
use grape6_chip::pipeline::{ExpSet, HwIParticle};
use grape6_system::grid::GridNetwork;
use grape6_system::unit::ChipUnit;
use nbody_core::force::JParticle;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4096;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(12));
    let shapes = [(1usize, 1usize), (2, 1), (4, 1), (2, 2), (1, 4), (4, 4)];
    let mut rows = Vec::new();
    let mut reference_mant: Option<i64> = None;
    for &(r, c) in &shapes {
        let chips: Vec<ChipUnit> = (0..r * c)
            .map(|_| ChipUnit::new(Chip::new(ChipConfig::default())))
            .collect();
        let mut grid = GridNetwork::new(chips, r, c);
        for k in 0..n {
            grid.load_j(
                k,
                &JParticle {
                    mass: set.mass[k],
                    t0: 0.0,
                    pos: set.pos[k],
                    vel: set.vel[k],
                    ..Default::default()
                },
            )
            .unwrap();
        }
        grid.set_time(0.0);
        // One block per column, 48 i-particles each.
        let blocks: Vec<Vec<HwIParticle>> = (0..c)
            .map(|q| {
                (0..48)
                    .map(|k| {
                        HwIParticle::from_host(set.pos[q * 48 + k], set.vel[q * 48 + k], 2.4e-4)
                    })
                    .collect()
            })
            .collect();
        let exps = vec![vec![ExpSet::from_magnitudes(50.0, 500.0, 50.0); 48]; c];
        let out = grid.compute_grid(&blocks, &exps).unwrap();
        // Bit-exactness across shapes (first block's first particle).
        let mant = out[0][0].acc[0].mant();
        match reference_mant {
            None => reference_mant = Some(mant),
            Some(m) => assert_eq!(m, mant, "grid {r}x{c} changed the bits!"),
        }
        rows.push(vec![
            format!("{r}x{c}"),
            (r * c).to_string(),
            grid.i_parallelism().to_string(),
            format!("{}", grid.last_pass_cycles()),
            format!("{}", 48 * c * n),
        ]);
    }
    print_table(
        &format!("fig. 12 grid topologies over the same N = {n} system"),
        &["grid", "chips", "i-parallel", "pass cycles", "pairs/pass"],
        &rows,
    );
    println!("\nall shapes produce bit-identical forces (block floating point);");
    println!("rows cut the pass time (j divided), columns serve more i-particles per pass —");
    println!("the flexibility/performance compromise §3.2 describes.");
}
