//! Ablation: synchronisation algorithm and NIC, measured on the fabric.
//!
//! §4.4: "synchronization is done through butterfly message exchange using
//! TCP/IP, which is about two times faster than the use of MPI_barrier
//! provided by MPICH/p4" — and the NIC swap cut the round-trip latency
//! 3×.  This study *measures* (in virtual time, on the real message-
//! passing fabric of `grape6-net`) the per-barrier cost of
//!
//! * the dissemination (butterfly) barrier vs a central-coordinator
//!   barrier (the MPICH/p4-like shape),
//! * over each of the paper's three NICs,
//!
//! and converts the difference into blocksteps/second at the sync-bound
//! end of fig. 18.

use grape6_bench::print_table;
use grape6_net::collectives::{barrier, central_barrier};
use grape6_net::fabric::run_ranks;
use grape6_net::link::LinkProfile;

fn barrier_cost(p: usize, link: LinkProfile, butterfly: bool) -> f64 {
    // Average over a few repetitions to smooth the pipelined rounds.
    let reps = 8;
    let clocks = run_ranks::<u8, f64, _>(p, link, move |mut ep| {
        for _ in 0..reps {
            if butterfly {
                barrier(&mut ep).expect("lossless fabric");
            } else {
                central_barrier(&mut ep).expect("lossless fabric");
            }
        }
        ep.clock()
    });
    clocks.iter().cloned().fold(0.0, f64::max) / reps as f64
}

fn main() {
    let nics = [
        ("NS 83820", LinkProfile::ns83820()),
        ("Tigon 2", LinkProfile::tigon2()),
        ("Intel 82540EM", LinkProfile::intel_82540em()),
    ];
    for p in [4usize, 16] {
        let rows: Vec<Vec<String>> = nics
            .iter()
            .map(|(name, link)| {
                let bf = barrier_cost(p, *link, true);
                let ct = barrier_cost(p, *link, false);
                vec![
                    (*name).into(),
                    format!("{:.0}", bf * 1e6),
                    format!("{:.0}", ct * 1e6),
                    format!("{:.1}x", ct / bf),
                    format!("{:.0}", 1.0 / bf),
                ]
            })
            .collect();
        print_table(
            &format!("measured barrier cost, {p} hosts"),
            &[
                "NIC",
                "butterfly [µs]",
                "central [µs]",
                "central/butterfly",
                "max blocksteps/s",
            ],
            &rows,
        );
    }
    println!("\npaper anchors: butterfly ≈ 2× faster than MPICH/p4's barrier; NIC swap cuts");
    println!("RTT 200 µs → 67 µs.  In the sync-bound regime of figs. 16/18 the blockstep");
    println!("rate — and hence the speed at small N — scales directly with these numbers.");
}
