//! Measured time-breakdown report — the simulation-side companion of the
//! fig. 13/17 model curves.
//!
//! Runs real Plummer integrations on the bit-level simulator in the
//! paper's layouts (single host; one cluster; multi-cluster over the
//! discrete-event Ethernet fabric), measures the six-term blockstep
//! breakdown from recorded virtual-time spans, and prints it next to the
//! analytic model's prediction for the same blockstep sequence.
//!
//! Outputs:
//!
//! * `BENCH_breakdown.json` — one JSON object per layout with the
//!   measured and modelled terms (machine-readable, hand-rolled JSON so
//!   it works offline);
//! * `BENCH_trace.json` — a `chrome://tracing` / Perfetto trace of the
//!   multi-cluster run's per-rank span streams (or the single-host run
//!   when only one layout is requested).
//!
//! Usage: `perf_report [N] [T_END]` (defaults: 256 particles, 0.125 time
//! units on the `test_small` machine — small enough for CI, large enough
//! that every term is exercised).

use grape6_bench::breakdown::{measure_breakdown, timing_for, BreakdownRun};
use grape6_bench::print_table;
use grape6_model::perf::{MachineLayout, PerfModel};
use grape6_system::machine::MachineConfig;
use grape6_trace::chrome_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(256);
    let t_end: f64 = args
        .next()
        .map(|a| a.parse().expect("T_END must be a number"))
        .unwrap_or(0.125);

    let machine = MachineConfig::test_small();
    let model = PerfModel {
        grape: timing_for(&machine),
        ..PerfModel::default()
    };
    let layouts = [
        MachineLayout::SingleHost,
        MachineLayout::Cluster { hosts: 4 },
        MachineLayout::MultiCluster {
            clusters: 2,
            hosts_per_cluster: 2,
        },
    ];

    let runs: Vec<BreakdownRun> = layouts
        .iter()
        .map(|&layout| measure_breakdown(&model, &machine, layout, n, t_end, 2003))
        .collect();

    let mut rows = Vec::new();
    for run in &runs {
        let m = run.measured;
        let b = run.model;
        for (name, got, want) in [
            ("host", m.host, b.host),
            ("dma", m.dma, b.dma),
            ("interface", m.interface, b.interface),
            ("grape", m.grape, b.grape),
            ("sync", m.sync, b.sync),
            ("exchange", m.exchange, b.exchange),
            ("total", m.total(), b.total()),
        ] {
            let ratio = if want > 0.0 {
                format!("{:.3}", got / want)
            } else {
                "-".into()
            };
            rows.push(vec![
                run.layout.label(),
                name.into(),
                format!("{:.3e}", got),
                format!("{:.3e}", want),
                ratio,
            ]);
        }
    }
    print_table(
        &format!(
            "Measured vs modelled blockstep breakdown (N = {n}, {} blocksteps/run)",
            runs[0].blocksteps
        ),
        &["layout", "term", "measured [s]", "model [s]", "ratio"],
        &rows,
    );

    let breakdown_json: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
    let payload = format!("[{}]", breakdown_json.join(","));
    std::fs::write("BENCH_breakdown.json", &payload).expect("write BENCH_breakdown.json");
    println!("\nwrote BENCH_breakdown.json ({} layouts)", runs.len());

    // The most interesting trace: the last layout (multi-cluster) shows
    // compute, barriers and the recursive-doubling exchange interleaved
    // per rank.
    let trace = chrome_trace(&runs.last().expect("at least one layout").streams);
    std::fs::write("BENCH_trace.json", trace).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json (load in chrome://tracing or Perfetto)");
}
