//! The farm service daemon: serve the shared board pool over a socket.
//!
//! Binds the `grape6_farm::FarmServer` frontend on TCP (loopback,
//! ephemeral port) or UDS, publishes the nonce-stamped address under
//! the rendezvous directory, and serves `farm_client` processes until
//! the idle-exit window or the wall cap.  At exit it prints two
//! machine-parsable counter lines (`served …` and `farm …`) that the
//! `farm_net_soak` harness and the CI guard consume.
//!
//! Usage:
//!
//! ```text
//! farm_server <dir> <tcp|uds> [--nonce=N] [--boards=N] [--faults]
//!             [--max-live=N] [--queue-depth=N] [--seed=N]
//!             [--grace-ms=N] [--idle-exit-ms=N] [--max-wall-ms=N]
//! ```
//!
//! `--faults` installs the standard pair of injected board faults on a
//! pool of ≥ 3: board 1 powers on with a dead module (it can never fit
//! a 48-particle job and is rotated out on first contact) and board 2
//! dies mid-run (recovery ladder → park → rotation → resume elsewhere).
//!
//! Exit codes: 0 served and shut down cleanly, 2 bad usage, 3 bind or
//! publish failure.

use std::path::PathBuf;
use std::time::Duration;

use grape6_bench::farm::soak_unit;
use grape6_farm::{FarmConfig, FarmServer, FarmServerConfig, ServeOptions};
use grape6_fault::FaultPlan;
use grape6_net::transport::StreamKind;

fn usage() -> ! {
    eprintln!(
        "usage: farm_server <dir> <tcp|uds> [--nonce=N] [--boards=N] [--faults] \
         [--max-live=N] [--queue-depth=N] [--seed=N] [--grace-ms=N] \
         [--idle-exit-ms=N] [--max-wall-ms=N]"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")))
        .map(|v| {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| usage())
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let dir = PathBuf::from(&args[0]);
    let kind = match args[1].as_str() {
        "tcp" => StreamKind::Tcp,
        "uds" => StreamKind::Uds,
        _ => usage(),
    };
    let boards = flag(&args, "boards").unwrap_or(3) as usize;
    let with_faults = args.iter().any(|a| a == "--faults");

    let mut plans: Vec<Option<FaultPlan>> = vec![None; boards];
    if with_faults && boards > 1 {
        plans[1] = Some(FaultPlan::none().with_dead_module(0, 0));
    }
    if with_faults && boards > 2 {
        plans[2] = Some(FaultPlan::none().with_midrun_death(vec![0, 1], 5));
    }

    let farm_cfg = FarmConfig::builder(soak_unit())
        .boards(boards)
        .board_plans(plans)
        .max_live_sessions(flag(&args, "max-live").unwrap_or(3) as usize)
        .queue_depth(flag(&args, "queue-depth").unwrap_or(4) as usize)
        .quantum(4)
        .ckpt_every(4)
        .seed(flag(&args, "seed").unwrap_or(0))
        .build()
        .unwrap_or_else(|e| {
            eprintln!("farm_server: invalid farm config: {e}");
            std::process::exit(2);
        });

    let mut srv_cfg = FarmServerConfig::new(dir);
    srv_cfg.kind = kind;
    srv_cfg.stream.nonce = flag(&args, "nonce").unwrap_or(0);
    srv_cfg.heartbeat_grace = Duration::from_millis(flag(&args, "grace-ms").unwrap_or(2000));

    let mut server = match FarmServer::bind(farm_cfg, srv_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("farm_server: bind failed: {e}");
            std::process::exit(3);
        }
    };
    println!("listening addr={} kind={}", server.addr(), args[1]);

    let report = server.serve(ServeOptions {
        max_wall: Duration::from_millis(flag(&args, "max-wall-ms").unwrap_or(120_000)),
        exit_after_idle: Some(Duration::from_millis(
            flag(&args, "idle-exit-ms").unwrap_or(1500),
        )),
    });

    println!(
        "served accepted={} handshakes={} denials={} deaths={} torn={} requests={}",
        report.accepted,
        report.handshakes,
        report.denials,
        report.client_deaths,
        report.torn_frames,
        report.requests
    );
    let s = &report.farm;
    println!(
        "farm admitted={} completed={} failed={} detached={} cancelled={} saturated={} \
         rotations={} evictions={} resumes={}",
        s.admitted,
        s.completed,
        s.failed,
        s.detached,
        s.cancelled,
        s.rejected_saturated,
        s.board_rotations,
        s.evictions,
        s.resumes
    );
}
