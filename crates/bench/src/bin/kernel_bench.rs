//! Force-kernel comparison matrix — `BENCH_kernel.json`.
//!
//! Runs the same Plummer integration once per kernel variant — the
//! per-interaction scalar reference oracle, the auto-vectorised batched
//! SoA kernel, and the hand-rolled SIMD-lane kernel at each dispatch
//! level the host supports (`simd-avx2`, `simd-avx512` where detected) —
//! across a matrix of system sizes, verifies that every variant lands on
//! bitwise-identical particle state, and reports host wall-clock and
//! interactions per second per variant.
//!
//! The bitwise verdict is **asserted** (exit 1 on divergence): every
//! kernel's whole contract is same bits, less host time.  Speedups are
//! printed and recorded in the JSON; `ci.sh` guards the relational floor
//! (batched ≥ scalar, best SIMD ≥ batched).
//!
//! Usage: `kernel_bench [BLOCKSTEPS] [BOARDS] [N...]`
//! (defaults 24 / 2 / 256 512 — CI-sized; larger N amortises per-pass
//! decode and shows each kernel's steady-state throughput).
//!
//! Output: prints one table per system size and writes
//! `BENCH_kernel.json` to the current directory.

use grape6_bench::kernel::run_kernel_bench;
use grape6_bench::print_table;
use grape6_system::machine::MachineConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let blocksteps: usize = args
        .next()
        .map(|a| a.parse().expect("BLOCKSTEPS must be an integer"))
        .unwrap_or(24);
    let boards: usize = args
        .next()
        .map(|a| a.parse().expect("BOARDS must be an integer"))
        .unwrap_or(2);
    let mut sizes: Vec<usize> = args
        .map(|a| a.parse().expect("each N must be an integer"))
        .collect();
    if sizes.is_empty() {
        sizes = vec![256, 512];
    }

    // One machine serves every size: j-memory sized for the largest N.
    let n_max = *sizes.iter().max().unwrap();
    let machine = MachineConfig::builder()
        .boards(boards)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity((n_max.div_ceil(4 * boards).max(64)).next_power_of_two())
        .build()
        .expect("valid bench machine");

    let report = run_kernel_bench(&machine, &sizes, blocksteps, 2003);

    for entry in &report.entries {
        let rows: Vec<Vec<String>> = entry
            .variants
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.3}", r.wall_seconds),
                    format!("{}", r.interactions),
                    format!("{:.4e}", r.interactions_per_sec()),
                    format!(
                        "{:.2}x",
                        entry.speedup_over_scalar(&r.label).unwrap_or(f64::NAN)
                    ),
                    format!("{:016x}", r.state_hash),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Kernel bench — N={}, {boards} boards, {blocksteps} blocksteps",
                entry.n
            ),
            &[
                "kernel",
                "wall [s]",
                "interactions",
                "inter/s",
                "vs scalar",
                "state hash",
            ],
            &rows,
        );
        println!("bitwise identical: {}\n", entry.bitwise_identical());
    }

    if !report.bitwise_identical() {
        eprintln!("ERROR: kernels diverged bitwise — every kernel must reproduce the oracle");
        std::process::exit(1);
    }

    std::fs::write("BENCH_kernel.json", report.to_json() + "\n").expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");
}
