//! Force-kernel A/B comparison — `BENCH_kernel.json`.
//!
//! Runs the same Plummer integration twice — once on the per-interaction
//! scalar reference oracle, once on the batched structure-of-arrays
//! kernel — verifies the two land on bitwise-identical particle state,
//! and reports host wall-clock and interactions per second per kernel.
//!
//! The bitwise verdict is **asserted** (exit 1 on divergence): the
//! batched kernel's whole contract is same bits, less host time.  The
//! speedup itself is printed and recorded in the JSON; `ci.sh` uses it
//! as a regression guard (batched must not fall below the oracle).
//!
//! Usage: `kernel_bench [N] [BLOCKSTEPS] [BOARDS]`
//! (defaults 256 / 24 / 2 — CI-sized; larger N amortises per-pass decode
//! and shows the kernel's steady-state throughput).
//!
//! Output: prints a table and writes `BENCH_kernel.json` to the current
//! directory.

use grape6_bench::kernel::run_kernel_bench;
use grape6_bench::print_table;
use grape6_system::machine::MachineConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(256);
    let blocksteps: usize = args
        .next()
        .map(|a| a.parse().expect("BLOCKSTEPS must be an integer"))
        .unwrap_or(24);
    let boards: usize = args
        .next()
        .map(|a| a.parse().expect("BOARDS must be an integer"))
        .unwrap_or(2);

    let machine = MachineConfig::builder()
        .boards(boards)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity((n.div_ceil(4 * boards).max(64)).next_power_of_two())
        .build()
        .expect("valid bench machine");

    let report = run_kernel_bench(&machine, n, blocksteps, 2003);

    let row = |r: &grape6_bench::kernel::KernelRunResult| {
        vec![
            r.label.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{}", r.interactions),
            format!("{:.4e}", r.interactions_per_sec()),
            format!("{:016x}", r.state_hash),
        ]
    };
    print_table(
        &format!("Kernel bench — N={n}, {boards} boards, {blocksteps} blocksteps"),
        &[
            "kernel",
            "wall [s]",
            "interactions",
            "inter/s",
            "state hash",
        ],
        &[row(&report.scalar), row(&report.batched)],
    );
    println!(
        "\nbitwise identical: {}   batched speedup: {:.2}x",
        report.bitwise_identical(),
        report.speedup(),
    );

    if !report.bitwise_identical() {
        eprintln!("ERROR: kernels diverged bitwise — the batched kernel must reproduce the oracle");
        std::process::exit(1);
    }

    std::fs::write("BENCH_kernel.json", report.to_json() + "\n").expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");
}
