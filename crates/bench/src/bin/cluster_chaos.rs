//! Kill and stall real OS ranks mid-run; demand the clean digest back.
//!
//! The CI smoke for the real-transport recovery stack: spawns a 4-rank
//! TCP cluster of `cluster_node` processes in supervised mode, SIGKILLs
//! one rank mid-wave (then respawns it from its coordinated
//! checkpoint), SIGSTOPs another past the read-deadline budget (the
//! survivors shrink it away; SIGCONT later must end in eviction), and
//! verifies every finisher prints the digest an unfaulted run prints —
//! bit for bit.  See `grape6_bench::chaos_cluster` for the schedule and
//! the judged invariants.
//!
//! Writes `BENCH_chaos.json` (digest match, recovery counts, the
//! recovery wall clock that folds into the six-term breakdown's sync
//! term) and exits 1 on any violated invariant.
//!
//! Usage: `cluster_chaos [steps] [step_delay_ms]` (defaults 280, 20).

use std::io::Write;

use grape6_bench::chaos_cluster::{run_cluster_chaos, ClusterChaosConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let node_bin = std::env::current_exe()
        .expect("own path")
        .with_file_name("cluster_node");
    if !node_bin.exists() {
        eprintln!("cluster_chaos: sibling binary {node_bin:?} not built");
        std::process::exit(2);
    }
    let dir = std::env::temp_dir().join(format!("g6-cluster-chaos-{}", std::process::id()));
    let mut cfg = ClusterChaosConfig::new(node_bin, dir);
    if let Some(steps) = args.first().and_then(|a| a.parse().ok()) {
        cfg.steps = steps;
    }
    if let Some(delay) = args.get(1).and_then(|a| a.parse().ok()) {
        cfg.step_delay_ms = delay;
    }

    println!(
        "cluster_chaos: {} ranks x {} waves (delay {} ms): SIGKILL rank {} at {} ms (respawn \
         +{} ms), SIGSTOP rank {} at {} ms (SIGCONT +{} ms)",
        cfg.p,
        cfg.steps,
        cfg.step_delay_ms,
        cfg.kill_rank,
        cfg.kill_after_ms,
        cfg.respawn_after_ms,
        cfg.stall_rank,
        cfg.stall_after_ms,
        cfg.resume_after_ms
    );
    let report = run_cluster_chaos(&cfg);
    for n in &report.nodes {
        println!(
            "  rank {}{}: exit {:?}, digest {}",
            n.orank,
            if n.respawned { " (respawned)" } else { "" },
            n.exit,
            n.digest
                .map(|d| format!("{d:016x}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "  clean digest {:016x}; {} recoveries, {:.3} s inside recovery, {} heartbeats, {} \
         deadline expiries",
        report.clean_digest,
        report.recoveries,
        report.recover_seconds,
        report.heartbeats,
        report.recv_timeouts
    );

    let schedule = serde_json::json!({
        "kill_rank": cfg.kill_rank,
        "kill_after_ms": cfg.kill_after_ms,
        "respawn_after_ms": cfg.respawn_after_ms,
        "stall_rank": cfg.stall_rank,
        "stall_after_ms": cfg.stall_after_ms,
        "resume_after_ms": cfg.resume_after_ms,
    });
    // Recovery coordination is synchronisation traffic: heartbeats and
    // recover rounds both fold into Term::Sync in the six-term
    // breakdown, so the wall clock is recorded under that name.
    let recovery_cost = serde_json::json!({
        "term": "sync",
        "recover_seconds": report.recover_seconds,
        "heartbeats": report.heartbeats,
        "recv_timeouts": report.recv_timeouts,
    });
    let nodes: Vec<serde_json::Value> = report
        .nodes
        .iter()
        .map(|n| {
            serde_json::json!({
                "rank": n.orank,
                "respawned": n.respawned,
                "exit": n.exit,
                "digest": n.digest.map(|d| format!("{d:016x}")),
            })
        })
        .collect();
    let payload = serde_json::json!({
        "ranks": cfg.p,
        "steps": cfg.steps,
        "recs_per_rank": cfg.recs,
        "schedule": schedule,
        "clean_digest": format!("{:016x}", report.clean_digest),
        "digests_match": report.ok() || report
            .violations
            .iter()
            .all(|v| !v.contains("digest")),
        "recoveries": report.recoveries,
        "recovery_cost": recovery_cost,
        "nodes": nodes,
        "violations": report.violations,
    });
    let mut f = std::fs::File::create("BENCH_chaos.json").expect("create BENCH_chaos.json");
    writeln!(f, "{}", serde_json::to_string_pretty(&payload).unwrap()).expect("write json");

    if !report.ok() {
        eprintln!("cluster_chaos: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("cluster_chaos: all invariants held; BENCH_chaos.json written");
}
