//! Overlap/parallelism benchmark: serial vs rayon-parallel board walk vs
//! split-phase overlapped blocksteps.
//!
//! The paper's tuning story (§4–§5) rests on two concurrency claims:
//!
//! 1. the board array is *genuinely concurrent* — all boards of a host
//!    port crunch their j-segments at once, and §3.4 block floating-point
//!    summation makes the parallel walk bitwise identical to a serial
//!    one;
//! 2. the host's predictor/corrector arithmetic *hides behind* the
//!    pipelines via the split-phase `g6calc_firsthalf`/`g6calc_lasthalf`
//!    calls, so a blockstep costs `max(host, grape)` instead of the sum.
//!
//! This module runs the same Plummer integration under three schedules —
//! serial walk + blocking steps, parallel walk + blocking steps, parallel
//! walk + overlapped steps — and reports:
//!
//! * a **bitwise identity** verdict over the final particle bits (the
//!   §3.4 reproducibility property, also asserted by
//!   `tests/overlap_bitwise.rs`);
//! * measured **real** wall-clock per schedule.  On a single-core
//!   container (or under the offline sequential rayon stub) the parallel
//!   walk cannot beat the serial one, so the speedups are *reported, not
//!   asserted* — run on a multi-core host with real rayon to see them;
//! * measured **virtual** wall per schedule from recorded spans, next to
//!   the analytic `BlockTime::wall(mode)` prediction — the simulator's
//!   own account of what the overlap buys on the modelled hardware.

use std::time::Instant;

use grape6_core::engine::Grape6Engine;
use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_model::perf::{MachineLayout, PerfModel};
use grape6_system::machine::MachineConfig;
use grape6_trace::{HostRates, MeasuredBlockTime, OverlapMode, Tracer};
use nbody_core::force::ForceEngine;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::breakdown::timing_for;

/// One schedule's outcome.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Schedule label (`serial`, `parallel`, `overlapped`).
    pub label: &'static str,
    /// Real wall-clock seconds for the measured blocksteps.
    pub wall_seconds: f64,
    /// Virtual wall from recorded spans (timeline extent, summed over
    /// blocksteps) — shrinks under overlap while the term sums don't.
    pub virtual_wall: f64,
    /// Six-term breakdown summed over the blocksteps.
    pub measured: MeasuredBlockTime,
    /// Analytic `Σ BlockTime::wall(mode)` for the same block sequence.
    pub model_wall: f64,
    /// FNV-1a hash over the final particle bits (pos/vel/t/dt/acc/jerk).
    pub state_hash: u64,
}

/// The three-schedule comparison.
#[derive(Clone, Debug)]
pub struct OverlapReport {
    /// System size.
    pub n: usize,
    /// Boards in the machine under test.
    pub boards: usize,
    /// Blocksteps measured per schedule.
    pub blocksteps: usize,
    /// Serial board walk, blocking blocksteps.
    pub serial: ScheduleResult,
    /// Rayon-parallel board walk, blocking blocksteps.
    pub parallel: ScheduleResult,
    /// Rayon-parallel board walk, split-phase overlapped blocksteps.
    pub overlapped: ScheduleResult,
}

impl OverlapReport {
    /// Did all three schedules land on identical particle bits?
    pub fn bitwise_identical(&self) -> bool {
        self.serial.state_hash == self.parallel.state_hash
            && self.serial.state_hash == self.overlapped.state_hash
    }

    /// Real wall-clock speedup of the parallel walk over the serial one.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial.wall_seconds / self.parallel.wall_seconds.max(1e-12)
    }

    /// Real wall-clock speedup of overlapped steps over blocking ones
    /// (both on the parallel walk).
    pub fn overlap_speedup(&self) -> f64 {
        self.parallel.wall_seconds / self.overlapped.wall_seconds.max(1e-12)
    }

    /// Virtual-time gain of the overlap: blocking virtual wall over
    /// overlapped virtual wall — the simulator's account of the §4–§5
    /// split-phase win, independent of host core count.
    pub fn virtual_overlap_gain(&self) -> f64 {
        self.parallel.virtual_wall / self.overlapped.virtual_wall.max(1e-300)
    }

    /// Hand-rolled JSON (offline-safe) for `BENCH_overlap.json`.
    pub fn to_json(&self) -> String {
        let sched = |s: &ScheduleResult| {
            format!(
                "{{\"label\":\"{}\",\"wall_seconds\":{:e},\"virtual_wall\":{:e},\
                 \"model_wall\":{:e},\"measured\":{},\"state_hash\":{}}}",
                s.label,
                s.wall_seconds,
                s.virtual_wall,
                s.model_wall,
                s.measured.to_json(),
                s.state_hash,
            )
        };
        format!(
            "{{\"n\":{},\"boards\":{},\"blocksteps\":{},\
             \"bitwise_identical\":{},\
             \"parallel_speedup\":{:e},\"overlap_speedup\":{:e},\
             \"virtual_overlap_gain\":{:e},\
             \"serial\":{},\"parallel\":{},\"overlapped\":{}}}",
            self.n,
            self.boards,
            self.blocksteps,
            self.bitwise_identical(),
            self.parallel_speedup(),
            self.overlap_speedup(),
            self.virtual_overlap_gain(),
            sched(&self.serial),
            sched(&self.parallel),
            sched(&self.overlapped),
        )
    }
}

/// FNV-1a over the bit patterns that define the integration state.
pub fn state_hash(set: &ParticleSet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: f64| {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for i in 0..set.n() {
        for v in [set.pos[i], set.vel[i], set.acc[i], set.jerk[i]] {
            eat(v.x);
            eat(v.y);
            eat(v.z);
        }
        eat(set.t[i]);
        eat(set.dt[i]);
    }
    h
}

/// One execution schedule: how the board walk and the blockstep run.
#[derive(Clone, Copy)]
struct Schedule {
    label: &'static str,
    board_parallel: bool,
    overlap: bool,
}

/// Run `blocksteps` blocksteps of a seeded Plummer model under one
/// schedule and measure it.
fn run_schedule(
    machine: &MachineConfig,
    model: &PerfModel,
    n: usize,
    blocksteps: usize,
    seed: u64,
    sched: Schedule,
) -> ScheduleResult {
    let Schedule {
        label,
        board_parallel,
        overlap,
    } = sched;
    let mode = if overlap {
        OverlapMode::Overlapped
    } else {
        OverlapMode::Sequential
    };
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let mut engine = Grape6Engine::try_new(machine, n).unwrap();
    engine.set_board_parallel(board_parallel);
    let icfg = IntegratorConfig {
        overlap,
        ..IntegratorConfig::default()
    };
    let mut it = HermiteIntegrator::new(engine, set, icfg);
    let tb = match mode {
        OverlapMode::Sequential => model.grape.engine_timebase(),
        OverlapMode::Overlapped => model.grape.engine_timebase_overlapped(),
    };
    it.engine_mut().set_timebase(tb);
    it.engine_mut().set_tracer(Tracer::enabled());
    it.set_tracer(Tracer::enabled());
    it.set_host_rates(HostRates {
        t_block_fixed: model.host.t_block_fixed,
        t_step: model.host.t_step(n as f64),
    });
    let vt0 = it.engine().vt();
    let mut measured = MeasuredBlockTime::default();
    let mut model_wall = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..blocksteps {
        let (_, n_b) = it.try_step_auto().expect("healthy hardware");
        measured.add(&MeasuredBlockTime::from_spans(&it.take_spans()));
        model_wall += model
            .block_time(MachineLayout::SingleHost, n, n_b)
            .wall(mode);
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    ScheduleResult {
        label,
        wall_seconds,
        virtual_wall: it.engine().vt() - vt0,
        measured,
        model_wall,
        state_hash: state_hash(it.particles()),
    }
}

/// The three-schedule comparison on `machine` for `blocksteps` steps of
/// an `n`-particle Plummer model.
pub fn run_overlap_bench(
    machine: &MachineConfig,
    n: usize,
    blocksteps: usize,
    seed: u64,
) -> OverlapReport {
    let model = PerfModel {
        grape: timing_for(machine),
        ..PerfModel::default()
    };
    let run = |label, board_parallel, overlap| {
        run_schedule(
            machine,
            &model,
            n,
            blocksteps,
            seed,
            Schedule {
                label,
                board_parallel,
                overlap,
            },
        )
    };
    let serial = run("serial", false, false);
    let parallel = run("parallel", true, false);
    let overlapped = run("overlapped", true, true);
    OverlapReport {
        n,
        boards: machine.boards,
        blocksteps,
        serial,
        parallel,
        overlapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_schedules_are_bitwise_identical_and_overlap_shrinks_the_wall() {
        let machine = MachineConfig::builder()
            .boards(2)
            .modules_per_board(2)
            .chips_per_module(1)
            .jmem_capacity(1024)
            .build()
            .unwrap();
        let report = run_overlap_bench(&machine, 96, 24, 11);
        assert!(report.bitwise_identical(), "schedules diverged bitwise");
        // The six term sums agree across schedules (same spans recorded,
        // different timeline layout)…
        assert!(
            (report.overlapped.measured.total() - report.parallel.measured.total()).abs()
                < 1e-9 * report.parallel.measured.total()
        );
        // …while the overlapped schedule's virtual wall is strictly
        // shorter, and the analytic wall agrees on the direction.
        assert!(
            report.overlapped.virtual_wall < report.parallel.virtual_wall,
            "overlap did not shrink the virtual wall: {} vs {}",
            report.overlapped.virtual_wall,
            report.parallel.virtual_wall
        );
        assert!(report.overlapped.model_wall < report.parallel.model_wall);
        assert!(report.virtual_overlap_gain() > 1.0);
        let json = report.to_json();
        assert!(json.contains("\"bitwise_identical\":true"), "{json}");
        assert!(json.contains("\"overlapped\""), "{json}");
    }
}
