//! Criterion micro-benchmarks of the simulated hardware's hot path.
//!
//! These measure the *simulator's* throughput (host wall clock), which is
//! what bounds how large a functional (bit-level) experiment the workspace
//! can run — the machine's own speed lives in virtual time and is covered
//! by the figure binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use grape6_arith::rsqrt::RsqrtCubedUnit;
use grape6_chip::chip::{Chip, ChipConfig};
use grape6_chip::pipeline::{interact, ExpSet, HwIParticle, PartialForce};
use grape6_chip::predictor::predict;
use grape6_chip::HwJParticle;
use nbody_core::force::JParticle;
use nbody_core::Vec3;

fn jp(k: usize) -> JParticle {
    let a = k as f64 * 0.37;
    JParticle {
        mass: 0.001,
        t0: 0.0,
        pos: Vec3::new(a.cos(), a.sin(), 0.1 * (k % 13) as f64 - 0.6),
        vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.0),
        acc: Vec3::new(0.01, -0.01, 0.0),
        jerk: Vec3::ZERO,
        snap: Vec3::ZERO,
    }
}

fn bench_interact(c: &mut Criterion) {
    let rsqrt = RsqrtCubedUnit::default();
    let ip = HwIParticle::from_host(Vec3::new(0.3, -0.2, 0.1), Vec3::new(0.05, 0.0, 0.0), 1e-4);
    let pj = predict(&HwJParticle::from_host(&jp(7)), 0.0);
    let exps = ExpSet::from_magnitudes(1.0, 1.0, 1.0);
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(1));
    g.bench_function("single_interaction", |b| {
        b.iter_batched(
            || PartialForce::new(exps),
            |mut pf| {
                interact(&rsqrt, &ip, &pj, &mut pf).unwrap();
                pf
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_chip_pass(c: &mut Criterion) {
    let mut chip = Chip::new(ChipConfig::default());
    let n_j = 1024;
    for k in 0..n_j {
        chip.load_j(k, &jp(k));
    }
    chip.set_time(0.0);
    let i_regs: Vec<HwIParticle> = (0..48)
        .map(|k| {
            HwIParticle::from_host(
                Vec3::new(0.01 * k as f64 - 0.2, 0.4, -0.3),
                Vec3::ZERO,
                1e-4,
            )
        })
        .collect();
    let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48];
    let mut g = c.benchmark_group("chip");
    g.sample_size(20);
    g.throughput(Throughput::Elements((48 * n_j) as u64));
    g.bench_function("pass_48i_1024j", |b| {
        b.iter(|| chip.compute_block(&i_regs, &exps).unwrap())
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let hw = HwJParticle::from_host(&jp(3));
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1));
    g.bench_function("predict_one", |b| b.iter(|| predict(&hw, 0.125)));
    g.finish();
}

criterion_group!(benches, bench_interact, bench_chip_pass, bench_predictor);
criterion_main!(benches);
