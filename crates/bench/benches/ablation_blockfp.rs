//! Ablation bench: block floating-point accumulation vs f64 summation.
//!
//! §3.4 chose block FP for the reduction tree because (a) fixed-point
//! adders are cheap in an FPGA and (b) the sum becomes order-independent.
//! This bench quantifies the *simulation* cost of that choice (the add
//! path plus the shift/round) against a plain f64 accumulation, and a
//! compensated (Kahan) sum as the software alternative that would restore
//! determinism on a conventional machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use grape6_arith::blockfp::BlockAccum;

fn values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| {
            let a = k as f64 * 0.618_033_988_749;
            (a.fract() - 0.5) * 1e-2
        })
        .collect()
}

fn bench_accumulation(c: &mut Criterion) {
    let vals = values(4096);
    let mut g = c.benchmark_group("accumulation_4096");
    g.throughput(Throughput::Elements(4096));

    g.bench_function("f64_sum", |b| {
        b.iter(|| {
            let mut s = 0.0f64;
            for &v in &vals {
                s += black_box(v);
            }
            s
        })
    });

    g.bench_function("kahan_sum", |b| {
        b.iter(|| {
            let (mut s, mut comp) = (0.0f64, 0.0f64);
            for &v in &vals {
                let y = black_box(v) - comp;
                let t = s + y;
                comp = (t - s) - y;
                s = t;
            }
            s
        })
    });

    g.bench_function("block_fp", |b| {
        b.iter(|| {
            let mut acc = BlockAccum::new(8);
            for &v in &vals {
                acc.add(black_box(v)).unwrap();
            }
            acc.to_f64()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_accumulation);
criterion_main!(benches);
