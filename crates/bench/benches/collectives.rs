//! Criterion bench: the fabric's collectives (host wall clock of the
//! *simulator* — thread spawn + channel traffic — which bounds how many
//! virtual-cluster experiments fit in a CI run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grape6_net::collectives::{allgather, barrier, central_barrier};
use grape6_net::fabric::run_ranks;
use grape6_net::link::LinkProfile;

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for p in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("butterfly", p), &p, |b, &p| {
            b.iter(|| {
                run_ranks::<u8, f64, _>(p, LinkProfile::intel_82540em(), |mut ep| {
                    for _ in 0..16 {
                        barrier(&mut ep).expect("lossless fabric");
                    }
                    ep.clock()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("central", p), &p, |b, &p| {
            b.iter(|| {
                run_ranks::<u8, f64, _>(p, LinkProfile::intel_82540em(), |mut ep| {
                    for _ in 0..16 {
                        central_barrier(&mut ep).expect("lossless fabric");
                    }
                    ep.clock()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("allgather_1k", p), &p, |b, &p| {
            b.iter(|| {
                run_ranks::<Vec<u8>, usize, _>(p, LinkProfile::intel_82540em(), |mut ep| {
                    let mine = vec![ep.rank() as u8; 1024];
                    let all = allgather(&mut ep, mine, 1024).expect("lossless fabric");
                    all.len()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
