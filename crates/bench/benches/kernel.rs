//! Criterion micro-benchmarks of the force-pass kernels.
//!
//! A/B/C of the per-interaction scalar oracle, the batched
//! structure-of-arrays kernel, and the runtime-dispatched SIMD-lane
//! kernel on the same chip pass (48 i × many j) — all produce identical
//! bits, so the only thing measured here is host throughput.  The
//! whole-blockstep comparison (and the JSON the CI regression guard
//! reads) lives in the `kernel_bench` binary.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grape6_chip::chip::{Chip, ChipConfig};
use grape6_chip::kernel::KernelMode;
use grape6_chip::pipeline::{ExpSet, HwIParticle};
use nbody_core::force::JParticle;
use nbody_core::Vec3;

fn jp(k: usize) -> JParticle {
    let a = k as f64 * 0.37;
    JParticle {
        mass: 0.001,
        t0: 0.0,
        pos: Vec3::new(a.cos(), a.sin(), 0.1 * (k % 13) as f64 - 0.6),
        vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.0),
        acc: Vec3::new(0.01, -0.01, 0.0),
        jerk: Vec3::ZERO,
        snap: Vec3::ZERO,
    }
}

fn loaded_chip(n_j: usize) -> (Chip, Vec<HwIParticle>, Vec<ExpSet>) {
    let mut chip = Chip::new(ChipConfig::default());
    for k in 0..n_j {
        chip.load_j(k, &jp(k));
    }
    chip.set_time(0.0);
    let i_regs: Vec<HwIParticle> = (0..48)
        .map(|k| {
            HwIParticle::from_host(
                Vec3::new(0.01 * k as f64 - 0.2, 0.4, -0.3),
                Vec3::ZERO,
                1e-4,
            )
        })
        .collect();
    let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48];
    (chip, i_regs, exps)
}

fn bench_kernels(c: &mut Criterion) {
    let n_j = 1024;
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);
    g.throughput(Throughput::Elements((48 * n_j) as u64));
    for mode in [KernelMode::Scalar, KernelMode::Batched, KernelMode::Simd] {
        let (mut chip, i_regs, exps) = loaded_chip(n_j);
        chip.set_kernel_mode(mode);
        g.bench_function(format!("pass_48i_1024j_{}", mode.name()), |b| {
            b.iter(|| chip.compute_block(&i_regs, &exps).unwrap())
        });
    }
    g.finish();
}

fn bench_kernels_nb(c: &mut Criterion) {
    let n_j = 1024;
    let mut g = c.benchmark_group("kernel_nb");
    g.sample_size(20);
    g.throughput(Throughput::Elements((48 * n_j) as u64));
    for mode in [KernelMode::Scalar, KernelMode::Batched, KernelMode::Simd] {
        let (mut chip, i_regs, exps) = loaded_chip(n_j);
        chip.set_kernel_mode(mode);
        let h2 = vec![0.01; 48];
        let mut lists: Vec<Vec<u32>> = Vec::new();
        g.bench_function(format!("nb_pass_48i_1024j_{}", mode.name()), |b| {
            b.iter(|| {
                chip.compute_block_nb(&i_regs, &exps, &h2, &mut lists)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_kernels_nb);
criterion_main!(benches);
