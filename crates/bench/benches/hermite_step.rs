//! Criterion bench: the Hermite block-timestep driver's step cost.
//!
//! Measures real blocksteps per second of the reference (f64) stack and
//! of the bit-level GRAPE-6 simulator stack at modest N — the numbers that
//! determine how long the calibration runs and functional experiments
//! take on a laptop.

use criterion::{criterion_group, criterion_main, Criterion};
use grape6_core::engine::Grape6Engine;
use grape6_core::{HermiteIntegrator, IntegratorConfig};
use grape6_system::machine::MachineConfig;
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_direct_steps(c: &mut Criterion) {
    let n = 1024;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(11));
    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    // Warm past the startup transient.
    for _ in 0..64 {
        it.step();
    }
    let mut g = c.benchmark_group("hermite");
    g.sample_size(20);
    g.bench_function("blockstep_direct_n1024", |b| b.iter(|| it.step()));
    g.finish();
}

fn bench_grape_steps(c: &mut Criterion) {
    let n = 256;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(12));
    let engine = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
    let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
    for _ in 0..16 {
        it.step();
    }
    let mut g = c.benchmark_group("hermite");
    g.sample_size(10);
    g.bench_function("blockstep_grapesim_n256", |b| b.iter(|| it.step()));
    g.finish();
}

criterion_group!(benches, bench_direct_steps, bench_grape_steps);
criterion_main!(benches);
