//! Criterion micro-benchmark of the predictor pipeline.
//!
//! Scalar per-particle `predict` vs the batched SoA `predict_batch` over
//! the same j-stream — bit-identical outputs, so the only thing measured
//! is host throughput.  The predictor runs once per chip pass over every
//! stored j-particle, so at small-N machine shapes it is a visible slice
//! of pass time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grape6_chip::jmem::HwJParticle;
use grape6_chip::predictor::{predict, predict_batch, PredictedJ};
use nbody_core::force::JParticle;
use nbody_core::Vec3;

fn j_stream(n: usize) -> Vec<HwJParticle> {
    (0..n)
        .map(|k| {
            let a = k as f64 * 0.37;
            HwJParticle::from_host(&JParticle {
                mass: 0.001,
                t0: 0.0,
                pos: Vec3::new(a.cos(), a.sin(), 0.1 * (k % 13) as f64 - 0.6),
                vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.02),
                acc: Vec3::new(0.01, -0.01, 0.003),
                jerk: Vec3::new(0.001, 0.002, -0.001),
                snap: Vec3::new(1e-4, -2e-4, 1e-4),
            })
        })
        .collect()
}

fn bench_predictor(c: &mut Criterion) {
    let n = 4096;
    let stream = j_stream(n);
    let t = 0.0625;
    let mut g = c.benchmark_group("predictor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(format!("predict_scalar_{n}j"), |b| {
        let mut out: Vec<PredictedJ> = Vec::with_capacity(n);
        b.iter(|| {
            out.clear();
            for p in &stream {
                out.push(predict(p, t));
            }
            out.len()
        })
    });
    g.bench_function(format!("predict_batch_{n}j"), |b| {
        let mut out: Vec<PredictedJ> = Vec::with_capacity(n);
        b.iter(|| {
            predict_batch(&stream, t, &mut out);
            out.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
