//! Criterion bench: the Barnes–Hut baseline (tree build + full traversal).
//!
//! Gives the particle-steps/s of the §5 comparison table its measured
//! basis on this machine.

use bh_tree::traverse::tree_forces;
use bh_tree::tree::{Octree, TreeConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tree(c: &mut Criterion) {
    let n = 10_000;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(21));
    let cfg = TreeConfig::default();

    let mut g = c.benchmark_group("bh_tree");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("build_10k", |b| {
        b.iter(|| Octree::build(&set.mass, &set.pos, &cfg))
    });
    let tree = Octree::build(&set.mass, &set.pos, &cfg);
    g.bench_function("traverse_theta0.6_10k", |b| {
        b.iter(|| tree_forces(&tree, 0.6, 1e-4))
    });
    g.bench_function("traverse_theta0.3_10k", |b| {
        b.iter(|| tree_forces(&tree, 0.3, 1e-4))
    });
    g.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
