//! The 2-D hardware network of GRAPE units (paper fig. 12 and §3.2).
//!
//! "Instead of two-dimensional grid of host processors, we can construct a
//! two-dimensional grid of GRAPE hardwares with orthogonal broadcast
//! networks.  The GRAPE hardwares in the same row store the same data to
//! their particle memories.  When they calculate the forces, GRAPEs in the
//! same column receive the same particles and calculate forces on them
//! from particles in the memory.  The calculated results on boards in the
//! same column are then summed and returned to the host."
//!
//! Concretely, for an `r × c` grid:
//!
//! * the j-particles are divided into `r` subsets; subset `k` is
//!   **replicated** across every unit of row `k`;
//! * the hosts drive `c` independent i-blocks, one per column — the
//!   machine's i-parallelism is `48·c`;
//! * the force on column `q`'s block is the exact block-FP sum down
//!   column `q` (over the `r` j-subsets).
//!
//! Because the reduction is block floating point, the result is identical
//! to a flat single-unit machine holding all the j-particles — tested
//! bit-for-bit below — while each unit streams only `N/r` particles per
//! pass and `c` blocks are served concurrently.

use grape6_arith::blockfp::BlockFpError;
use grape6_chip::pipeline::{ExpSet, HwIParticle, PartialForce};
use nbody_core::force::JParticle;
use rayon::prelude::*;

use crate::unit::{GrapeUnit, LoadError};

/// An `r × c` grid of GRAPE units behind orthogonal broadcast networks.
#[derive(Clone, Debug)]
pub struct GridNetwork<U> {
    units: Vec<U>, // row-major: unit (row, col) at index row*cols + col
    rows: usize,
    cols: usize,
    used: usize,
    last_pass: u64,
    total: u64,
    /// Reduction latency per column merge, in cycles (network-board hop).
    pub reduction_latency: u64,
}

impl<U: GrapeUnit> GridNetwork<U> {
    /// Assemble a grid from `rows·cols` units (row-major order).
    pub fn new(units: Vec<U>, rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        assert_eq!(units.len(), rows * cols, "grid shape mismatch");
        Self {
            units,
            rows,
            cols,
            used: 0,
            last_pass: 0,
            total: 0,
            reduction_latency: crate::ensemble::DEFAULT_REDUCTION_LATENCY,
        }
    }

    /// Grid rows (j-subsets).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (concurrent i-blocks).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total i-particles served in parallel (48 per column unit).
    pub fn i_parallelism(&self) -> usize {
        self.cols * 48
    }

    /// j-capacity: each row holds a distinct subset (replicated over its
    /// columns), so capacity is the per-unit capacity times `rows`.
    pub fn capacity(&self) -> usize {
        let per_unit = self.units[0].capacity();
        per_unit * self.rows
    }

    /// j-particles loaded.
    pub fn n_j(&self) -> usize {
        self.used
    }

    /// Broadcast the system time to every unit.
    pub fn set_time(&mut self, t: f64) {
        for u in &mut self.units {
            u.set_time(t);
        }
    }

    /// Load j-particle `addr`: row `addr % rows` stores it **in every
    /// column** (the row broadcast network writes all memories at once).
    pub fn load_j(&mut self, addr: usize, p: &JParticle) -> Result<(), LoadError> {
        let row = addr % self.rows;
        let local = addr / self.rows;
        for col in 0..self.cols {
            self.units[row * self.cols + col]
                .load_j(local, p)
                .map_err(|e| match e {
                    LoadError::NoActiveChildren { .. } => LoadError::NoActiveChildren { addr },
                    LoadError::CapacityExceeded { .. } => LoadError::CapacityExceeded {
                        addr,
                        capacity: self.capacity(),
                    },
                })?;
        }
        self.used = self.used.max(addr + 1);
        Ok(())
    }

    /// One grid pass: column `q` computes forces on `blocks[q]` (≤ 48
    /// i-particles each) from **all** j-particles.  Returns the per-column
    /// results.
    pub fn compute_grid(
        &mut self,
        blocks: &[Vec<HwIParticle>],
        exps: &[Vec<ExpSet>],
    ) -> Result<Vec<Vec<PartialForce>>, BlockFpError> {
        assert_eq!(blocks.len(), self.cols, "one i-block per column");
        assert_eq!(exps.len(), self.cols);
        let rows = self.rows;
        let cols = self.cols;
        // Columns are independent pipelines; compute them in parallel.
        // Split `units` into per-column mutable views via chunking rows.
        let results: Vec<Result<Vec<PartialForce>, BlockFpError>> = {
            // Reorganise &mut access: collect raw column indices first.
            let mut per_col: Vec<Vec<&mut U>> = (0..cols).map(|_| Vec::new()).collect();
            for (idx, u) in self.units.iter_mut().enumerate() {
                per_col[idx % cols].push(u);
            }
            per_col
                .into_par_iter()
                .enumerate()
                .map(|(q, col_units)| {
                    let block = &blocks[q];
                    let e = &exps[q];
                    let mut acc: Option<Vec<PartialForce>> = None;
                    for u in col_units {
                        let part = u.compute_block(block, e)?;
                        match &mut acc {
                            None => acc = Some(part),
                            Some(a) => {
                                for (x, y) in a.iter_mut().zip(&part) {
                                    x.merge(y)?;
                                }
                            }
                        }
                    }
                    Ok(acc.unwrap_or_default())
                })
                .collect()
        };
        // Critical path: slowest unit + one reduction per row joined.
        let slowest = self
            .units
            .iter()
            .map(|u| u.last_pass_cycles())
            .max()
            .unwrap_or(0);
        self.last_pass = slowest + self.reduction_latency * (rows.max(1) as u64 - 1).max(1);
        self.total += self.last_pass;
        results.into_iter().collect()
    }

    /// Cycles of the most recent grid pass (critical path).
    pub fn last_pass_cycles(&self) -> u64 {
        self.last_pass
    }

    /// Accumulated critical-path cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Total interactions across all units.
    pub fn total_interactions(&self) -> u64 {
        self.units.iter().map(|u| u.total_interactions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::ChipUnit;
    use grape6_chip::chip::{Chip, ChipConfig};
    use nbody_core::Vec3;

    fn chips(n: usize) -> Vec<ChipUnit> {
        (0..n)
            .map(|_| ChipUnit::new(Chip::new(ChipConfig::default())))
            .collect()
    }

    fn particle(k: usize) -> JParticle {
        let a = k as f64 * 0.29;
        JParticle {
            mass: 0.004 + 0.0001 * (k % 9) as f64,
            pos: Vec3::new(a.sin(), (1.9 * a).cos(), 0.07 * (k % 13) as f64 - 0.4),
            vel: Vec3::new(0.02 * a.cos(), 0.0, -0.02 * a.sin()),
            ..Default::default()
        }
    }

    fn blocks_for(cols: usize) -> (Vec<Vec<HwIParticle>>, Vec<Vec<ExpSet>>) {
        let mk = |seed: usize| -> Vec<HwIParticle> {
            (0..48)
                .map(|k| {
                    let p = particle(seed * 100 + k);
                    HwIParticle::from_host(p.pos, p.vel, 1e-4)
                })
                .collect()
        };
        let blocks: Vec<_> = (0..cols).map(mk).collect();
        let exps = vec![vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48]; cols];
        (blocks, exps)
    }

    #[test]
    fn grid_matches_flat_unit_bitwise() {
        // 2×2 grid vs a single chip: each column's result must equal the
        // flat machine's result on the same block, bit for bit.
        let n = 120;
        let mut grid = GridNetwork::new(chips(4), 2, 2);
        let mut flat = ChipUnit::new(Chip::new(ChipConfig::default()));
        for k in 0..n {
            grid.load_j(k, &particle(k)).unwrap();
            flat.load_j(k, &particle(k)).unwrap();
        }
        grid.set_time(0.0);
        flat.set_time(0.0);
        let (blocks, exps) = blocks_for(2);
        let got = grid.compute_grid(&blocks, &exps).unwrap();
        for q in 0..2 {
            let want = flat.compute_block(&blocks[q], &exps[q]).unwrap();
            for k in 0..48 {
                for c in 0..3 {
                    assert_eq!(got[q][k].acc[c].mant(), want[k].acc[c].mant());
                    assert_eq!(got[q][k].jerk[c].mant(), want[k].jerk[c].mant());
                }
                assert_eq!(got[q][k].pot.mant(), want[k].pot.mant());
            }
        }
    }

    #[test]
    fn rows_divide_j_work() {
        // 2 rows: each unit streams only half the particles per pass.
        let n = 200;
        let mut grid = GridNetwork::new(chips(2), 2, 1);
        for k in 0..n {
            grid.load_j(k, &particle(k)).unwrap();
        }
        let (blocks, exps) = blocks_for(1);
        grid.compute_grid(&blocks, &exps).unwrap();
        // Each chip streamed 100 j: depth 30 + 8·100 plus one reduction.
        assert_eq!(
            grid.last_pass_cycles(),
            30 + 800 + crate::ensemble::DEFAULT_REDUCTION_LATENCY
        );
    }

    #[test]
    fn columns_multiply_i_parallelism() {
        let grid = GridNetwork::new(chips(4), 1, 4);
        assert_eq!(grid.i_parallelism(), 192);
        let grid = GridNetwork::new(chips(4), 4, 1);
        assert_eq!(grid.i_parallelism(), 48);
    }

    #[test]
    fn replication_and_capacity() {
        let mut grid = GridNetwork::new(chips(4), 2, 2);
        // Capacity counts distinct particles: per-unit × rows.
        assert_eq!(grid.capacity(), 2 * 16_384);
        grid.load_j(0, &particle(0)).unwrap();
        grid.load_j(1, &particle(1)).unwrap();
        assert_eq!(grid.n_j(), 2);
        // Row 0 (units 0 and 1) both hold particle 0; row 1 holds 1.
        assert_eq!(grid.units[0].n_j(), 1);
        assert_eq!(grid.units[1].n_j(), 1);
        assert_eq!(grid.units[2].n_j(), 1);
        assert_eq!(grid.units[3].n_j(), 1);
    }

    #[test]
    #[should_panic(expected = "grid shape mismatch")]
    fn wrong_shape_rejected() {
        let _ = GridNetwork::new(chips(3), 2, 2);
    }
}
