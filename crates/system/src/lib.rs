//! # grape6-system — modules, boards and the machine hierarchy
//!
//! The GRAPE-6 machine is a tree (paper §2, figs. 3–5):
//!
//! ```text
//! processor module  = 4 chips + FPGA summation unit
//! processor board   = 8 modules + broadcast network + reduction network
//! host port         = 4 boards behind a network board
//! cluster           = 4 hosts × 4 boards; full system = 4 clusters
//! ```
//!
//! Every level has the *same shape*: broadcast the i-particles to all
//! children, divide the j-particles among them, sum the partial forces on
//! the way back up.  Because the summation is block floating point
//! ([`grape6_arith::blockfp`]), the reduction is exact and the result is
//! independent of how many levels and children participate — the §3.4
//! reproducibility property, which this crate's tests verify at machine
//! scale.
//!
//! The hierarchy is therefore implemented once, generically:
//!
//! * [`unit::GrapeUnit`] — what it means to be "a piece of GRAPE hardware"
//!   (hold j-particles, compute on 48 i-particles, report cycles);
//! * [`ensemble::Ensemble`] — the broadcast/divide/reduce combinator;
//! * [`machine`] — concrete type aliases ([`machine::Module`],
//!   [`machine::Board`], [`machine::BoardArray`]) plus the
//!   [`machine::MachineConfig`] describing the real 2048-chip machine and
//!   its smaller laboratory configurations.

pub mod ensemble;
pub mod grid;
pub mod machine;
pub mod selftest;
pub mod unit;

pub use ensemble::Ensemble;
pub use grid::GridNetwork;
pub use machine::{Board, BoardArray, ConfigError, MachineConfig, MachineConfigBuilder, Module};
pub use selftest::{self_test, SelfTestConfig, SelfTestFailure, SelfTestReport};
pub use unit::GrapeUnit;
