//! The broadcast / divide / reduce combinator.
//!
//! A processor module is four chips plus a summation FPGA; a board is eight
//! modules plus broadcast and reduction networks; a host port is four boards
//! behind a network board.  Structurally identical (paper §2: "The structure
//! of a processor module is the same as that of the processor board"), so
//! [`Ensemble`] implements the pattern once:
//!
//! * **j-distribution** — global address `a` maps to child `a % k`, local
//!   address `a / k` (round-robin keeps the children's memory streams
//!   balanced, so the critical-path pass time is minimal);
//! * **broadcast** — every child receives the same i-block and system time;
//! * **reduce** — partial forces are merged with the exact block
//!   floating-point adders; a fixed [`Ensemble::reduction_latency`] is added
//!   to the critical path per level, modelling the FPGA adder tree and the
//!   LVDS hop.
//!
//! Children execute concurrently (rayon) exactly as the hardware does; the
//! block-FP merge makes the result independent of execution order.

use grape6_arith::blockfp::BlockFpError;
use grape6_chip::pipeline::{ExpSet, HwIParticle, PartialForce};
use nbody_core::force::JParticle;
use rayon::prelude::*;

use crate::unit::GrapeUnit;

/// Result of a neighbour-aware pass: partial forces plus per-i neighbour
/// address lists.
type NbResult = Result<(Vec<PartialForce>, Vec<Vec<u32>>), BlockFpError>;

/// Default reduction-tree latency charged per hierarchy level, in chip
/// clock cycles (FPGA adder pass + serial-link hop).
pub const DEFAULT_REDUCTION_LATENCY: u64 = 32;

/// A homogeneous group of child units acting as one larger unit.
#[derive(Clone, Debug)]
pub struct Ensemble<U> {
    children: Vec<U>,
    used: usize,
    last_pass: u64,
    total: u64,
    /// Cycles added to the critical path for this level's reduction.
    pub reduction_latency: u64,
}

impl<U: GrapeUnit> Ensemble<U> {
    /// Group `children` into one unit.
    pub fn new(children: Vec<U>) -> Self {
        assert!(!children.is_empty(), "an ensemble needs at least one child");
        Self {
            children,
            used: 0,
            last_pass: 0,
            total: 0,
            reduction_latency: DEFAULT_REDUCTION_LATENCY,
        }
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Always false (construction requires ≥ 1 child).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Immutable access to the children (tests, inspection).
    pub fn children(&self) -> &[U] {
        &self.children
    }
}

impl<U: GrapeUnit> GrapeUnit for Ensemble<U> {
    fn capacity(&self) -> usize {
        self.children.iter().map(|c| c.capacity()).sum()
    }

    fn n_j(&self) -> usize {
        self.used
    }

    fn set_time(&mut self, t: f64) {
        for c in &mut self.children {
            c.set_time(t);
        }
    }

    fn load_j(&mut self, addr: usize, p: &JParticle) {
        let k = self.children.len();
        self.children[addr % k].load_j(addr / k, p);
        self.used = self.used.max(addr + 1);
    }

    fn compute_block(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        // All children run concurrently on the same broadcast i-block.
        let partials: Vec<Result<Vec<PartialForce>, BlockFpError>> = self
            .children
            .par_iter_mut()
            .map(|c| c.compute_block(i, exps))
            .collect();
        // Critical path = slowest child + this level's reduction.
        let slowest = self
            .children
            .iter()
            .map(|c| c.last_pass_cycles())
            .max()
            .unwrap_or(0);
        self.last_pass = slowest + self.reduction_latency;
        self.total += self.last_pass;
        // Exact reduction.
        let mut iter = partials.into_iter();
        let mut acc = iter.next().expect("≥1 child")?;
        for res in iter {
            let forces = res?;
            for (a, f) in acc.iter_mut().zip(&forces) {
                a.merge(f)?;
            }
        }
        Ok(acc)
    }

    fn compute_block_nb(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
        h2: &[f64],
    ) -> Result<(Vec<PartialForce>, Vec<Vec<u32>>), BlockFpError> {
        let k = self.children.len() as u32;
        let results: Vec<NbResult> = self
            .children
            .par_iter_mut()
            .map(|c| c.compute_block_nb(i, exps, h2))
            .collect();
        let slowest = self
            .children
            .iter()
            .map(|c| c.last_pass_cycles())
            .max()
            .unwrap_or(0);
        self.last_pass = slowest + self.reduction_latency;
        self.total += self.last_pass;
        let mut acc: Option<Vec<PartialForce>> = None;
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); i.len()];
        for (child_idx, res) in results.into_iter().enumerate() {
            let (forces, child_lists) = res?;
            match &mut acc {
                None => acc = Some(forces),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&forces) {
                        x.merge(y)?;
                    }
                }
            }
            // Translate the child's local addresses to this level's space
            // (inverse of the round-robin distribution in `load_j`).
            for (slot, child_nb) in lists.iter_mut().zip(&child_lists) {
                for &local in child_nb {
                    slot.push(local * k + child_idx as u32);
                }
            }
        }
        for slot in &mut lists {
            slot.sort_unstable();
        }
        Ok((acc.expect("≥1 child"), lists))
    }

    fn last_pass_cycles(&self) -> u64 {
        self.last_pass
    }

    fn total_cycles(&self) -> u64 {
        self.total
    }

    fn total_interactions(&self) -> u64 {
        self.children.iter().map(|c| c.total_interactions()).sum()
    }

    fn clear(&mut self) {
        for c in &mut self.children {
            c.clear();
        }
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::ChipUnit;
    use grape6_chip::chip::{Chip, ChipConfig};
    use nbody_core::Vec3;

    fn chips(n: usize) -> Vec<ChipUnit> {
        (0..n)
            .map(|_| ChipUnit::new(Chip::new(ChipConfig::default())))
            .collect()
    }

    fn particle(k: usize) -> JParticle {
        let a = k as f64 * 0.37;
        JParticle {
            mass: 0.01 + 0.001 * (k % 7) as f64,
            pos: Vec3::new(a.cos(), a.sin(), 0.05 * (k % 11) as f64 - 0.25),
            vel: Vec3::new(-a.sin() * 0.1, a.cos() * 0.1, 0.0),
            ..Default::default()
        }
    }

    #[test]
    fn round_robin_distribution_balances() {
        let mut e = Ensemble::new(chips(4));
        for k in 0..17 {
            e.load_j(k, &particle(k));
        }
        assert_eq!(e.n_j(), 17);
        // 17 over 4 children: 5,4,4,4.
        let counts: Vec<usize> = e.children().iter().map(|c| c.n_j()).collect();
        assert_eq!(counts, vec![5, 4, 4, 4]);
    }

    #[test]
    fn ensemble_matches_single_chip_bitwise() {
        // The same 60 particles through one chip vs a 4-chip ensemble:
        // mantissas identical (§3.4 partition independence, machine level).
        let n = 60;
        let mut single = ChipUnit::new(Chip::new(ChipConfig::default()));
        let mut group = Ensemble::new(chips(4));
        for k in 0..n {
            single.load_j(k, &particle(k));
            group.load_j(k, &particle(k));
        }
        single.set_time(0.0);
        group.set_time(0.0);
        let i: Vec<HwIParticle> = (0..48)
            .map(|k| {
                let p = particle(k + 100);
                HwIParticle::from_host(p.pos, p.vel, 1e-4)
            })
            .collect();
        let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48];
        let a = single.compute_block(&i, &exps).unwrap();
        let b = group.compute_block(&i, &exps).unwrap();
        for k in 0..48 {
            for c in 0..3 {
                assert_eq!(a[k].acc[c].mant(), b[k].acc[c].mant(), "i={k} c={c}");
                assert_eq!(a[k].jerk[c].mant(), b[k].jerk[c].mant());
            }
            assert_eq!(a[k].pot.mant(), b[k].pot.mant());
        }
    }

    #[test]
    fn critical_path_beats_serial_sum() {
        // 4 chips with 100 j each: pass = 30 + 8·100 + reduction, not 4×.
        let mut e = Ensemble::new(chips(4));
        for k in 0..400 {
            e.load_j(k, &particle(k));
        }
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(50.0, 50.0, 50.0)];
        e.compute_block(&i, &exps).unwrap();
        assert_eq!(
            e.last_pass_cycles(),
            30 + 8 * 100 + DEFAULT_REDUCTION_LATENCY
        );
        assert_eq!(e.total_interactions(), 400);
    }

    #[test]
    fn nested_ensembles_compose() {
        // A "module" of 2 chips inside a "board" of 2 modules = 4 chips.
        let modules: Vec<Ensemble<ChipUnit>> =
            (0..2).map(|_| Ensemble::new(chips(2))).collect();
        let mut board = Ensemble::new(modules);
        for k in 0..100 {
            board.load_j(k, &particle(k));
        }
        board.set_time(0.0);
        assert_eq!(board.n_j(), 100);
        assert_eq!(board.capacity(), 4 * 16_384);
        let i = [HwIParticle::from_host(Vec3::new(0.5, 0.5, 0.5), Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(20.0, 20.0, 20.0)];
        let f = board.compute_block(&i, &exps).unwrap();
        // Compare against one flat chip.
        let mut flat = ChipUnit::new(Chip::new(ChipConfig::default()));
        for k in 0..100 {
            flat.load_j(k, &particle(k));
        }
        flat.set_time(0.0);
        let g = flat.compute_block(&i, &exps).unwrap();
        assert_eq!(f[0].acc[0].mant(), g[0].acc[0].mant());
        assert_eq!(f[0].pot.mant(), g[0].pot.mant());
        // Two reduction levels on the critical path: 25 j on the fullest
        // chip ⇒ 30 + 200 + 2·latency.
        assert_eq!(
            board.last_pass_cycles(),
            30 + 8 * 25 + 2 * DEFAULT_REDUCTION_LATENCY
        );
    }

    #[test]
    fn neighbour_addresses_translate_through_hierarchy() {
        // Load 40 particles into a 3-chip ensemble; the neighbour lists
        // must come back in GLOBAL addresses, matching brute force.
        let n = 40;
        let mut e = Ensemble::new(chips(3));
        for k in 0..n {
            e.load_j(k, &particle(k));
        }
        e.set_time(0.0);
        let probe_src = particle(5);
        let i = [HwIParticle::from_host(probe_src.pos, probe_src.vel, 1e-4)];
        let exps = [ExpSet::from_magnitudes(10.0, 10.0, 10.0)];
        let h2 = 0.36; // h = 0.6
        let (_, lists) = e.compute_block_nb(&i, &exps, &[h2]).unwrap();
        let want: Vec<u32> = (0..n)
            .filter(|&j| {
                let d2 = (particle(j).pos - probe_src.pos).norm2();
                d2 > 0.0 && d2 < h2
            })
            .map(|j| j as u32)
            .collect();
        assert_eq!(lists[0], want);
    }

    #[test]
    fn clear_resets_occupancy_not_counters() {
        let mut e = Ensemble::new(chips(2));
        for k in 0..10 {
            e.load_j(k, &particle(k));
        }
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(20.0, 20.0, 20.0)];
        e.compute_block(&i, &exps).unwrap();
        let cycles = e.total_cycles();
        assert!(cycles > 0);
        e.clear();
        assert_eq!(e.n_j(), 0);
        assert_eq!(e.total_cycles(), cycles);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::<ChipUnit>::new(vec![]);
    }
}
