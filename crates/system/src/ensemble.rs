//! The broadcast / divide / reduce combinator.
//!
//! A processor module is four chips plus a summation FPGA; a board is eight
//! modules plus broadcast and reduction networks; a host port is four boards
//! behind a network board.  Structurally identical (paper §2: "The structure
//! of a processor module is the same as that of the processor board"), so
//! [`Ensemble`] implements the pattern once:
//!
//! * **j-distribution** — global address `a` maps to child `a % k`, local
//!   address `a / k` (round-robin keeps the children's memory streams
//!   balanced, so the critical-path pass time is minimal);
//! * **broadcast** — every child receives the same i-block and system time;
//! * **reduce** — partial forces are merged with the exact block
//!   floating-point adders; a fixed [`Ensemble::reduction_latency`] is added
//!   to the critical path per level, modelling the FPGA adder tree and the
//!   LVDS hop.
//!
//! Children execute concurrently (rayon) exactly as the hardware does; the
//! block-FP merge makes the result independent of execution order.

use grape6_arith::blockfp::BlockFpError;
use grape6_chip::kernel::KernelMode;
use grape6_chip::pipeline::{ExpSet, HwIParticle, PartialForce};
use grape6_fault::{ChipFault, ReductionFaultSchedule};
use nbody_core::force::JParticle;
use rayon::prelude::*;

use crate::unit::{GrapeUnit, LoadError};

/// Default reduction-tree latency charged per hierarchy level, in chip
/// clock cycles (FPGA adder pass + serial-link hop).
pub const DEFAULT_REDUCTION_LATENCY: u64 = 32;

/// A homogeneous group of child units acting as one larger unit.
#[derive(Clone, Debug)]
pub struct Ensemble<U> {
    children: Vec<U>,
    /// Which children are in service.  Masked (failed) children take no
    /// j-particles and contribute nothing to forces or the critical path;
    /// the round-robin distribution runs over the survivors only.
    active: Vec<bool>,
    used: usize,
    last_pass: u64,
    total: u64,
    /// Compute passes issued to this ensemble (drives scheduled
    /// reduction glitches).
    passes: u64,
    /// Injected reduction-network fault, if any.
    reduction_fault: Option<ReductionFaultSchedule>,
    /// Walk children with rayon (`true`, the hardware-faithful default —
    /// all children genuinely run at once) or strictly in sequence
    /// (`false`, the serial baseline).  Bitwise-invisible either way.
    parallel: bool,
    /// Cycles added to the critical path for this level's reduction.
    pub reduction_latency: u64,
    /// Per-child neighbour-list scratch, one buffer per child (masked
    /// children keep an empty one).  Handing each child its own buffer
    /// keeps the concurrent walk race-free and makes the steady state of
    /// [`GrapeUnit::compute_block_nb`] allocation-free.
    nb_scratch: Vec<Vec<Vec<u32>>>,
}

impl<U: GrapeUnit> Ensemble<U> {
    /// Group `children` into one unit.
    pub fn new(children: Vec<U>) -> Self {
        assert!(!children.is_empty(), "an ensemble needs at least one child");
        Self {
            active: vec![true; children.len()],
            nb_scratch: vec![Vec::new(); children.len()],
            children,
            used: 0,
            last_pass: 0,
            total: 0,
            passes: 0,
            reduction_fault: None,
            parallel: true,
            reduction_latency: DEFAULT_REDUCTION_LATENCY,
        }
    }

    /// Whether compute passes walk the children concurrently.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Always false (construction requires ≥ 1 child).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Immutable access to the children (tests, inspection).
    pub fn children(&self) -> &[U] {
        &self.children
    }

    /// Mutable access to the children (self-test drives them directly).
    pub fn children_mut(&mut self) -> &mut [U] {
        &mut self.children
    }

    /// Per-child service flags.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Children currently in service.
    pub fn n_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Compute passes issued so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Indices of the in-service children, in order — the domain of the
    /// round-robin j-distribution.
    fn active_indices(&self) -> Vec<usize> {
        (0..self.children.len())
            .filter(|&k| self.active[k])
            .collect()
    }

    /// True if this pass's reduction result comes back corrupted.
    fn reduction_glitches_now(&self) -> bool {
        match &self.reduction_fault {
            Some(ReductionFaultSchedule::Permanent) => true,
            Some(ReductionFaultSchedule::AtPasses(v)) => v.contains(&self.passes),
            None => false,
        }
    }
}

impl<U: GrapeUnit> GrapeUnit for Ensemble<U> {
    fn capacity(&self) -> usize {
        self.children
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(c, _)| c.capacity())
            .sum()
    }

    fn n_j(&self) -> usize {
        self.used
    }

    fn set_time(&mut self, t: f64) {
        for c in &mut self.children {
            c.set_time(t);
        }
    }

    fn load_j(&mut self, addr: usize, p: &JParticle) -> Result<(), LoadError> {
        let act = self.active_indices();
        let k = act.len();
        if k == 0 {
            return Err(LoadError::NoActiveChildren { addr });
        }
        // A child error reports the address in *this* level's space — the
        // caller has no view of the round-robin subdivision.
        self.children[act[addr % k]]
            .load_j(addr / k, p)
            .map_err(|e| match e {
                LoadError::NoActiveChildren { .. } => LoadError::NoActiveChildren { addr },
                LoadError::CapacityExceeded { .. } => LoadError::CapacityExceeded {
                    addr,
                    capacity: self.capacity(),
                },
            })?;
        self.used = self.used.max(addr + 1);
        Ok(())
    }

    fn compute_block(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        self.passes += 1;
        let glitch = self.reduction_glitches_now();
        // All in-service children run concurrently on the same broadcast
        // i-block (or in sequence for the serial baseline — same bits
        // either way); masked children are never driven.
        let active = &self.active;
        let partials: Vec<Option<Result<Vec<PartialForce>, BlockFpError>>> = if self.parallel {
            self.children
                .par_iter_mut()
                .enumerate()
                .map(|(k, c)| active[k].then(|| c.compute_block(i, exps)))
                .collect()
        } else {
            self.children
                .iter_mut()
                .enumerate()
                .map(|(k, c)| active[k].then(|| c.compute_block(i, exps)))
                .collect()
        };
        // Critical path = slowest in-service child + this level's reduction.
        let slowest = self
            .children
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(c, _)| c.last_pass_cycles())
            .max()
            .unwrap_or(0);
        self.last_pass = slowest + self.reduction_latency;
        self.total += self.last_pass;
        // Cycles above are charged even when the reduction network corrupts
        // the result — the chips ran; only the sum is unusable.  The error
        // is indistinguishable from a block-exponent parity fault, which is
        // exactly how the host detects it.
        if glitch {
            return Err(BlockFpError::ExponentMismatch { left: 0, right: 1 });
        }
        // Exact reduction over the survivors.
        let mut acc: Option<Vec<PartialForce>> = None;
        for res in partials.into_iter().flatten() {
            let forces = res?;
            match &mut acc {
                None => acc = Some(forces),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&forces) {
                        x.merge(y)?;
                    }
                }
            }
        }
        // A fully-masked ensemble contributes nothing (the caller decides
        // whether an empty machine is an error).
        Ok(acc.unwrap_or_else(|| exps.iter().map(|&e| PartialForce::new(e)).collect()))
    }

    fn compute_block_nb(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
        h2: &[f64],
        lists: &mut Vec<Vec<u32>>,
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        self.passes += 1;
        let glitch = self.reduction_glitches_now();
        let active = &self.active;
        // Each child fills its own scratch buffer, so the concurrent walk
        // never shares a list and repeat passes reuse the allocations.
        let results: Vec<Option<Result<Vec<PartialForce>, BlockFpError>>> = if self.parallel {
            self.children
                .par_iter_mut()
                .zip(self.nb_scratch.par_iter_mut())
                .enumerate()
                .map(|(k, (c, buf))| active[k].then(|| c.compute_block_nb(i, exps, h2, buf)))
                .collect()
        } else {
            self.children
                .iter_mut()
                .zip(self.nb_scratch.iter_mut())
                .enumerate()
                .map(|(k, (c, buf))| active[k].then(|| c.compute_block_nb(i, exps, h2, buf)))
                .collect()
        };
        let slowest = self
            .children
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(c, _)| c.last_pass_cycles())
            .max()
            .unwrap_or(0);
        self.last_pass = slowest + self.reduction_latency;
        self.total += self.last_pass;
        if glitch {
            return Err(BlockFpError::ExponentMismatch { left: 0, right: 1 });
        }
        // Address translation inverts the round-robin over the *survivors*:
        // j-distribution child index = position in the active list.
        let k = self.n_active() as u32;
        let mut acc: Option<Vec<PartialForce>> = None;
        lists.resize_with(i.len(), Vec::new);
        for slot in lists.iter_mut() {
            slot.clear();
        }
        let mut active_pos: u32 = 0;
        for (child_idx, res) in results.into_iter().enumerate() {
            let Some(res) = res else { continue };
            let forces = res?;
            match &mut acc {
                None => acc = Some(forces),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&forces) {
                        x.merge(y)?;
                    }
                }
            }
            // Translate the child's local addresses to this level's space
            // (inverse of the round-robin distribution in `load_j`).
            for (slot, child_nb) in lists.iter_mut().zip(&self.nb_scratch[child_idx]) {
                for &local in child_nb {
                    slot.push(local * k + active_pos);
                }
            }
            active_pos += 1;
        }
        for slot in lists.iter_mut() {
            slot.sort_unstable();
        }
        Ok(acc.unwrap_or_else(|| exps.iter().map(|&e| PartialForce::new(e)).collect()))
    }

    fn last_pass_cycles(&self) -> u64 {
        self.last_pass
    }

    fn total_cycles(&self) -> u64 {
        self.total
    }

    fn total_interactions(&self) -> u64 {
        self.children.iter().map(|c| c.total_interactions()).sum()
    }

    fn clear(&mut self) {
        for c in &mut self.children {
            c.clear();
        }
        self.used = 0;
    }

    fn mask_path(&mut self, path: &[usize]) -> bool {
        let Some(&idx) = path.first() else {
            return false; // an ensemble cannot mask itself from inside
        };
        if idx >= self.children.len() {
            return false;
        }
        if path.len() == 1 {
            let was = self.active[idx];
            self.active[idx] = false;
            was
        } else {
            let r = self.children[idx].mask_path(&path[1..]);
            // Cascade: a child with no surviving capacity is dead weight on
            // the round-robin — mask it at this level too.
            if self.children[idx].capacity() == 0 {
                self.active[idx] = false;
            }
            r
        }
    }

    fn inject_chip_fault(&mut self, path: &[usize], fault: &ChipFault) -> bool {
        match path.first() {
            Some(&idx) if idx < self.children.len() => {
                self.children[idx].inject_chip_fault(&path[1..], fault)
            }
            _ => false,
        }
    }

    fn inject_reduction_fault(&mut self, path: &[usize], sched: &ReductionFaultSchedule) -> bool {
        match path.first() {
            None => {
                self.reduction_fault = Some(sched.clone());
                true
            }
            Some(&idx) if idx < self.children.len() => {
                self.children[idx].inject_reduction_fault(&path[1..], sched)
            }
            _ => false,
        }
    }

    fn alive_chips(&self) -> usize {
        self.children
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(c, _)| c.alive_chips())
            .sum()
    }

    fn pass_count(&self) -> u64 {
        self.passes
    }

    fn restore_pass_count(&mut self, passes: u64) {
        self.passes = passes;
        for c in &mut self.children {
            c.restore_pass_count(passes);
        }
    }

    fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
        for c in &mut self.children {
            c.set_parallel(parallel);
        }
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        for c in &mut self.children {
            c.set_kernel_mode(mode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::ChipUnit;
    use grape6_chip::chip::{Chip, ChipConfig};
    use nbody_core::Vec3;

    fn chips(n: usize) -> Vec<ChipUnit> {
        (0..n)
            .map(|_| ChipUnit::new(Chip::new(ChipConfig::default())))
            .collect()
    }

    fn particle(k: usize) -> JParticle {
        let a = k as f64 * 0.37;
        JParticle {
            mass: 0.01 + 0.001 * (k % 7) as f64,
            pos: Vec3::new(a.cos(), a.sin(), 0.05 * (k % 11) as f64 - 0.25),
            vel: Vec3::new(-a.sin() * 0.1, a.cos() * 0.1, 0.0),
            ..Default::default()
        }
    }

    #[test]
    fn round_robin_distribution_balances() {
        let mut e = Ensemble::new(chips(4));
        for k in 0..17 {
            e.load_j(k, &particle(k)).unwrap();
        }
        assert_eq!(e.n_j(), 17);
        // 17 over 4 children: 5,4,4,4.
        let counts: Vec<usize> = e.children().iter().map(|c| c.n_j()).collect();
        assert_eq!(counts, vec![5, 4, 4, 4]);
    }

    #[test]
    fn ensemble_matches_single_chip_bitwise() {
        // The same 60 particles through one chip vs a 4-chip ensemble:
        // mantissas identical (§3.4 partition independence, machine level).
        let n = 60;
        let mut single = ChipUnit::new(Chip::new(ChipConfig::default()));
        let mut group = Ensemble::new(chips(4));
        for k in 0..n {
            single.load_j(k, &particle(k)).unwrap();
            group.load_j(k, &particle(k)).unwrap();
        }
        single.set_time(0.0);
        group.set_time(0.0);
        let i: Vec<HwIParticle> = (0..48)
            .map(|k| {
                let p = particle(k + 100);
                HwIParticle::from_host(p.pos, p.vel, 1e-4)
            })
            .collect();
        let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48];
        let a = single.compute_block(&i, &exps).unwrap();
        let b = group.compute_block(&i, &exps).unwrap();
        for k in 0..48 {
            for c in 0..3 {
                assert_eq!(a[k].acc[c].mant(), b[k].acc[c].mant(), "i={k} c={c}");
                assert_eq!(a[k].jerk[c].mant(), b[k].jerk[c].mant());
            }
            assert_eq!(a[k].pot.mant(), b[k].pot.mant());
        }
    }

    #[test]
    fn serial_walk_matches_parallel_walk_bitwise() {
        // §3.4: the block-FP merge is order-independent, so the rayon walk
        // and the strictly sequential walk must produce identical bits
        // (and identical critical-path cycle counts).
        let n = 60;
        let mut par = Ensemble::new(chips(4));
        let mut ser = Ensemble::new(chips(4));
        ser.set_parallel(false);
        assert!(par.is_parallel() && !ser.is_parallel());
        for k in 0..n {
            par.load_j(k, &particle(k)).unwrap();
            ser.load_j(k, &particle(k)).unwrap();
        }
        par.set_time(0.0);
        ser.set_time(0.0);
        let i: Vec<HwIParticle> = (0..48)
            .map(|k| {
                let p = particle(k + 100);
                HwIParticle::from_host(p.pos, p.vel, 1e-4)
            })
            .collect();
        let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 48];
        let a = par.compute_block(&i, &exps).unwrap();
        let b = ser.compute_block(&i, &exps).unwrap();
        for k in 0..48 {
            for c in 0..3 {
                assert_eq!(a[k].acc[c].mant(), b[k].acc[c].mant(), "i={k} c={c}");
                assert_eq!(a[k].jerk[c].mant(), b[k].jerk[c].mant());
            }
            assert_eq!(a[k].pot.mant(), b[k].pot.mant());
        }
        assert_eq!(par.last_pass_cycles(), ser.last_pass_cycles());
    }

    #[test]
    fn critical_path_beats_serial_sum() {
        // 4 chips with 100 j each: pass = 30 + 8·100 + reduction, not 4×.
        let mut e = Ensemble::new(chips(4));
        for k in 0..400 {
            e.load_j(k, &particle(k)).unwrap();
        }
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(50.0, 50.0, 50.0)];
        e.compute_block(&i, &exps).unwrap();
        assert_eq!(
            e.last_pass_cycles(),
            30 + 8 * 100 + DEFAULT_REDUCTION_LATENCY
        );
        assert_eq!(e.total_interactions(), 400);
    }

    #[test]
    fn nested_ensembles_compose() {
        // A "module" of 2 chips inside a "board" of 2 modules = 4 chips.
        let modules: Vec<Ensemble<ChipUnit>> = (0..2).map(|_| Ensemble::new(chips(2))).collect();
        let mut board = Ensemble::new(modules);
        for k in 0..100 {
            board.load_j(k, &particle(k)).unwrap();
        }
        board.set_time(0.0);
        assert_eq!(board.n_j(), 100);
        assert_eq!(board.capacity(), 4 * 16_384);
        let i = [HwIParticle::from_host(
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::ZERO,
            1e-2,
        )];
        let exps = [ExpSet::from_magnitudes(20.0, 20.0, 20.0)];
        let f = board.compute_block(&i, &exps).unwrap();
        // Compare against one flat chip.
        let mut flat = ChipUnit::new(Chip::new(ChipConfig::default()));
        for k in 0..100 {
            flat.load_j(k, &particle(k)).unwrap();
        }
        flat.set_time(0.0);
        let g = flat.compute_block(&i, &exps).unwrap();
        assert_eq!(f[0].acc[0].mant(), g[0].acc[0].mant());
        assert_eq!(f[0].pot.mant(), g[0].pot.mant());
        // Two reduction levels on the critical path: 25 j on the fullest
        // chip ⇒ 30 + 200 + 2·latency.
        assert_eq!(
            board.last_pass_cycles(),
            30 + 8 * 25 + 2 * DEFAULT_REDUCTION_LATENCY
        );
    }

    #[test]
    fn neighbour_addresses_translate_through_hierarchy() {
        // Load 40 particles into a 3-chip ensemble; the neighbour lists
        // must come back in GLOBAL addresses, matching brute force.
        let n = 40;
        let mut e = Ensemble::new(chips(3));
        for k in 0..n {
            e.load_j(k, &particle(k)).unwrap();
        }
        e.set_time(0.0);
        let probe_src = particle(5);
        let i = [HwIParticle::from_host(probe_src.pos, probe_src.vel, 1e-4)];
        let exps = [ExpSet::from_magnitudes(10.0, 10.0, 10.0)];
        let h2 = 0.36; // h = 0.6
        let mut lists = Vec::new();
        e.compute_block_nb(&i, &exps, &[h2], &mut lists).unwrap();
        let want: Vec<u32> = (0..n)
            .filter(|&j| {
                let d2 = (particle(j).pos - probe_src.pos).norm2();
                d2 > 0.0 && d2 < h2
            })
            .map(|j| j as u32)
            .collect();
        assert_eq!(lists[0], want);
    }

    #[test]
    fn clear_resets_occupancy_not_counters() {
        let mut e = Ensemble::new(chips(2));
        for k in 0..10 {
            e.load_j(k, &particle(k)).unwrap();
        }
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(20.0, 20.0, 20.0)];
        e.compute_block(&i, &exps).unwrap();
        let cycles = e.total_cycles();
        assert!(cycles > 0);
        e.clear();
        assert_eq!(e.n_j(), 0);
        assert_eq!(e.total_cycles(), cycles);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::<ChipUnit>::new(vec![]);
    }

    #[test]
    fn fully_masked_ensemble_load_is_a_typed_error() {
        let mut e = Ensemble::new(chips(2));
        assert!(e.mask_path(&[0]));
        assert!(e.mask_path(&[1]));
        let err = e.load_j(3, &particle(3)).unwrap_err();
        assert_eq!(err, LoadError::NoActiveChildren { addr: 3 });
        assert!(err.to_string().contains("no in-service children"));
    }

    #[test]
    fn overfull_ensemble_reports_its_own_address_space() {
        // 2 chips × 16384: global address 2·16384 overflows; the error must
        // carry the ensemble-level address and capacity, not the child's.
        let mut e = Ensemble::new(chips(2));
        let cap = e.capacity();
        let err = e.load_j(cap, &particle(0)).unwrap_err();
        assert_eq!(
            err,
            LoadError::CapacityExceeded {
                addr: cap,
                capacity: cap
            }
        );
    }

    #[test]
    fn masked_child_is_skipped_and_results_stay_exact() {
        // 4-chip ensemble with one chip masked before loading must agree
        // bitwise with a 3-chip ensemble: the round-robin runs over the
        // survivors, and block FP makes the partition invisible.
        let n = 45;
        let mut degraded = Ensemble::new(chips(4));
        assert!(degraded.mask_path(&[1]));
        assert!(!degraded.mask_path(&[1]), "second mask is a no-op");
        assert_eq!(degraded.n_active(), 3);
        assert_eq!(degraded.capacity(), 3 * 16_384);
        let mut healthy = Ensemble::new(chips(3));
        for k in 0..n {
            degraded.load_j(k, &particle(k)).unwrap();
            healthy.load_j(k, &particle(k)).unwrap();
        }
        degraded.set_time(0.0);
        healthy.set_time(0.0);
        let i: Vec<HwIParticle> = (0..8)
            .map(|k| {
                let p = particle(k + 100);
                HwIParticle::from_host(p.pos, p.vel, 1e-4)
            })
            .collect();
        let exps = vec![ExpSet::from_magnitudes(5.0, 5.0, 5.0); 8];
        let a = degraded.compute_block(&i, &exps).unwrap();
        let b = healthy.compute_block(&i, &exps).unwrap();
        for k in 0..8 {
            assert_eq!(a[k].acc[0].mant(), b[k].acc[0].mant(), "i={k}");
            assert_eq!(a[k].pot.mant(), b[k].pot.mant());
        }
        assert_eq!(degraded.alive_chips(), 3);
    }

    #[test]
    fn masked_child_neighbour_addresses_stay_global() {
        let n = 40;
        let mut e = Ensemble::new(chips(3));
        assert!(e.mask_path(&[2]));
        for k in 0..n {
            e.load_j(k, &particle(k)).unwrap();
        }
        e.set_time(0.0);
        let probe_src = particle(5);
        let i = [HwIParticle::from_host(probe_src.pos, probe_src.vel, 1e-4)];
        let exps = [ExpSet::from_magnitudes(10.0, 10.0, 10.0)];
        let h2 = 0.36;
        let mut lists = Vec::new();
        e.compute_block_nb(&i, &exps, &[h2], &mut lists).unwrap();
        let want: Vec<u32> = (0..n)
            .filter(|&j| {
                let d2 = (particle(j).pos - probe_src.pos).norm2();
                d2 > 0.0 && d2 < h2
            })
            .map(|j| j as u32)
            .collect();
        assert_eq!(lists[0], want);
    }

    #[test]
    fn scheduled_reduction_glitch_fails_exactly_once() {
        let mut e = Ensemble::new(chips(2));
        for k in 0..20 {
            e.load_j(k, &particle(k)).unwrap();
        }
        e.inject_reduction_fault(&[], &ReductionFaultSchedule::AtPasses(vec![2]));
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2)];
        let exps = [ExpSet::from_magnitudes(20.0, 20.0, 20.0)];
        let ok1 = e.compute_block(&i, &exps).unwrap();
        let cycles_after_1 = e.total_cycles();
        let err = e.compute_block(&i, &exps);
        assert!(
            matches!(err, Err(BlockFpError::ExponentMismatch { .. })),
            "pass 2 must come back corrupted"
        );
        // The failed pass still burned cycles (the chips ran).
        assert!(e.total_cycles() > cycles_after_1);
        let ok3 = e.compute_block(&i, &exps).unwrap();
        assert_eq!(ok1[0].pot.mant(), ok3[0].pot.mant(), "recompute is exact");
        assert_eq!(e.passes(), 3);
    }

    #[test]
    fn cascade_masks_exhausted_parents() {
        // Kill both modules of board 0 (via the full path): the board
        // itself must drop out of the board-array round-robin.
        let boards: Vec<Ensemble<Ensemble<ChipUnit>>> = (0..2)
            .map(|_| Ensemble::new((0..2).map(|_| Ensemble::new(chips(2))).collect()))
            .collect();
        let mut array = Ensemble::new(boards);
        assert_eq!(array.alive_chips(), 8);
        assert!(array.mask_path(&[0, 0]));
        assert!(array.mask_path(&[0, 1]));
        assert_eq!(array.active(), &[false, true]);
        assert_eq!(array.alive_chips(), 4);
        assert_eq!(array.capacity(), 4 * 16_384);
        // Loading still works — everything lands on board 1.
        for k in 0..10 {
            array.load_j(k, &particle(k)).unwrap();
        }
        assert_eq!(array.children()[1].n_j(), 10);
    }
}
