//! Concrete machine configurations.
//!
//! The real machine (paper §2): 2048 chips = 4 chips/module × 8
//! modules/board × 16 boards/cluster × 4 clusters; each host computer owns
//! 4 boards behind a network board.  [`MachineConfig`] describes the slice
//! of hardware attached to **one host** (what `grape6-core` wraps as a
//! [`nbody_core::ForceEngine`]); multi-host topologies are built in
//! `grape6-parallel` from several such slices.
//!
//! For laptop-scale functional runs the same topology can be built with
//! fewer/smaller chips — the arithmetic (and hence the results) do not
//! depend on the partitioning, only the cycle counts do, and those follow
//! the configured geometry.

use grape6_chip::chip::{Chip, ChipConfig};

use crate::ensemble::Ensemble;
use crate::unit::ChipUnit;

/// Four chips + summation FPGA.
pub type Module = Ensemble<ChipUnit>;

/// Eight modules + broadcast/reduction networks.
pub type Board = Ensemble<Module>;

/// The boards attached to one host port (behind a network board).
pub type BoardArray = Ensemble<Board>;

/// Geometry of the hardware attached to one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Chips per processor module (4 in the real machine).
    pub chips_per_module: usize,
    /// Modules per processor board (8).
    pub modules_per_board: usize,
    /// Boards per host (4).
    pub boards: usize,
    /// Chip parameters.
    pub chip: ChipConfigLite,
}

/// The subset of [`ChipConfig`] a machine description pins down; kept
/// `Copy + Eq` so configurations can be table keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChipConfigLite {
    /// Pipelines per chip.
    pub pipelines: usize,
    /// VMP ways per pipeline.
    pub vmp_ways: usize,
    /// Clock in kHz (integral so the struct stays `Eq`).
    pub clock_khz: u64,
    /// j-memory capacity per chip.
    pub jmem_capacity: usize,
}

impl From<ChipConfigLite> for ChipConfig {
    fn from(l: ChipConfigLite) -> Self {
        ChipConfig {
            pipelines: l.pipelines,
            vmp_ways: l.vmp_ways,
            clock_hz: l.clock_khz as f64 * 1e3,
            jmem_capacity: l.jmem_capacity,
            ..ChipConfig::default()
        }
    }
}

impl Default for MachineConfig {
    /// One host of the real machine: 4 boards × 8 modules × 4 chips =
    /// 128 chips ≈ 3.94 Tflops peak.
    fn default() -> Self {
        Self::paper_host()
    }
}

/// A machine description that cannot be built.
///
/// [`MachineConfigBuilder::build`] validates the geometry before any
/// hardware is constructed, turning the ad-hoc struct-literal mistakes
/// (zero boards, a chip with no j-memory, an i-parallelism the broadcast
/// network cannot serve) into typed errors instead of downstream panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field (boards, modules, chips, pipelines, VMP ways,
    /// clock, j-memory) is zero.
    ZeroField {
        /// Name of the offending field.
        field: &'static str,
    },
    /// `pipelines × vmp_ways` must equal the broadcast i-parallelism of
    /// 48 the rest of the stack is built around (6 pipelines × 8-way
    /// virtual multiple pipelines in the real chip).
    WrongIParallelism {
        /// Configured pipelines per chip.
        pipelines: usize,
        /// Configured VMP ways per pipeline.
        vmp_ways: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroField { field } => write!(f, "machine config field `{field}` must be > 0"),
            Self::WrongIParallelism {
                pipelines,
                vmp_ways,
            } => write!(
                f,
                "pipelines ({pipelines}) × vmp_ways ({vmp_ways}) = {} but the \
                 broadcast network serves exactly 48 i-particles per pass",
                pipelines * vmp_ways
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated construction of a [`MachineConfig`].
///
/// Starts from the paper's per-host geometry ([`MachineConfig::paper_host`])
/// and lets callers override fields; [`MachineConfigBuilder::build`]
/// returns a typed [`ConfigError`] for shapes no GRAPE-6 could have.
///
/// ```
/// use grape6_system::machine::MachineConfig;
///
/// let cfg = MachineConfig::builder()
///     .boards(1)
///     .modules_per_board(2)
///     .chips_per_module(2)
///     .jmem_capacity(2_048)
///     .build()
///     .expect("valid geometry");
/// assert_eq!(cfg.total_chips(), 4);
/// assert!(MachineConfig::builder().boards(0).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MachineConfigBuilder {
    /// Start from the paper's per-host slice (4 boards × 8 modules ×
    /// 4 chips, 90 MHz, 16 384 j-slots per chip).
    pub const fn new() -> Self {
        Self {
            cfg: MachineConfig::paper_host(),
        }
    }

    /// Boards attached to the host port.
    pub const fn boards(mut self, n: usize) -> Self {
        self.cfg.boards = n;
        self
    }

    /// Processor modules per board.
    pub const fn modules_per_board(mut self, n: usize) -> Self {
        self.cfg.modules_per_board = n;
        self
    }

    /// Pipeline chips per module.
    pub const fn chips_per_module(mut self, n: usize) -> Self {
        self.cfg.chips_per_module = n;
        self
    }

    /// Hardwired force pipelines per chip.
    pub const fn pipelines(mut self, n: usize) -> Self {
        self.cfg.chip.pipelines = n;
        self
    }

    /// Virtual-multiple-pipeline ways per physical pipeline.
    pub const fn vmp_ways(mut self, n: usize) -> Self {
        self.cfg.chip.vmp_ways = n;
        self
    }

    /// Chip clock in kHz.
    pub const fn clock_khz(mut self, khz: u64) -> Self {
        self.cfg.chip.clock_khz = khz;
        self
    }

    /// j-memory capacity per chip, in particles.
    pub const fn jmem_capacity(mut self, n: usize) -> Self {
        self.cfg.chip.jmem_capacity = n;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        let c = self.cfg;
        for (field, v) in [
            ("boards", c.boards),
            ("modules_per_board", c.modules_per_board),
            ("chips_per_module", c.chips_per_module),
            ("pipelines", c.chip.pipelines),
            ("vmp_ways", c.chip.vmp_ways),
            ("jmem_capacity", c.chip.jmem_capacity),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        if c.chip.clock_khz == 0 {
            return Err(ConfigError::ZeroField { field: "clock_khz" });
        }
        if c.chip.pipelines * c.chip.vmp_ways != 48 {
            return Err(ConfigError::WrongIParallelism {
                pipelines: c.chip.pipelines,
                vmp_ways: c.chip.vmp_ways,
            });
        }
        Ok(c)
    }
}

impl MachineConfig {
    /// Validated construction, starting from the paper's host geometry.
    pub const fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::new()
    }

    /// The paper's per-host hardware slice (4 full boards).
    pub const fn paper_host() -> Self {
        Self {
            chips_per_module: 4,
            modules_per_board: 8,
            boards: 4,
            chip: ChipConfigLite {
                pipelines: 6,
                vmp_ways: 8,
                clock_khz: 90_000,
                jmem_capacity: 16_384,
            },
        }
    }

    /// A single board (a quarter host; used for partition-independence
    /// tests and entry-level benchmarks).
    pub const fn single_board() -> Self {
        Self {
            boards: 1,
            ..Self::paper_host()
        }
    }

    /// A deliberately small configuration for fast functional tests:
    /// 1 board × 2 modules × 2 chips with small memories.
    pub const fn test_small() -> Self {
        Self {
            chips_per_module: 2,
            modules_per_board: 2,
            boards: 1,
            chip: ChipConfigLite {
                pipelines: 6,
                vmp_ways: 8,
                clock_khz: 90_000,
                jmem_capacity: 2_048,
            },
        }
    }

    /// Total chips attached to the host.
    pub const fn total_chips(&self) -> usize {
        self.chips_per_module * self.modules_per_board * self.boards
    }

    /// j-particle capacity of the whole slice.
    pub const fn capacity(&self) -> usize {
        self.total_chips() * self.chip.jmem_capacity
    }

    /// Theoretical peak speed of the slice in flops
    /// (`chips × pipelines × clock × 57`).
    pub fn peak_flops(&self) -> f64 {
        self.total_chips() as f64
            * self.chip.pipelines as f64
            * (self.chip.clock_khz as f64 * 1e3)
            * nbody_core::FLOPS_PER_INTERACTION
    }

    /// Build the hardware: boards of modules of chips.
    pub fn build(&self) -> BoardArray {
        let chip_cfg: ChipConfig = self.chip.into();
        let boards: Vec<Board> = (0..self.boards)
            .map(|_| {
                let modules: Vec<Module> = (0..self.modules_per_board)
                    .map(|_| {
                        let chips: Vec<ChipUnit> = (0..self.chips_per_module)
                            .map(|_| ChipUnit::new(Chip::new(chip_cfg)))
                            .collect();
                        Ensemble::new(chips)
                    })
                    .collect();
                Ensemble::new(modules)
            })
            .collect();
        Ensemble::new(boards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::GrapeUnit;
    use grape6_chip::pipeline::{ExpSet, HwIParticle};
    use nbody_core::force::JParticle;
    use nbody_core::Vec3;

    #[test]
    fn builder_validates_geometry() {
        // Defaults are the paper host and the presets all pass validation.
        assert_eq!(
            MachineConfig::builder().build().unwrap(),
            MachineConfig::paper_host()
        );
        let small = MachineConfig::builder()
            .boards(1)
            .modules_per_board(2)
            .chips_per_module(2)
            .jmem_capacity(2_048)
            .build()
            .unwrap();
        assert_eq!(small, MachineConfig::test_small());
        // Zero anywhere is a typed error naming the field.
        let err = MachineConfig::builder().boards(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroField { field: "boards" });
        assert!(err.to_string().contains("boards"));
        assert!(MachineConfig::builder().jmem_capacity(0).build().is_err());
        assert!(MachineConfig::builder().clock_khz(0).build().is_err());
        // The broadcast network serves exactly 48 i-particles per pass.
        let err = MachineConfig::builder().vmp_ways(7).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::WrongIParallelism {
                pipelines: 6,
                vmp_ways: 7
            }
        );
        assert!(err.to_string().contains("48"));
        // 8 pipelines × 6 ways is still 48 — a legal exotic chip.
        assert!(MachineConfig::builder()
            .pipelines(8)
            .vmp_ways(6)
            .build()
            .is_ok());
    }

    #[test]
    fn paper_host_geometry() {
        let cfg = MachineConfig::paper_host();
        assert_eq!(cfg.total_chips(), 128);
        assert_eq!(cfg.capacity(), 128 * 16_384); // > 2M particles
                                                  // 128 chips × 30.78 Gflops ≈ 3.94 Tflops; ×16 hosts = 63.04 Tflops,
                                                  // the paper's quoted system peak.
        let host_peak = cfg.peak_flops();
        assert!((host_peak / 1e12 - 3.94).abs() < 0.01, "{host_peak:e}");
        assert!((host_peak * 16.0 / 1e12 - 63.04).abs() < 0.1);
    }

    #[test]
    fn build_produces_declared_shape() {
        let m = MachineConfig::test_small().build();
        assert_eq!(m.len(), 1);
        assert_eq!(m.children()[0].len(), 2);
        assert_eq!(m.children()[0].children()[0].len(), 2);
        assert_eq!(m.capacity(), 4 * 2048);
    }

    #[test]
    fn four_board_host_equals_single_board_bitwise() {
        // Same particles through the 4-board host and a 1-board machine:
        // §3.4 — "the calculated result is independent of the number of
        // processor chips used to calculate one force".
        let mut four = MachineConfig {
            chips_per_module: 2,
            modules_per_board: 2,
            boards: 4,
            ..MachineConfig::test_small()
        }
        .build();
        let mut one = MachineConfig::test_small().build();
        for k in 0..200usize {
            let a = k as f64 * 0.11;
            let p = JParticle {
                mass: 0.005,
                pos: Vec3::new(a.sin(), (a * 1.3).cos(), 0.1),
                vel: Vec3::new(0.0, 0.01 * a.cos(), 0.0),
                ..Default::default()
            };
            four.load_j(k, &p).unwrap();
            one.load_j(k, &p).unwrap();
        }
        four.set_time(0.0);
        one.set_time(0.0);
        let i: Vec<HwIParticle> = (0..48)
            .map(|k| {
                HwIParticle::from_host(
                    Vec3::new(0.3 + 0.01 * k as f64, -0.2, 0.0),
                    Vec3::ZERO,
                    1e-4,
                )
            })
            .collect();
        let exps = vec![ExpSet::from_magnitudes(10.0, 10.0, 10.0); 48];
        let a = four.compute_block(&i, &exps).unwrap();
        let b = one.compute_block(&i, &exps).unwrap();
        for k in 0..48 {
            assert_eq!(a[k].acc[0].mant(), b[k].acc[0].mant());
            assert_eq!(a[k].jerk[2].mant(), b[k].jerk[2].mant());
            assert_eq!(a[k].pot.mant(), b[k].pot.mant());
        }
        // But the 4-board machine is ~4× faster per pass (50 vs 200 j per
        // chip on the critical path).
        assert!(four.last_pass_cycles() < one.last_pass_cycles());
    }
}
