//! The interface every level of the machine hierarchy satisfies.

use grape6_arith::blockfp::BlockFpError;
use grape6_chip::chip::{Chip, I_PARALLEL_PER_CHIP};
use grape6_chip::jmem::StuckBit;
use grape6_chip::kernel::KernelMode;
use grape6_chip::pipeline::{ExpSet, HwIParticle, PartialForce};
use grape6_fault::{ChipFault, ReductionFaultSchedule};
use nbody_core::force::JParticle;

/// Writing a j-particle into the hierarchy failed.
///
/// Loads fail for machine-shape reasons — a degraded machine with no
/// in-service children left under the round-robin, or an address past the
/// (possibly shrunken) capacity.  Both used to be asserts; a host driving
/// a partially-failed machine needs them as values so it can redistribute
/// or refuse the system instead of crashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Every child that could have held the address is masked out.
    NoActiveChildren {
        /// The global j-address being written.
        addr: usize,
    },
    /// The address does not fit the unit's j-memory.
    CapacityExceeded {
        /// The global j-address being written.
        addr: usize,
        /// The unit's current capacity (degraded machines shrink).
        capacity: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoActiveChildren { addr } => {
                write!(f, "no in-service children left to hold j-particle {addr}")
            }
            Self::CapacityExceeded { addr, capacity } => {
                write!(f, "j-address {addr} out of range (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// A piece of GRAPE hardware: a chip, a module, a board, or a board array.
///
/// Invariants every implementation keeps:
///
/// * all children compute on the **same** i-particles (i-parallelism is
///   [`I_PARALLEL_PER_CHIP`] = 48 at every level; the broadcast network
///   hands the same block to every chip);
/// * the j-particles are **divided** among children, so capacity adds up;
/// * partial forces are merged exactly (block floating point), making the
///   result independent of the division;
/// * `last_pass_cycles` reports the *critical path* of the most recent
///   compute (children run in parallel; a level adds its reduction
///   latency).
pub trait GrapeUnit: Send {
    /// Total j-particle capacity.
    fn capacity(&self) -> usize;

    /// Number of j-particle addresses in use.
    fn n_j(&self) -> usize;

    /// Broadcast the system time for the predictor pipelines.
    fn set_time(&mut self, t: f64);

    /// Write the j-particle at global address `addr`.
    fn load_j(&mut self, addr: usize, p: &JParticle) -> Result<(), LoadError>;

    /// Compute forces on ≤ 48 i-particles from every stored j-particle.
    fn compute_block(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
    ) -> Result<Vec<PartialForce>, BlockFpError>;

    /// Like [`GrapeUnit::compute_block`], but also runs the hardware
    /// neighbour comparators: per i-particle, the **global j-addresses**
    /// with unsoftened `r² < h2[i]` (self-pairs excluded).  Every level of
    /// the hierarchy translates its children's local addresses back to the
    /// caller's address space.
    ///
    /// The lists are written into `lists`, which is resized to `i.len()`
    /// with each entry cleared and refilled — callers that keep the buffer
    /// across passes pay no per-i allocation in steady state.  On `Err`
    /// the list contents are unspecified.
    fn compute_block_nb(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
        h2: &[f64],
        lists: &mut Vec<Vec<u32>>,
    ) -> Result<Vec<PartialForce>, BlockFpError>;

    /// Clock cycles on the critical path of the most recent
    /// `compute_block` (0 if none has run).
    fn last_pass_cycles(&self) -> u64;

    /// Total cycles over all passes (critical path, accumulated).
    fn total_cycles(&self) -> u64;

    /// Total pairwise interactions over all passes (sums over children).
    fn total_interactions(&self) -> u64;

    /// Remove all j-particles.
    fn clear(&mut self);

    // ---- fault injection and degraded operation -------------------------
    //
    // Defaulted so exotic implementations (mocks, adaptors) keep compiling;
    // the chip and ensemble layers override them.

    /// Remove the unit at `path` (child indices, outermost first) from
    /// service.  An empty path masks the unit itself, where that makes
    /// sense.  Returns `true` if something was actually in service and is
    /// now masked.
    fn mask_path(&mut self, path: &[usize]) -> bool {
        let _ = path;
        false
    }

    /// Inject a chip-level fault at `path` (which must address a chip).
    /// Returns `true` if the fault landed.
    fn inject_chip_fault(&mut self, path: &[usize], fault: &ChipFault) -> bool {
        let _ = (path, fault);
        false
    }

    /// Corrupt the reduction network of the ensemble at `path` (empty path
    /// = this unit's own reduction).  Returns `true` if the fault landed.
    fn inject_reduction_fault(&mut self, path: &[usize], sched: &ReductionFaultSchedule) -> bool {
        let _ = (path, sched);
        false
    }

    /// Chips currently in service below (and including) this unit.
    fn alive_chips(&self) -> usize {
        0
    }

    /// Compute passes issued to this unit so far.  Scheduled transient
    /// reduction glitches run on this clock, so checkpoint/restart must
    /// carry it across; leaves have no pass-scheduled faults and report 0.
    fn pass_count(&self) -> u64 {
        0
    }

    /// Overwrite the pass counter (checkpoint restore).  The restore path
    /// rebuilds the machine from its fault plan — which re-runs the
    /// power-on self-test and its passes — then rewinds this clock to the
    /// captured value so `AtPasses` fault schedules fire on the same
    /// passes they would have in the uninterrupted run.
    fn restore_pass_count(&mut self, passes: u64) {
        let _ = passes;
    }

    /// Choose between the concurrent (rayon) and the strictly sequential
    /// child walk, recursively.  Results are bitwise identical either way —
    /// the block floating-point reduction is order- and partition-
    /// independent (§3.4) — so this only trades wall-clock for
    /// determinism-of-schedule (profiling, the serial baseline of the
    /// overlap benchmark).  Leaves have no children and ignore it.
    fn set_parallel(&mut self, parallel: bool) {
        let _ = parallel;
    }

    /// Select the force-pass kernel ([`KernelMode::Scalar`] oracle, the
    /// batched SoA kernel, or the runtime-dispatched SIMD-lane kernel),
    /// recursively.  Results are bitwise identical in every mode — each
    /// kernel performs the same rounded operations in the same order per
    /// (i, j) pair — so, like [`GrapeUnit::set_parallel`], this only
    /// changes host wall-clock.  Exotic implementations may ignore it.
    fn set_kernel_mode(&mut self, mode: KernelMode) {
        let _ = mode;
    }
}

/// A single chip is the leaf of the hierarchy.
///
/// The wrapper adds last-pass bookkeeping on top of
/// [`grape6_chip::chip::Chip`]'s cumulative counters.
#[derive(Clone, Debug)]
pub struct ChipUnit {
    chip: Chip,
    last_pass: u64,
    used: usize,
}

impl ChipUnit {
    /// Wrap a chip.
    pub fn new(chip: Chip) -> Self {
        Self {
            chip,
            last_pass: 0,
            used: 0,
        }
    }

    /// Access the underlying chip.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Mutable access to the underlying chip (fault injection, tests).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }
}

impl GrapeUnit for ChipUnit {
    fn capacity(&self) -> usize {
        self.chip.config().jmem_capacity
    }

    fn n_j(&self) -> usize {
        self.used
    }

    fn set_time(&mut self, t: f64) {
        self.chip.set_time(t);
    }

    fn load_j(&mut self, addr: usize, p: &JParticle) -> Result<(), LoadError> {
        let capacity = self.capacity();
        if addr >= capacity {
            return Err(LoadError::CapacityExceeded { addr, capacity });
        }
        self.chip.load_j(addr, p);
        self.used = self.used.max(addr + 1);
        Ok(())
    }

    fn compute_block(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        let before = self.chip.cycles();
        let r = self.chip.compute_block(i, exps);
        self.last_pass = self.chip.cycles() - before;
        r
    }

    fn compute_block_nb(
        &mut self,
        i: &[HwIParticle],
        exps: &[ExpSet],
        h2: &[f64],
        lists: &mut Vec<Vec<u32>>,
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        let before = self.chip.cycles();
        let r = self.chip.compute_block_nb(i, exps, h2, lists);
        self.last_pass = self.chip.cycles() - before;
        r
    }

    fn last_pass_cycles(&self) -> u64 {
        self.last_pass
    }

    fn total_cycles(&self) -> u64 {
        self.chip.cycles()
    }

    fn total_interactions(&self) -> u64 {
        self.chip.interactions()
    }

    fn clear(&mut self) {
        self.chip.clear();
        self.used = 0;
    }

    fn mask_path(&mut self, path: &[usize]) -> bool {
        if !path.is_empty() {
            return false;
        }
        let was_alive = !self.chip.is_dead();
        self.chip.set_dead(true);
        was_alive
    }

    fn inject_chip_fault(&mut self, path: &[usize], fault: &ChipFault) -> bool {
        if !path.is_empty() {
            return false;
        }
        match *fault {
            ChipFault::DeadChip => self.chip.set_dead(true),
            ChipFault::DeadPipeline { pipeline } => self.chip.set_pipeline_dead(pipeline),
            ChipFault::StuckJmemBit { addr, lane, bit } => {
                self.chip.add_stuck_jmem_bit(StuckBit { addr, lane, bit })
            }
        }
        true
    }

    fn alive_chips(&self) -> usize {
        usize::from(!self.chip.is_dead())
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.chip.set_kernel_mode(mode);
    }
}

/// Re-exported so downstream crates don't need `grape6-chip` directly for
/// the common case.
pub const I_PARALLELISM: usize = I_PARALLEL_PER_CHIP;

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_chip::chip::ChipConfig;
    use nbody_core::Vec3;

    #[test]
    fn chip_unit_tracks_last_pass() {
        let mut u = ChipUnit::new(Chip::new(ChipConfig::default()));
        assert_eq!(u.last_pass_cycles(), 0);
        for k in 0..10 {
            u.load_j(
                k,
                &JParticle {
                    mass: 0.1,
                    pos: Vec3::new(k as f64 * 0.1, 0.2, 0.3),
                    ..Default::default()
                },
            )
            .unwrap();
        }
        assert_eq!(u.n_j(), 10);
        let i = [HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-4)];
        let e = [ExpSet::from_magnitudes(10.0, 10.0, 10.0)];
        u.compute_block(&i, &e).unwrap();
        assert_eq!(u.last_pass_cycles(), 30 + 8 * 10);
        assert_eq!(u.total_cycles(), u.last_pass_cycles());
        u.compute_block(&i, &e).unwrap();
        assert_eq!(u.total_cycles(), 2 * u.last_pass_cycles());
        u.clear();
        assert_eq!(u.n_j(), 0);
    }

    #[test]
    fn overfull_chip_is_a_typed_error() {
        let mut u = ChipUnit::new(Chip::new(ChipConfig::default()));
        let cap = u.capacity();
        let err = u.load_j(cap, &JParticle::default()).unwrap_err();
        assert_eq!(
            err,
            LoadError::CapacityExceeded {
                addr: cap,
                capacity: cap
            }
        );
        assert!(err.to_string().contains("out of range"));
        // The failed write left no trace.
        assert_eq!(u.n_j(), 0);
    }
}
