//! Startup hardware self-test: known-answer vectors through every unit.
//!
//! The real GRAPE-6 host library probed every attached chip and module at
//! initialisation and simply did not hand particles to hardware that
//! answered wrongly (Makino et al. 2003).  This module reproduces that
//! protocol against the simulated [`BoardArray`]:
//!
//! 1. a deterministic set of known-answer j-particles and i-probes is
//!    pushed through **every module** individually (bypassing the board
//!    reduction, so a broken board network cannot hide a healthy module or
//!    vice versa), and the returned forces are compared against the IEEE
//!    double-precision reference;
//! 2. every module whose worst relative error exceeds the tolerance — a
//!    dead chip contributes *zeros*, a stuck j-memory bit a wrong position,
//!    both far outside pipeline round-off — is masked out of service;
//! 3. the same vectors then run through each surviving **board as a
//!    whole**, which exercises the board's reduction network; boards whose
//!    reduction is broken (every pass corrupted) fail here and are masked.
//!
//! The probe count is 48 = one full i-block, so all six pipelines of every
//! chip see test traffic — a dead pipeline only corrupts 8 of the 48 VMP
//! slots and would escape a narrower probe set.

use grape6_chip::pipeline::{ExpSet, HwIParticle};
use grape6_fault::UnitPath;
use nbody_core::force::{pair_force, JParticle};
use nbody_core::Vec3;

use crate::machine::BoardArray;
use crate::unit::GrapeUnit;

/// Parameters of the known-answer test.
#[derive(Clone, Copy, Debug)]
pub struct SelfTestConfig {
    /// Known-answer j-particles per unit (kept small: the test must also
    /// fit the smallest laboratory memories).
    pub n_j: usize,
    /// i-probes per pass; 48 covers every pipeline of every chip.
    pub n_probes: usize,
    /// Worst tolerated relative force error.  Pipeline round-off is ~1e-5;
    /// real faults produce ≥ 1e-2.
    pub rel_tol: f64,
    /// Softening used by the test vectors (keeps all forces O(1)).
    pub eps2: f64,
}

impl Default for SelfTestConfig {
    fn default() -> Self {
        Self {
            n_j: 32,
            n_probes: 48,
            rel_tol: 1e-3,
            eps2: 1e-2,
        }
    }
}

/// One unit that answered wrongly.
#[derive(Clone, Debug, PartialEq)]
pub struct SelfTestFailure {
    /// Path of the failing unit (`[board, module]` or `[board]`).
    pub path: UnitPath,
    /// Worst relative error against the f64 reference (`INFINITY` when the
    /// unit returned an error instead of a result).
    pub rel_err: f64,
}

/// Outcome of a full self-test sweep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelfTestReport {
    /// Units that answered wrongly, in test order.
    pub failures: Vec<SelfTestFailure>,
    /// Paths masked out of service (same order).
    pub masked: Vec<UnitPath>,
    /// Units driven with test vectors.
    pub units_tested: usize,
    /// Worst relative error among the units that *passed* — how much
    /// headroom the tolerance has.
    pub worst_healthy_rel_err: f64,
}

impl SelfTestReport {
    /// True if every unit answered correctly.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The deterministic known-answer particle set.
fn test_vectors(cfg: &SelfTestConfig) -> (Vec<JParticle>, Vec<JParticle>) {
    // Positions are kept POSITIVE and < 0.5 on every axis: in the 2⁻⁵⁷
    // fixed-point format all such values have bits ≥ 56 clear, so any
    // stuck-at-1 line on those bits is guaranteed to actually flip the
    // stored word — the known-answer test cannot be blinded by a word that
    // happened to have the faulty bit set already.
    let j: Vec<JParticle> = (0..cfg.n_j)
        .map(|k| {
            let a = 0.7 + k as f64 * 0.61;
            JParticle {
                mass: 0.02 + 0.01 * (a * 3.1).sin().abs(),
                t0: 0.0,
                pos: Vec3::new(
                    0.04 + 0.4 * a.cos().abs(),
                    0.04 + 0.4 * (a * 1.7).sin().abs(),
                    0.04 + 0.25 * (a * 2.3).cos().abs(),
                ),
                vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.05),
                ..Default::default()
            }
        })
        .collect();
    let probes: Vec<JParticle> = (0..cfg.n_probes)
        .map(|k| {
            let a = 0.31 + k as f64 * 0.47;
            JParticle {
                pos: Vec3::new(0.4 * (a * 1.3).sin(), 0.4 * a.cos(), 0.25 * (a * 0.9).sin()),
                vel: Vec3::new(0.05 * a.cos(), -0.05 * a.sin(), 0.0),
                ..Default::default()
            }
        })
        .collect();
    (j, probes)
}

/// f64 reference forces for the test vectors, and the block exponents wide
/// enough to hold them.
fn reference(
    cfg: &SelfTestConfig,
    j: &[JParticle],
    probes: &[JParticle],
) -> (Vec<(Vec3, f64)>, ExpSet) {
    let mut out = Vec::with_capacity(probes.len());
    let mut max_acc = 0.0f64;
    let mut max_jerk = 0.0f64;
    let mut max_pot = 0.0f64;
    for p in probes {
        let mut acc = Vec3::ZERO;
        let mut pot = 0.0;
        let mut jerk = Vec3::ZERO;
        for q in j {
            let (a, jk, ph) = pair_force(q.pos - p.pos, q.vel - p.vel, q.mass, cfg.eps2);
            acc += a;
            jerk += jk;
            pot += ph;
        }
        max_acc = max_acc.max(acc.norm());
        max_jerk = max_jerk.max(jerk.norm());
        max_pot = max_pot.max(pot.abs());
        out.push((acc, pot));
    }
    // ×4 headroom: partial sums on one chip can exceed the final magnitude.
    let exps = ExpSet::from_magnitudes(max_acc * 4.0, max_jerk * 4.0, max_pot * 4.0);
    (out, exps)
}

/// Drive the known-answer vectors through one unit and report its worst
/// relative force error (`INFINITY` if the unit erred outright).
fn kat_unit<U: GrapeUnit>(
    unit: &mut U,
    cfg: &SelfTestConfig,
    j: &[JParticle],
    probes: &[JParticle],
    want: &[(Vec3, f64)],
    exps: ExpSet,
) -> f64 {
    unit.clear();
    for (k, p) in j.iter().enumerate() {
        // A unit that cannot even take its test vectors fails the KAT.
        if unit.load_j(k, p).is_err() {
            unit.clear();
            return f64::INFINITY;
        }
    }
    unit.set_time(0.0);
    let i_regs: Vec<HwIParticle> = probes
        .iter()
        .map(|p| HwIParticle::from_host(p.pos, p.vel, cfg.eps2))
        .collect();
    let exp_vec = vec![exps; i_regs.len()];
    let result = unit.compute_block(&i_regs, &exp_vec);
    unit.clear();
    let Ok(forces) = result else {
        return f64::INFINITY;
    };
    let mut worst = 0.0f64;
    for (pf, (acc_want, pot_want)) in forces.iter().zip(want) {
        let got = pf.to_force_result();
        let da = (got.acc - *acc_want).norm() / acc_want.norm().max(1e-30);
        let dp = (got.pot - pot_want).abs() / pot_want.abs().max(1e-30);
        worst = worst.max(da).max(dp);
    }
    worst
}

/// Run the full startup self-test, masking every failing unit.
///
/// Masked paths are applied to `hw` before the function returns, so the
/// machine the caller gets back only routes particles to hardware that
/// answered the known-answer vectors correctly.
pub fn self_test(hw: &mut BoardArray, cfg: &SelfTestConfig) -> SelfTestReport {
    let (j, probes) = test_vectors(cfg);
    let (want, exps) = reference(cfg, &j, &probes);
    let mut report = SelfTestReport::default();

    // Phase 1: every module individually, bypassing board reduction.
    let n_boards = hw.len();
    let mut module_failures: Vec<UnitPath> = Vec::new();
    for b in 0..n_boards {
        let n_modules = hw.children()[b].len();
        for m in 0..n_modules {
            let module = &mut hw.children_mut()[b].children_mut()[m];
            let rel_err = kat_unit(module, cfg, &j, &probes, &want, exps);
            report.units_tested += 1;
            if rel_err > cfg.rel_tol {
                report.failures.push(SelfTestFailure {
                    path: vec![b, m],
                    rel_err,
                });
                module_failures.push(vec![b, m]);
            } else {
                report.worst_healthy_rel_err = report.worst_healthy_rel_err.max(rel_err);
            }
        }
    }
    for path in module_failures {
        if hw.mask_path(&path) {
            report.masked.push(path);
        }
    }

    // Phase 2: each surviving board as a whole — exercises the board's own
    // reduction network, which phase 1 deliberately bypassed.
    let mut board_failures: Vec<UnitPath> = Vec::new();
    for b in 0..n_boards {
        if !hw.active()[b] || hw.children()[b].n_active() == 0 {
            continue;
        }
        let board = &mut hw.children_mut()[b];
        let rel_err = kat_unit(board, cfg, &j, &probes, &want, exps);
        report.units_tested += 1;
        if rel_err > cfg.rel_tol {
            report.failures.push(SelfTestFailure {
                path: vec![b],
                rel_err,
            });
            board_failures.push(vec![b]);
        } else {
            report.worst_healthy_rel_err = report.worst_healthy_rel_err.max(rel_err);
        }
    }
    for path in board_failures {
        if hw.mask_path(&path) {
            report.masked.push(path);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use grape6_fault::{ChipFault, ReductionFaultSchedule};

    fn machine() -> BoardArray {
        MachineConfig {
            boards: 2,
            ..MachineConfig::test_small()
        }
        .build()
    }

    #[test]
    fn healthy_machine_passes_with_margin() {
        let mut hw = machine();
        let report = self_test(&mut hw, &SelfTestConfig::default());
        assert!(report.all_passed(), "failures: {:?}", report.failures);
        // 2 boards × 2 modules + 2 boards = 6 units.
        assert_eq!(report.units_tested, 6);
        assert!(
            report.worst_healthy_rel_err < 1e-4,
            "pipeline round-off should sit far below the 1e-3 tolerance, got {:e}",
            report.worst_healthy_rel_err
        );
        assert_eq!(hw.alive_chips(), 8);
    }

    #[test]
    fn dead_chip_masks_exactly_its_module() {
        let mut hw = machine();
        hw.inject_chip_fault(&[1, 0, 1], &ChipFault::DeadChip);
        let report = self_test(&mut hw, &SelfTestConfig::default());
        assert_eq!(report.masked, vec![vec![1, 0]]);
        // A dead chip zeroes about half the module's force — far over tol.
        assert!(report.failures[0].rel_err > 0.05);
        assert_eq!(hw.alive_chips(), 6);
        assert_eq!(hw.children()[1].active(), &[false, true]);
    }

    #[test]
    fn dead_pipeline_is_caught_by_full_probe_block() {
        let mut hw = machine();
        hw.inject_chip_fault(&[0, 1, 0], &ChipFault::DeadPipeline { pipeline: 4 });
        let report = self_test(&mut hw, &SelfTestConfig::default());
        assert_eq!(report.masked, vec![vec![0, 1]]);
    }

    #[test]
    fn stuck_jmem_bit_is_caught() {
        let mut hw = machine();
        hw.inject_chip_fault(
            &[0, 0, 0],
            &ChipFault::StuckJmemBit {
                addr: 1,
                lane: 2,
                bit: 56,
            },
        );
        let report = self_test(&mut hw, &SelfTestConfig::default());
        assert_eq!(report.masked, vec![vec![0, 0]]);
        assert!(report.failures[0].rel_err > 1e-3);
    }

    #[test]
    fn broken_board_reduction_masks_the_board() {
        let mut hw = machine();
        hw.inject_reduction_fault(&[1], &ReductionFaultSchedule::Permanent);
        let report = self_test(&mut hw, &SelfTestConfig::default());
        // Modules pass (tested directly); the board-level pass errs.
        assert_eq!(report.masked, vec![vec![1]]);
        assert_eq!(report.failures[0].rel_err, f64::INFINITY);
        assert_eq!(hw.alive_chips(), 4);
    }

    #[test]
    fn self_test_leaves_no_particles_behind() {
        let mut hw = machine();
        self_test(&mut hw, &SelfTestConfig::default());
        assert_eq!(hw.children()[0].children()[0].n_j(), 0);
    }
}
