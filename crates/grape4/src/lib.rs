//! # grape4 — the predecessor machine, as the paper's §3 foil
//!
//! "GRAPE-6 is the direct successor of the 1-Tflops GRAPE-4" (§1), and the
//! whole of §3 is a point-by-point comparison of the two designs.  To make
//! those arguments *executable* this crate provides a functional simulator
//! of the GRAPE-4 architecture (Makino, Taiji, Ebisuzaki & Sugimoto 1997)
//! at the same fidelity as the GRAPE-6 simulator:
//!
//! * **shared-memory boards** — 48 single-pipeline chips per board all
//!   stream the *same* j-particles and compute *different* i-particles
//!   (2-way VMP ⇒ 96 i-particles per board in parallel).  GRAPE-6
//!   inverted this: per-chip j-memories, shared i-particles (§3.4);
//! * **2-way VMP pipeline** — "a single pipeline, which calculates forces
//!   on two particles in every six clock cycles", i.e. one pairwise
//!   interaction per 3 cycles at ~32 MHz ⇒ ≈ 0.6 Gflops/chip, ≈ 30 Gflops
//!   per 48-chip board, ≈ 1.06 Tflops for the 36-board machine;
//! * **ordinary floating-point summation across boards** — GRAPE-4 used
//!   "commercially available single-chip floating-point arithmetic units"
//!   for the board-level sum, so "the round-off error generated in the
//!   summation depends on the order in which the forces from different
//!   particles are accumulated, and therefore the calculated force is not
//!   exactly the same, if the number of boards in the system is different"
//!   (§3.4).  This crate reproduces that defect faithfully — and the test
//!   suite *demonstrates* it, as the contrast with GRAPE-6's block
//!   floating point.
//!
//! The pipeline arithmetic reuses `grape6-arith`'s formats (fixed-point
//! positions, short pipeline floats): the generational difference the
//! paper cares about is architectural, not the word layouts, and keeping
//! the arithmetic identical makes the order-dependence demonstration
//! airtight (any difference comes from the summation design alone).

pub mod board;
pub mod engine;
pub mod machine;

pub use board::{Grape4Board, Grape4BoardConfig};
pub use engine::Grape4Engine;
pub use machine::Grape4Config;
