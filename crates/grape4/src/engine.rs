//! GRAPE-4 behind the standard engine interface — so the same Hermite
//! driver that runs on GRAPE-6 runs on its predecessor, exactly as the
//! real host codes did ("essentially the same goal", §3).

use grape6_chip::pipeline::HwIParticle;
use nbody_core::force::{ForceEngine, ForceResult, IParticle, JParticle};

use crate::machine::{Grape4Config, Grape4Machine};

/// The GRAPE-4 machine as a [`ForceEngine`].
pub struct Grape4Engine {
    hw: Grape4Machine,
    n_slots: usize,
}

impl Grape4Engine {
    /// Build the engine.
    pub fn new(cfg: &Grape4Config, n_particles: usize) -> Self {
        assert!(
            n_particles <= cfg.capacity(),
            "system exceeds GRAPE-4 memory capacity"
        );
        Self {
            hw: Grape4Machine::new(*cfg),
            n_slots: n_particles,
        }
    }

    /// Pipeline cycles consumed (critical path).
    pub fn hardware_cycles(&self) -> u64 {
        self.hw.cycles()
    }

    /// The machine.
    pub fn hardware(&self) -> &Grape4Machine {
        &self.hw
    }
}

impl ForceEngine for Grape4Engine {
    fn n_j(&self) -> usize {
        self.n_slots
    }

    fn set_j_particle(&mut self, addr: usize, p: &JParticle) {
        assert!(addr < self.n_slots);
        self.hw.load_j(addr, p);
    }

    fn set_time(&mut self, t: f64) {
        self.hw.set_time(t);
    }

    fn compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(i.len(), out.len());
        let width = self.hw.config().board.i_parallelism();
        for (ci, co) in i.chunks(width).zip(out.chunks_mut(width)) {
            let regs: Vec<HwIParticle> = ci
                .iter()
                .map(|p| HwIParticle::from_host(p.pos, p.vel, p.eps2))
                .collect();
            let forces = self.hw.compute_block(&regs);
            co.copy_from_slice(&forces);
        }
    }

    fn name(&self) -> &'static str {
        "grape4-sim"
    }

    fn interactions(&self) -> u64 {
        self.hw.interactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::DirectEngine;
    use nbody_core::Vec3;

    #[test]
    fn grape4_engine_matches_reference() {
        let n = 60;
        let mut g = Grape4Engine::new(&Grape4Config::test_small(), n);
        let mut d = DirectEngine::new(n);
        for k in 0..n {
            let a = k as f64 * 0.53;
            let p = JParticle {
                mass: 1.0 / n as f64,
                t0: 0.0,
                pos: Vec3::new(a.cos(), a.sin(), 0.3 * (0.4 * a).sin()),
                vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.0),
                ..Default::default()
            };
            g.set_j_particle(k, &p);
            d.set_j_particle(k, &p);
        }
        g.set_time(0.03125);
        d.set_time(0.03125);
        let probes: Vec<IParticle> = (0..100)
            .map(|k| IParticle {
                pos: Vec3::new(0.015 * k as f64 - 0.7, 0.2, 0.0),
                vel: Vec3::ZERO,
                eps2: 1e-3,
            })
            .collect();
        let mut got = vec![ForceResult::default(); 100];
        let mut want = vec![ForceResult::default(); 100];
        g.compute(&probes, &mut got);
        d.compute(&probes, &mut want);
        for k in 0..100 {
            let rel = (got[k].acc - want[k].acc).norm() / want[k].acc.norm();
            assert!(rel < 1e-4, "i={k}: rel err {rel:e}");
        }
        assert_eq!(g.interactions(), 100 * 60);
    }

    #[test]
    fn hermite_integration_runs_on_grape4() {
        use grape6_core::{HermiteIntegrator, IntegratorConfig};
        use nbody_core::diagnostics::energy;
        use nbody_core::ic::plummer::plummer_model;
        use nbody_core::softening::Softening;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let n = 48;
        let set = plummer_model(n, &mut StdRng::seed_from_u64(1995));
        let eps2 = Softening::Constant.epsilon2(n);
        let e0 = energy(&set, eps2);
        let engine = Grape4Engine::new(&Grape4Config::test_small(), n);
        let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        it.run_until(0.125);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        assert!(err < 1e-4, "GRAPE-4 energy error {err:e}");
    }
}
