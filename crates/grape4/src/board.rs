//! The GRAPE-4 processor board: 48 pipeline chips on one shared memory.
//!
//! "One GRAPE-4 board housed 48 pipeline chips, all of which receive the
//! same particle data from the memory and calculate the force on two
//! particles.  This means that a single board calculates forces on 96
//! particles in parallel" (§3.4).  The board-internal partial sums are
//! per-i-particle accumulators inside each chip; since one chip sees *all*
//! j-particles of the board's memory, no cross-chip reduction exists at
//! this level — that is exactly why the design was simple, and exactly why
//! it could not scale (§3.4's bandwidth arithmetic).

use grape6_arith::pfloat::PipeFloat;
use grape6_arith::rsqrt::RsqrtCubedUnit;
use grape6_chip::jmem::HwJParticle;
use grape6_chip::pipeline::HwIParticle;
use grape6_chip::predictor::{predict, PredictedJ};
use nbody_core::force::{ForceResult, JParticle};
use nbody_core::Vec3;

/// Physical parameters of one board.
#[derive(Clone, Copy, Debug)]
pub struct Grape4BoardConfig {
    /// Pipeline chips per board (48 in the real machine).
    pub chips: usize,
    /// Virtual pipelines per chip (2-way VMP).
    pub vmp_ways: usize,
    /// Pipeline clock, Hz (the HARP chip ran at ~32 MHz).
    pub clock_hz: f64,
    /// Cycles per pairwise interaction per virtual pipeline ("forces on
    /// two particles in every six clock cycles" ⇒ 3 cycles per pair).
    pub cycles_per_pair: u64,
    /// Shared memory capacity in particles.
    pub jmem_capacity: usize,
}

impl Default for Grape4BoardConfig {
    fn default() -> Self {
        Self {
            chips: 48,
            vmp_ways: 2,
            clock_hz: 32.0e6,
            cycles_per_pair: 3,
            jmem_capacity: 44_000, // ~N/boards for the machine's design N
        }
    }
}

impl Grape4BoardConfig {
    /// i-particles served in parallel by the board.
    pub fn i_parallelism(&self) -> usize {
        self.chips * self.vmp_ways
    }

    /// Peak flops of one board: one pair per `cycles_per_pair` per chip.
    pub fn peak_flops(&self) -> f64 {
        self.chips as f64 * self.clock_hz / self.cycles_per_pair as f64
            * nbody_core::FLOPS_PER_INTERACTION
    }
}

/// One GRAPE-4 processor board with its shared j-memory.
#[derive(Clone, Debug)]
pub struct Grape4Board {
    cfg: Grape4BoardConfig,
    jmem: Vec<HwJParticle>,
    used: usize,
    time: f64,
    cycles: u64,
    interactions: u64,
    rsqrt: RsqrtCubedUnit,
    predicted: Vec<PredictedJ>,
}

impl Grape4Board {
    /// Build a board.
    pub fn new(cfg: Grape4BoardConfig) -> Self {
        Self {
            jmem: vec![HwJParticle::vacant(); cfg.jmem_capacity],
            used: 0,
            time: 0.0,
            cycles: 0,
            interactions: 0,
            rsqrt: RsqrtCubedUnit::default(),
            predicted: Vec::new(),
            cfg,
        }
    }

    /// Board configuration.
    pub fn config(&self) -> &Grape4BoardConfig {
        &self.cfg
    }

    /// Write a j-particle into the shared memory.
    pub fn load_j(&mut self, addr: usize, p: &JParticle) {
        assert!(
            addr < self.cfg.jmem_capacity,
            "GRAPE-4 board memory overflow"
        );
        self.jmem[addr] = HwJParticle::from_host(p);
        self.used = self.used.max(addr + 1);
    }

    /// Particles stored.
    pub fn n_j(&self) -> usize {
        self.used
    }

    /// Set the prediction time.  On GRAPE-4 the predictor lived on the
    /// *host interface* side (the chip had no predictor pipeline — another
    /// §3.4 difference); functionally the result is the same polynomial.
    pub fn set_time(&mut self, t: f64) {
        self.time = t;
    }

    /// Total cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total pairwise interactions.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Compute forces on up to 96 i-particles from every stored j.
    ///
    /// Results are accumulated **in pipeline floating point, in memory
    /// order** — ordinary rounding on every add, exactly the property that
    /// makes GRAPE-4 sums order-dependent.
    pub fn compute_block(&mut self, i_regs: &[HwIParticle]) -> Vec<ForceResult> {
        assert!(
            i_regs.len() <= self.cfg.i_parallelism(),
            "block of {} exceeds board i-parallelism {}",
            i_regs.len(),
            self.cfg.i_parallelism()
        );
        let n_j = self.used;
        if n_j > 0 && !i_regs.is_empty() {
            self.cycles += self.cfg.cycles_per_pair * n_j as u64;
            self.interactions += (i_regs.len() * n_j) as u64;
        }
        self.predicted.clear();
        for p in &self.jmem[..self.used] {
            self.predicted.push(predict(p, self.time));
        }
        i_regs
            .iter()
            .map(|ip| {
                let mut acc = [PipeFloat::ZERO; 3];
                let mut jerk = [PipeFloat::ZERO; 3];
                let mut pot = PipeFloat::ZERO;
                for jp in &self.predicted {
                    let (a, j, p) = pair_terms(&self.rsqrt, ip, jp);
                    for c in 0..3 {
                        acc[c] = acc[c] + a[c]; // rounds — order matters
                        jerk[c] = jerk[c] + j[c];
                    }
                    pot = pot + p;
                }
                ForceResult {
                    acc: Vec3::new(acc[0].get(), acc[1].get(), acc[2].get()),
                    jerk: Vec3::new(jerk[0].get(), jerk[1].get(), jerk[2].get()),
                    pot: pot.get(),
                }
            })
            .collect()
    }
}

/// One pipeline interaction in GRAPE-4 arithmetic: same stages as the
/// GRAPE-6 pipeline (exact fixed-point dx, short-float multiplier tree),
/// but the outputs stay in pipeline float for the running sums.
#[inline]
fn pair_terms(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    jp: &PredictedJ,
) -> ([PipeFloat; 3], [PipeFloat; 3], PipeFloat) {
    let d = ip.pos.exact_delta_to(jp.pos);
    let dx = [
        PipeFloat::new(d[0]),
        PipeFloat::new(d[1]),
        PipeFloat::new(d[2]),
    ];
    let dv = [
        PipeFloat::new(jp.vel[0]) - PipeFloat::new(ip.vel[0]),
        PipeFloat::new(jp.vel[1]) - PipeFloat::new(ip.vel[1]),
        PipeFloat::new(jp.vel[2]) - PipeFloat::new(ip.vel[2]),
    ];
    let r2 = (dx[0].square() + dx[1].square()) + (dx[2].square() + PipeFloat::new(ip.eps2));
    let rinv3 = PipeFloat::new(rsqrt.eval_pow_m32(r2.get()));
    let rinv = PipeFloat::new(rsqrt.eval_pow_m12(r2.get()));
    let m = PipeFloat::new(jp.mass);
    let mr3 = m * rinv3;
    let acc = [mr3 * dx[0], mr3 * dx[1], mr3 * dx[2]];
    let rv = (dx[0] * dv[0] + dx[1] * dv[1]) + dx[2] * dv[2];
    let beta = PipeFloat::new(3.0) * rv * (rinv * rinv);
    let jerk = [
        mr3 * dv[0] - beta * acc[0],
        mr3 * dv[1] - beta * acc[1],
        mr3 * dv[2] - beta * acc[2],
    ];
    (acc, jerk, -(m * rinv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::pair_force;

    fn jp(k: usize) -> JParticle {
        let a = k as f64 * 0.41;
        JParticle {
            mass: 0.02,
            t0: 0.0,
            pos: Vec3::new(a.cos(), (a * 1.3).sin(), 0.2),
            vel: Vec3::new(0.0, 0.05, -0.05),
            ..Default::default()
        }
    }

    #[test]
    fn board_geometry_and_peak() {
        let cfg = Grape4BoardConfig::default();
        assert_eq!(cfg.i_parallelism(), 96);
        // 48 chips × 32 MHz / 3 cycles × 57 flops ≈ 29.2 Gflops/board.
        assert!((cfg.peak_flops() / 1e9 - 29.18).abs() < 0.1);
    }

    #[test]
    fn forces_match_f64_to_pipeline_precision() {
        let mut b = Grape4Board::new(Grape4BoardConfig::default());
        for k in 0..50 {
            b.load_j(k, &jp(k));
        }
        b.set_time(0.0);
        let probe = HwIParticle::from_host(Vec3::new(0.1, -0.1, 0.0), Vec3::ZERO, 1e-3);
        let out = b.compute_block(&[probe])[0];
        // f64 reference.
        let mut want = ForceResult::default();
        for k in 0..50 {
            let p = jp(k);
            let (a, j, po) = pair_force(
                p.pos - Vec3::new(0.1, -0.1, 0.0),
                p.vel - Vec3::ZERO,
                p.mass,
                1e-3,
            );
            want.acc += a;
            want.jerk += j;
            want.pot += po;
        }
        assert!((out.acc - want.acc).norm() / want.acc.norm() < 1e-4);
        assert!((out.pot - want.pot).abs() / want.pot.abs() < 1e-4);
    }

    #[test]
    fn cycle_model_one_pair_per_three_cycles() {
        let mut b = Grape4Board::new(Grape4BoardConfig::default());
        for k in 0..100 {
            b.load_j(k, &jp(k));
        }
        let regs = vec![HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2); 96];
        b.compute_block(&regs);
        assert_eq!(b.cycles(), 3 * 100);
        assert_eq!(b.interactions(), 96 * 100);
    }

    #[test]
    fn summation_is_order_dependent() {
        // The §3.4 defect, isolated: the same particles loaded in a
        // different memory order give a (slightly) different force.
        let probe = HwIParticle::from_host(Vec3::new(0.03, 0.02, 0.01), Vec3::ZERO, 1e-4);
        let n = 200;
        let forward = {
            let mut b = Grape4Board::new(Grape4BoardConfig::default());
            for k in 0..n {
                b.load_j(k, &jp(k));
            }
            b.compute_block(&[probe])[0]
        };
        let reversed = {
            let mut b = Grape4Board::new(Grape4BoardConfig::default());
            for k in 0..n {
                b.load_j(k, &jp(n - 1 - k));
            }
            b.compute_block(&[probe])[0]
        };
        // Physically identical…
        assert!((forward.acc - reversed.acc).norm() / forward.acc.norm() < 1e-5);
        // …but not bit-identical: float accumulation rounds differently.
        assert_ne!(
            (forward.acc, forward.pot),
            (reversed.acc, reversed.pot),
            "pipeline-float accumulation should be order-dependent"
        );
    }
}
