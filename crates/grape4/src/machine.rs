//! The full GRAPE-4 machine: 36 boards behind a control-board tree.
//!
//! "GRAPE-4 consisted of 36 processor boards, organized in a two-stage
//! simple tree network.  Nine boards are housed in one rack, with one
//! backplane bus.  These boards are all connected to a control board,
//! which broadcasts the data from the host to all processor boards and
//! take the summation of the calculated data on nine processor boards"
//! (§3.3).  The j-particles are divided among the boards; the control
//! boards sum the per-board partial forces with ordinary floating-point
//! adders — sequentially over the shared backplane, in board order.

use grape6_chip::pipeline::HwIParticle;
use nbody_core::force::{ForceResult, JParticle};

use crate::board::{Grape4Board, Grape4BoardConfig};

/// Machine geometry.
#[derive(Clone, Copy, Debug)]
pub struct Grape4Config {
    /// Processor boards (36 in the full machine).
    pub boards: usize,
    /// Boards per control board / rack (9).
    pub boards_per_rack: usize,
    /// Board parameters.
    pub board: Grape4BoardConfig,
    /// Host interface clock, Hz ("GRAPE-4 used 16 MHz clock", §3.3).
    pub host_clock_hz: f64,
}

impl Default for Grape4Config {
    fn default() -> Self {
        Self::full_machine()
    }
}

impl Grape4Config {
    /// The 1995 Gordon-Bell machine: 36 boards ≈ 1.05 Tflops.
    pub fn full_machine() -> Self {
        Self {
            boards: 36,
            boards_per_rack: 9,
            board: Grape4BoardConfig::default(),
            host_clock_hz: 16.0e6,
        }
    }

    /// A small configuration for fast functional tests.
    pub fn test_small() -> Self {
        Self {
            boards: 2,
            boards_per_rack: 2,
            board: Grape4BoardConfig {
                chips: 4,
                jmem_capacity: 4_096,
                ..Grape4BoardConfig::default()
            },
            host_clock_hz: 16.0e6,
        }
    }

    /// Peak speed of the machine.
    pub fn peak_flops(&self) -> f64 {
        self.boards as f64 * self.board.peak_flops()
    }

    /// Total j capacity.
    pub fn capacity(&self) -> usize {
        self.boards * self.board.jmem_capacity
    }
}

/// The assembled machine.
#[derive(Clone, Debug)]
pub struct Grape4Machine {
    cfg: Grape4Config,
    boards: Vec<Grape4Board>,
    used: usize,
}

impl Grape4Machine {
    /// Build the machine.
    pub fn new(cfg: Grape4Config) -> Self {
        Self {
            boards: (0..cfg.boards)
                .map(|_| Grape4Board::new(cfg.board))
                .collect(),
            used: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Grape4Config {
        &self.cfg
    }

    /// Number of j-particles loaded.
    pub fn n_j(&self) -> usize {
        self.used
    }

    /// Load particle `addr` (round-robin over boards, like GRAPE-6's
    /// ensemble — the boards' memories are independent).
    pub fn load_j(&mut self, addr: usize, p: &JParticle) {
        let k = self.boards.len();
        self.boards[addr % k].load_j(addr / k, p);
        self.used = self.used.max(addr + 1);
    }

    /// Broadcast the prediction time.
    pub fn set_time(&mut self, t: f64) {
        for b in &mut self.boards {
            b.set_time(t);
        }
    }

    /// Total pipeline cycles (critical path ≈ max over boards since the
    /// boards run concurrently; the serial backplane summation is charged
    /// to the host interface, not the pipelines).
    pub fn cycles(&self) -> u64 {
        self.boards.iter().map(|b| b.cycles()).max().unwrap_or(0)
    }

    /// Total interactions.
    pub fn interactions(&self) -> u64 {
        self.boards.iter().map(|b| b.interactions()).sum()
    }

    /// Forces on up to 96 i-particles from all loaded j-particles.
    ///
    /// The control-board tree sums the per-board partials **in f64
    /// floating point, in board order** — matching the single-chip FP
    /// adders of the real control boards.  (f64 stands in for the wide
    /// summation format of those parts; the essential property — ordinary
    /// rounding, order dependence — is preserved.)
    pub fn compute_block(&mut self, i_regs: &[HwIParticle]) -> Vec<ForceResult> {
        assert!(i_regs.len() <= self.cfg.board.i_parallelism());
        let mut total: Vec<ForceResult> = vec![ForceResult::default(); i_regs.len()];
        for b in &mut self.boards {
            let part = b.compute_block(i_regs);
            for (t, p) in total.iter_mut().zip(&part) {
                t.acc += p.acc;
                t.jerk += p.jerk;
                t.pot += p.pot;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::Vec3;

    fn jp(k: usize) -> JParticle {
        let a = k as f64 * 0.71;
        JParticle {
            mass: 0.01,
            t0: 0.0,
            pos: Vec3::new(a.sin(), (0.7 * a).cos(), 0.1 * (k % 5) as f64),
            vel: Vec3::new(0.01, 0.0, -0.01),
            ..Default::default()
        }
    }

    #[test]
    fn full_machine_peak_is_about_one_tflops() {
        let cfg = Grape4Config::full_machine();
        // "the 1-Tflops GRAPE-4" — 36 boards × 29.2 Gflops ≈ 1.05 Tflops.
        assert!((cfg.peak_flops() / 1e12 - 1.05).abs() < 0.05);
        // And the generational gap the paper quotes: the GRAPE-6 chip is
        // "roughly 50 times faster" than the GRAPE-4 chip.
        let g6_chip = grape6_chip::chip::ChipConfig::default().peak_flops();
        let g4_chip = cfg.board.peak_flops() / cfg.board.chips as f64;
        let ratio = g6_chip / g4_chip;
        assert!((40.0..60.0).contains(&ratio), "chip ratio {ratio}");
    }

    #[test]
    fn board_count_changes_the_bits_not_the_physics() {
        // The §3.4 contrast with GRAPE-6: different machine sizes give
        // *different* bits on GRAPE-4.
        let n = 240;
        let probe = HwIParticle::from_host(Vec3::new(0.05, 0.0, 0.0), Vec3::ZERO, 1e-4);
        let run = |boards: usize| -> ForceResult {
            let mut m = Grape4Machine::new(Grape4Config {
                boards,
                ..Grape4Config::test_small()
            });
            for k in 0..n {
                m.load_j(k, &jp(k));
            }
            m.set_time(0.0);
            m.compute_block(&[probe])[0]
        };
        let one = run(1);
        let four = run(4);
        // Physically the same force…
        assert!((one.acc - four.acc).norm() / one.acc.norm() < 1e-5);
        // …but not bit-identical (float summation order differs).
        assert_ne!((one.acc, one.pot), (four.acc, four.pot));
    }

    #[test]
    fn machine_distributes_and_counts() {
        let mut m = Grape4Machine::new(Grape4Config::test_small());
        for k in 0..100 {
            m.load_j(k, &jp(k));
        }
        assert_eq!(m.n_j(), 100);
        let regs = vec![HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-2); 8];
        m.compute_block(&regs);
        assert_eq!(m.interactions(), 8 * 100);
        assert_eq!(m.cycles(), 3 * 50); // 50 j on each of 2 boards
    }
}
