//! # grape6-arith — the GRAPE-6 hardware number formats
//!
//! The GRAPE-6 force-calculation pipeline does not compute in IEEE-754
//! double precision.  Following the GRAPE design lineage (Makino et al. 1997,
//! Makino & Taiji 1998), it mixes three representations, each chosen so that
//! a large number of arithmetic units fits on one die while the *integration*
//! accuracy of a collisional N-body code is preserved:
//!
//! * **64-bit fixed point** for particle positions — so that coordinate
//!   *differences* (the input of every pairwise interaction) are exact, and
//!   so that a hardware predictor can work in pure integer arithmetic
//!   ([`fixed`]).
//! * **reduced-precision floating point** inside the pipeline — every adder
//!   and multiplier rounds to a short significand (default 24 bits in this
//!   reproduction), and the `(r² + ε²)^(-3/2)` unit is a table-driven
//!   functional unit of matching accuracy ([`pfloat`], [`rsqrt`]).
//! * **fixed-point / block floating-point accumulation** for the force sums —
//!   partial forces are shifted to a pre-declared *block exponent* and summed
//!   as integers, which makes the sum **exact, associative and commutative**.
//!   This is the property the SC'03 paper highlights in §3.4: the calculated
//!   force is bit-identical no matter how many chips, modules or boards
//!   partition the j-particles ([`blockfp`]).
//!
//! Everything here is deterministic and allocation-free; these types sit in
//! the innermost loop of the chip simulator.

pub mod blockfp;
pub mod fixed;
pub mod pfloat;
pub mod rsqrt;
pub mod simd;

pub use blockfp::{BlockAccum, BlockFpError, ForceWord};
pub use fixed::{Fix64, PosFix, POS_FRAC_BITS};
pub use pfloat::{quantize_sig, quantize_sig_branchless, PFloat, PipeFloat, PIPE_SIG_BITS};
pub use rsqrt::RsqrtCubedUnit;
pub use simd::{active_level, set_dispatch_override, DispatchOverride, SimdLevel};
