//! Block floating-point force accumulation.
//!
//! GRAPE-6 takes the sum of partial forces — across the six pipelines of a
//! chip, the four chips of a module, the eight modules of a board, and the
//! boards of a column — in a **block floating-point** format (paper §3.4):
//! the *exponent of the result is specified before the calculation starts*,
//! every summand is shifted to that exponent, and the summation itself is
//! plain integer addition performed by narrow fixed-point adders (FPGAs on
//! the module/board, integer units inside the chip).
//!
//! Consequences, all of which this module reproduces and tests:
//!
//! * integer addition is exact, associative and commutative ⇒ the summed
//!   force is **bit-identical for any partition of the j-particles over
//!   chips/modules/boards and for any summation order** — the paper calls
//!   this out as a major validation convenience;
//! * the only rounding is the initial shift of each partial force onto the
//!   block grid, and that rounding is independent of the summation order;
//! * a badly guessed exponent makes the sum overflow its 64-bit window, in
//!   which case the host must retry with a larger exponent ("for the initial
//!   calculation we sometimes need to repeat the force calculation a few
//!   times until we have a good guess").  Overflow is reported, never
//!   silently wrapped, so the retry loop in `grape6-core` can do its job.

use std::fmt;

/// Guard bits added on top of the magnitude estimate when guessing a block
/// exponent, so that a force that grows moderately between two timesteps
/// still fits the window without a retry.
pub const DEFAULT_GUARD_BITS: i32 = 3;

/// Errors surfaced by the block floating-point units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFpError {
    /// A single partial force did not fit the declared window; the window
    /// exponent must be raised to at least the reported value.
    SummandOverflow {
        /// Minimal window exponent that would hold the summand.
        needed_exp: i32,
    },
    /// The running sum overflowed the 64-bit window.
    SumOverflow,
    /// Two partial sums with different block exponents cannot be merged.
    ExponentMismatch {
        /// Exponent of the left operand.
        left: i32,
        /// Exponent of the right operand.
        right: i32,
    },
}

impl fmt::Display for BlockFpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SummandOverflow { needed_exp } => {
                write!(
                    f,
                    "partial force exceeds block window (needs exp ≥ {needed_exp})"
                )
            }
            Self::SumOverflow => write!(f, "block floating-point sum overflowed its 64-bit window"),
            Self::ExponentMismatch { left, right } => {
                write!(
                    f,
                    "cannot merge block-FP words with exponents {left} and {right}"
                )
            }
        }
    }
}

impl std::error::Error for BlockFpError {}

/// Number of mantissa bits in the accumulation window (signed 64-bit word).
const MANT_BITS: i32 = 63;

/// A block floating-point accumulator: a 64-bit integer mantissa interpreted
/// as `mant · 2^(exp − 63)`, i.e. a window holding magnitudes `< 2^exp`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockAccum {
    exp: i32,
    mant: i64,
}

impl BlockAccum {
    /// Fresh accumulator with the given window exponent.
    #[inline]
    pub const fn new(exp: i32) -> Self {
        Self { exp, mant: 0 }
    }

    /// The window exponent.
    #[inline]
    pub const fn exp(self) -> i32 {
        self.exp
    }

    /// Raw integer mantissa (useful for bit-exactness assertions in tests).
    #[inline]
    pub const fn mant(self) -> i64 {
        self.mant
    }

    /// Pick a window exponent that holds a value of magnitude `mag` with
    /// [`DEFAULT_GUARD_BITS`] bits of headroom.  `mag = 0` yields a small
    /// default window; the retry loop will widen it if needed.
    #[inline]
    pub fn guess_exp(mag: f64) -> i32 {
        if mag == 0.0 || !mag.is_finite() {
            return -MANT_BITS + DEFAULT_GUARD_BITS;
        }
        min_exp_for(mag) + DEFAULT_GUARD_BITS
    }

    /// Shift `x` onto the block grid and add it.  One rounding (to nearest,
    /// ties to even) happens here; the addition itself is exact.
    #[inline]
    pub fn add(&mut self, x: f64) -> Result<(), BlockFpError> {
        let scaled = x * exp2i(MANT_BITS - self.exp);
        let q = scaled.round_ties_even();
        // Deliberately negated so NaN also takes the overflow path.
        #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::excessive_precision)]
        if !(q.abs() < 9.223_372_036_854_775_8e18) {
            // |q| ≥ 2^63 (or NaN): the summand alone busts the window.
            return Err(BlockFpError::SummandOverflow {
                needed_exp: min_exp_for(x),
            });
        }
        let qi = q as i64;
        self.mant = self.mant.checked_add(qi).ok_or(BlockFpError::SumOverflow)?;
        Ok(())
    }

    /// Merge another partial sum (reduction-tree step).  Exact; fails only on
    /// window overflow or mismatched exponents.
    #[inline]
    pub fn merge(&mut self, other: &BlockAccum) -> Result<(), BlockFpError> {
        if self.exp != other.exp {
            return Err(BlockFpError::ExponentMismatch {
                left: self.exp,
                right: other.exp,
            });
        }
        self.mant = self
            .mant
            .checked_add(other.mant)
            .ok_or(BlockFpError::SumOverflow)?;
        Ok(())
    }

    /// Finish the accumulation, producing the transferable result word.
    #[inline]
    pub const fn finish(self) -> ForceWord {
        ForceWord {
            exp: self.exp,
            mant: self.mant,
        }
    }

    /// Current value as a double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.mant as f64 * exp2i(self.exp - MANT_BITS)
    }
}

/// A block-FP accumulation lane for the batched kernel.
///
/// Semantically identical to [`BlockAccum::add`] — same grid, same single
/// round-to-nearest-even per summand, same exact integer addition — but
/// restructured for a tight inner loop:
///
/// * the window scale `2^(63 − exp)` is computed **once** at construction
///   and hoisted out of the loop;
/// * overflow (summand too large for the window, or the running sum
///   wrapping) is recorded in a sticky **flag** instead of a per-add
///   `Result`, so the loop has no early exit and no branch on the happy
///   path.
///
/// The contract with the scalar path: for the same summand sequence,
/// [`flagged`](Self::flagged) is `true` **iff** the equivalent sequence of
/// `BlockAccum::add` calls returns an error, and when it is `false` the
/// final mantissa is bit-identical.  A flagged lane's mantissa is garbage
/// (casts saturate, sums wrap) and must be discarded — the caller re-runs
/// the row through the scalar oracle to recover the exact error value.
#[derive(Clone, Copy, Debug)]
pub struct BatchLane {
    exp: i32,
    scale: f64,
    mant: i64,
    flagged: bool,
}

impl BatchLane {
    /// Fresh lane with the given window exponent.
    #[inline]
    pub fn new(exp: i32) -> Self {
        Self {
            exp,
            scale: exp2i(MANT_BITS - exp),
            mant: 0,
            flagged: false,
        }
    }

    /// Shift `x` onto the block grid and add it, deferring overflow
    /// detection to the sticky flag.
    #[inline(always)]
    pub fn add(&mut self, x: f64) {
        self.add_rounded((x * self.scale).round_ties_even());
    }

    /// Add a summand that the caller has already shifted onto the block
    /// grid: `q` must be `(x * self.scale()).round_ties_even()` for the
    /// value `x` being accumulated.  This is the SIMD kernel's entry
    /// point — the scale-and-round runs lane-parallel, while the `i64`
    /// accumulation stays **sequential** here so the sticky overflow
    /// flag raises for exactly the same prefixes as [`add`](Self::add)
    /// (wrap-around is order-dependent; a strided vector sum could miss
    /// an intermediate wrap the scalar path sees, or see one it
    /// doesn't).
    #[inline(always)]
    pub fn add_rounded(&mut self, q: f64) {
        // Same deliberately negated predicate as `BlockAccum::add`, so NaN
        // also raises the flag.
        #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::excessive_precision)]
        let too_big = !(q.abs() < 9.223_372_036_854_775_8e18);
        let (sum, carry) = self.mant.overflowing_add(q as i64);
        self.mant = sum;
        self.flagged |= too_big | carry;
    }

    /// The grid shift factor `2^(63 − exp)` applied to every summand.
    /// Callers pre-scaling summands for [`add_rounded`](Self::add_rounded)
    /// must use exactly this value.
    #[inline]
    pub const fn scale(&self) -> f64 {
        self.scale
    }

    /// Has any summand or the running sum overflowed the window?
    #[inline]
    pub fn flagged(&self) -> bool {
        self.flagged
    }

    /// The window exponent.
    #[inline]
    pub const fn exp(&self) -> i32 {
        self.exp
    }

    /// Convert into a [`BlockAccum`]; `None` if the lane overflowed (the
    /// mantissa is then meaningless and the caller must fall back to the
    /// scalar path for the exact error).
    #[inline]
    pub fn into_accum(self) -> Option<BlockAccum> {
        if self.flagged {
            None
        } else {
            Some(BlockAccum {
                exp: self.exp,
                mant: self.mant,
            })
        }
    }
}

/// A finished block floating-point result as it travels up the reduction
/// network and back to the host: 64-bit mantissa plus the block exponent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForceWord {
    /// Block exponent of the window.
    pub exp: i32,
    /// Integer mantissa; value is `mant · 2^(exp − 63)`.
    pub mant: i64,
}

impl ForceWord {
    /// Convert to a double (what the host library hands to the integrator).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.mant as f64 * exp2i(self.exp - MANT_BITS)
    }
}

/// Minimal window exponent whose grid can represent magnitude `mag`.
#[inline]
fn min_exp_for(mag: f64) -> i32 {
    if mag == 0.0 {
        return -MANT_BITS;
    }
    // Need 2^exp > |mag|, i.e. exp ≥ floor(log2|mag|) + 1.  An infinite
    // magnitude (summands past f64 range) saturates the cast to i32::MAX;
    // saturate the +1 too so the caller sees a huge window and reports
    // exponent divergence instead of tripping overflow checks here.
    let e = mag.abs().log2().floor() as i32;
    e.saturating_add(1)
}

/// `2^n` for possibly large |n|, without powi's domain quirks.
#[inline]
fn exp2i(n: i32) -> f64 {
    f64::from_bits((((1023 + n.clamp(-1022, 1023)) as u64) << 52).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2i_matches_powi() {
        for n in -60..=60 {
            assert_eq!(exp2i(n), 2f64.powi(n), "n = {n}");
        }
    }

    #[test]
    fn sum_of_exact_values_is_exact() {
        let mut acc = BlockAccum::new(4); // window ±16, resolution 2^-59
        for x in [1.0, 2.5, -0.75, 3.125] {
            acc.add(x).unwrap();
        }
        assert_eq!(acc.to_f64(), 5.875);
    }

    #[test]
    fn order_independence_exhaustive_small() {
        // All 24 permutations of 4 awkward values give the same mantissa.
        let vals = [0.1, -7.3e-3, 2.9999, -1.0e-4];
        let perms = permutations(&vals);
        let reference = sum_mant(&vals, 2);
        for p in perms {
            assert_eq!(sum_mant(&p, 2), reference, "permutation {p:?}");
        }
    }

    #[test]
    fn partition_independence() {
        // Summing in one accumulator vs. two merged halves is bit-identical.
        let vals: Vec<f64> = (0..64)
            .map(|i| ((i * 2654435761u64 % 1000) as f64 - 500.0) * 1e-3)
            .collect();
        let exp = 4;
        let whole = sum_mant(&vals, exp);
        for split in [1usize, 7, 13, 32, 63] {
            let mut left = BlockAccum::new(exp);
            let mut right = BlockAccum::new(exp);
            for &v in &vals[..split] {
                left.add(v).unwrap();
            }
            for &v in &vals[split..] {
                right.add(v).unwrap();
            }
            left.merge(&right).unwrap();
            assert_eq!(left.mant(), whole, "split at {split}");
        }
    }

    #[test]
    fn summand_overflow_reports_needed_exponent() {
        let mut acc = BlockAccum::new(0); // window ±1
        let err = acc.add(8.0).unwrap_err();
        match err {
            BlockFpError::SummandOverflow { needed_exp } => {
                assert!(needed_exp >= 4, "needed_exp = {needed_exp}");
                // Retrying with the reported exponent succeeds.
                let mut acc2 = BlockAccum::new(needed_exp);
                acc2.add(8.0).unwrap();
                assert_eq!(acc2.to_f64(), 8.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sum_overflow_detected() {
        let mut acc = BlockAccum::new(1); // window ±2
        acc.add(1.9).unwrap();
        // Each summand fits, but the running total exceeds the window.
        let r1 = acc.add(1.9);
        assert_eq!(r1, Err(BlockFpError::SumOverflow));
    }

    #[test]
    fn exponent_mismatch_refused() {
        let mut a = BlockAccum::new(3);
        let b = BlockAccum::new(4);
        assert!(matches!(
            a.merge(&b),
            Err(BlockFpError::ExponentMismatch { left: 3, right: 4 })
        ));
    }

    #[test]
    fn guess_exp_gives_headroom() {
        let mag = 0.37;
        let exp = BlockAccum::guess_exp(mag);
        let mut acc = BlockAccum::new(exp);
        // 2^GUARD worth of same-sign summands fit.
        for _ in 0..(1 << DEFAULT_GUARD_BITS) {
            acc.add(mag * 0.99).unwrap();
        }
    }

    #[test]
    fn shift_rounding_error_is_half_grid() {
        let exp = 2; // resolution 2^-61
        let x = 1.0 + 2f64.powi(-62); // below resolution
        let mut acc = BlockAccum::new(exp);
        acc.add(x).unwrap();
        assert_eq!(acc.to_f64(), 1.0);
    }

    #[test]
    fn force_word_roundtrip() {
        let mut acc = BlockAccum::new(5);
        acc.add(-11.375).unwrap();
        let w = acc.finish();
        assert_eq!(w.to_f64(), acc.to_f64());
        assert_eq!(w.exp, 5);
    }

    #[test]
    fn batch_lane_matches_block_accum_bitwise() {
        let vals: Vec<f64> = (0..257)
            .map(|i| ((i * 2654435761u64 % 2000) as f64 - 1000.0) * 7.3e-5)
            .collect();
        for exp in [6, 10, 20] {
            let mut acc = BlockAccum::new(exp);
            let mut lane = BatchLane::new(exp);
            for &v in &vals {
                acc.add(v).unwrap();
                lane.add(v);
            }
            assert!(!lane.flagged(), "exp = {exp}");
            let got = lane.into_accum().unwrap();
            assert_eq!(got.mant(), acc.mant(), "exp = {exp}");
            assert_eq!(got.exp(), acc.exp());
        }
    }

    #[test]
    fn batch_lane_flags_exactly_when_scalar_errors() {
        // Summand overflow: one value alone busts the window.
        let mut acc = BlockAccum::new(0);
        let mut lane = BatchLane::new(0);
        assert!(acc.add(8.0).is_err());
        lane.add(8.0);
        assert!(lane.flagged());
        assert!(lane.into_accum().is_none());

        // Sum overflow: each summand fits, the total wraps.
        let mut acc = BlockAccum::new(1);
        let mut lane = BatchLane::new(1);
        acc.add(1.9).unwrap();
        lane.add(1.9);
        assert!(!lane.flagged());
        assert!(acc.add(1.9).is_err());
        lane.add(1.9);
        assert!(lane.flagged());

        // NaN takes the flag path, mirroring the scalar NaN convention.
        let mut lane = BatchLane::new(10);
        lane.add(f64::NAN);
        assert!(lane.flagged());

        // The flag is sticky even if later adds would bring the wrapped
        // sum back into range.
        let mut lane = BatchLane::new(1);
        lane.add(1.9);
        lane.add(1.9);
        lane.add(-1.9);
        assert!(lane.flagged());
    }

    #[test]
    fn add_rounded_is_equivalent_to_add() {
        // `add_rounded(round(x·scale))` must reproduce `add(x)` exactly —
        // mantissa bits and flag — for arbitrary bit patterns, including
        // NaN/inf payloads and values that wrap the window.  This is the
        // contract the SIMD kernel's pre-scaled accumulation relies on.
        let mut s: u64 = 0x243f_6a88_85a3_08d3;
        for exp in [-40i32, -3, 0, 5, 62, 120] {
            let mut a = BatchLane::new(exp);
            let mut b = BatchLane::new(exp);
            for _ in 0..20_000 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let x = f64::from_bits(s);
                a.add(x);
                b.add_rounded((x * b.scale()).round_ties_even());
                assert_eq!(a.flagged(), b.flagged(), "exp={exp} bits={s:#018x}");
            }
            assert_eq!(a.flagged(), b.flagged());
            if let (Some(aa), Some(bb)) = (a.into_accum(), b.into_accum()) {
                assert_eq!(aa.mant(), bb.mant());
                assert_eq!(aa.exp(), bb.exp());
            }
        }
    }

    fn sum_mant(vals: &[f64], exp: i32) -> i64 {
        let mut acc = BlockAccum::new(exp);
        for &v in vals {
            acc.add(v).unwrap();
        }
        acc.mant()
    }

    fn permutations(v: &[f64; 4]) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let idx = [a, b, c, d];
                        let mut seen = [false; 4];
                        if idx.iter().all(|&i| !std::mem::replace(&mut seen[i], true)) {
                            out.push(idx.iter().map(|&i| v[i]).collect());
                        }
                    }
                }
            }
        }
        assert_eq!(out.len(), 24);
        out
    }
}
