//! 64-bit fixed-point coordinates.
//!
//! GRAPE hardware stores particle positions as 64-bit two's-complement fixed
//! point.  The motivation (Makino & Taiji 1998, ch. 4) is twofold:
//!
//! 1. the first pipeline operation is the coordinate difference
//!    `x_j − x_i`; in fixed point this subtraction is *exact*, so the
//!    pairwise separation carries no representation error even when the two
//!    particles are close together far from the origin — precisely the
//!    regime that matters in a collisional core;
//! 2. the on-chip predictor (eqs. 6–7 of the paper) can then be implemented
//!    with integer adders.
//!
//! The format is parameterised by the number of fraction bits `FRAC`; the
//! representable range is `[-2^(63-FRAC), 2^(63-FRAC))` with resolution
//! `2^-FRAC`.  The default position format [`PosFix`] uses `FRAC = 57`
//! (range ±64 length units, resolution ≈ 6.9e-18), comfortably covering a
//! Plummer model or planetesimal disk in Heggie units.
//!
//! Arithmetic wraps on overflow, exactly like the hardware registers; the
//! host library is responsible for keeping particles inside the box (the
//! real GRAPE-6 host library rescales coordinates the same way).

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// Fraction bits of the position format used throughout the machine.
pub const POS_FRAC_BITS: u32 = 57;

/// Position fixed-point word: range ±64, resolution 2⁻⁵⁷.
pub type PosFix = Fix64<POS_FRAC_BITS>;

/// A 64-bit two's-complement fixed-point number with `FRAC` fraction bits.
///
/// The raw integer `r` represents the real value `r · 2^-FRAC`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fix64<const FRAC: u32>(i64);

impl<const FRAC: u32> Fix64<FRAC> {
    /// Smallest positive representable increment (`2^-FRAC`).
    pub const RESOLUTION: f64 = 1.0 / (1u128 << FRAC) as f64;

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// Construct from the raw 64-bit word.
    #[inline]
    pub const fn from_raw(raw: i64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit word.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Convert a double to fixed point, rounding to nearest (ties to even).
    ///
    /// Values outside the representable range wrap, mirroring what the real
    /// memory interface would store; use [`Fix64::try_from_f64`] to detect
    /// out-of-box particles instead.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let scaled = x * (1u128 << FRAC) as f64;
        // `f64 as i64` saturates in Rust; emulate hardware wrapping via i128.
        let wide = round_ties_even_i128(scaled);
        Self(wide as i64)
    }

    /// Convert a double to fixed point, failing if it falls outside the box.
    pub fn try_from_f64(x: f64) -> Result<Self, FixRangeError> {
        if !x.is_finite() {
            return Err(FixRangeError { value: x });
        }
        let scaled = x * (1u128 << FRAC) as f64;
        let wide = round_ties_even_i128(scaled);
        if wide < i64::MIN as i128 || wide > i64::MAX as i128 {
            return Err(FixRangeError { value: x });
        }
        Ok(Self(wide as i64))
    }

    /// Back to double precision.  Exact whenever `|raw| < 2^53`; for larger
    /// magnitudes the nearest double is returned (sub-resolution error).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::RESOLUTION
    }

    /// Exact difference `other − self` as a double.
    ///
    /// The subtraction happens in integer arithmetic (exact); only the final
    /// conversion rounds, so nearby particles lose no significance.  This is
    /// the operation the pipeline's front-end performs on the i/j positions.
    #[inline]
    pub fn exact_delta_to(self, other: Self) -> f64 {
        other.0.wrapping_sub(self.0) as f64 * Self::RESOLUTION
    }

    /// Wrapping addition of a real-valued displacement (predictor use).
    #[inline]
    pub fn offset_f64(self, dx: f64) -> Self {
        let d = round_ties_even_i128(dx * (1u128 << FRAC) as f64) as i64;
        Self(self.0.wrapping_add(d))
    }
}

/// Round a scaled value to the nearest integer (ties to even), in i128 so
/// the caller can decide between wrapping and checked semantics.
#[inline]
fn round_ties_even_i128(x: f64) -> i128 {
    // `f64::round_ties_even` exists since 1.77.
    let r = x.round_ties_even();
    if r >= i128::MAX as f64 {
        i128::MAX
    } else if r <= i128::MIN as f64 {
        i128::MIN
    } else {
        r as i128
    }
}

impl<const FRAC: u32> Add for Fix64<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }
}

impl<const FRAC: u32> Sub for Fix64<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }
}

impl<const FRAC: u32> Neg for Fix64<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.wrapping_neg())
    }
}

impl<const FRAC: u32> fmt::Debug for Fix64<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fix64<{}>({} = {:.17e})", FRAC, self.0, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fix64<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// A value could not be represented in the fixed-point box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixRangeError {
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for FixRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {:e} is outside the fixed-point coordinate box",
            self.value
        )
    }
}

impl std::error::Error for FixRangeError {}

/// A fixed-point 3-vector (one position word per coordinate).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FixVec3<const FRAC: u32> {
    /// x component.
    pub x: Fix64<FRAC>,
    /// y component.
    pub y: Fix64<FRAC>,
    /// z component.
    pub z: Fix64<FRAC>,
}

/// Position vector in the machine's coordinate format.
pub type PosVec = FixVec3<POS_FRAC_BITS>;

impl<const FRAC: u32> FixVec3<FRAC> {
    /// Convert from a double-precision triple.
    #[inline]
    pub fn from_f64(v: [f64; 3]) -> Self {
        Self {
            x: Fix64::from_f64(v[0]),
            y: Fix64::from_f64(v[1]),
            z: Fix64::from_f64(v[2]),
        }
    }

    /// Convert back to doubles.
    #[inline]
    pub fn to_f64(self) -> [f64; 3] {
        [self.x.to_f64(), self.y.to_f64(), self.z.to_f64()]
    }

    /// Exact componentwise difference `other − self`, as doubles.
    #[inline]
    pub fn exact_delta_to(self, other: Self) -> [f64; 3] {
        [
            self.x.exact_delta_to(other.x),
            self.y.exact_delta_to(other.y),
            self.z.exact_delta_to(other.z),
        ]
    }

    /// Offset by a real displacement (wrapping), used by the predictor.
    #[inline]
    pub fn offset_f64(self, d: [f64; 3]) -> Self {
        Self {
            x: self.x.offset_f64(d[0]),
            y: self.y.offset_f64(d[1]),
            z: self.z.offset_f64(d[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_zero_and_small() {
        assert_eq!(PosFix::from_f64(0.0).to_f64(), 0.0);
        let x = 0.125;
        assert_eq!(PosFix::from_f64(x).to_f64(), x);
    }

    #[test]
    fn resolution_matches_frac() {
        assert_eq!(PosFix::RESOLUTION, 2f64.powi(-57));
        let one_ulp = PosFix::from_raw(1);
        assert_eq!(one_ulp.to_f64(), 2f64.powi(-57));
    }

    #[test]
    fn exact_difference_of_close_particles() {
        // Two particles 1 ulp apart at a large offset: the f64 positions are
        // identical after rounding, but the fixed-point delta is exact.
        let a = PosFix::from_f64(17.0);
        let b = PosFix::from_raw(a.raw() + 3);
        let d = a.exact_delta_to(b);
        assert_eq!(d, 3.0 * PosFix::RESOLUTION);
        // Converting to f64 first and subtracting loses the separation
        // entirely (17·2^57 needs 62 bits of mantissa): this is exactly why
        // the hardware subtracts in fixed point.
        assert_ne!(b.to_f64() - a.to_f64(), d);
    }

    #[test]
    fn range_error_detected() {
        assert!(PosFix::try_from_f64(100.0).is_err());
        assert!(PosFix::try_from_f64(f64::NAN).is_err());
        assert!(PosFix::try_from_f64(63.9).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = PosFix::from_f64(1.5);
        let b = PosFix::from_f64(-0.25);
        assert_eq!((a + b).to_f64(), 1.25);
        assert_eq!((a - b).to_f64(), 1.75);
        assert_eq!((-b).to_f64(), 0.25);
    }

    #[test]
    fn rounding_is_to_nearest() {
        // Half an ulp above a representable value rounds to even.
        let v = 2.5 * PosFix::RESOLUTION;
        let f = PosFix::from_f64(v);
        assert_eq!(f.raw(), 2, "2.5 ulp rounds to 2 (ties to even)");
        let v = 3.5 * PosFix::RESOLUTION;
        assert_eq!(PosFix::from_f64(v).raw(), 4);
    }

    #[test]
    fn vec3_roundtrip_and_delta() {
        let p = PosVec::from_f64([0.5, -1.25, 3.0]);
        assert_eq!(p.to_f64(), [0.5, -1.25, 3.0]);
        let q = PosVec::from_f64([1.0, -1.0, 2.0]);
        let d = p.exact_delta_to(q);
        assert_eq!(d, [0.5, 0.25, -1.0]);
    }

    #[test]
    fn offset_applies_displacement() {
        let p = PosFix::from_f64(1.0);
        let q = p.offset_f64(0.5);
        assert_eq!(q.to_f64(), 1.5);
    }
}
