//! The pipeline's `x^(-3/2)` functional unit.
//!
//! The heart of the GRAPE force pipeline is a single hardware block that maps
//! `x = r² + ε²` to `x^(-3/2)` (one output feeds the acceleration terms; its
//! square root relative, `x^(-1/2)`, feeds the potential).  In silicon this
//! is a table lookup with piecewise-polynomial correction — there is no
//! divider or iterative square root in the pipeline, which is how one
//! interaction per cycle is sustained.
//!
//! [`RsqrtCubedUnit`] reproduces that structure: the argument is decomposed
//! as `x = m·4^k` with `m ∈ [1,4)`, the mantissa factor `m^(-3/2)` (and
//! `m^(-1/2)`) is evaluated by a second-order Taylor segment from a table of
//! `2^LOG2_SEGMENTS` entries, and the exponent factor `2^(-3k)` (resp.
//! `2^-k`) is applied exactly.  Like the silicon, the table is addressed
//! *directly by the mantissa bits*: half the segments cover the `[1, 2)`
//! binade and half cover `[2, 4)`, so the segment index is the binade bit
//! concatenated with the top mantissa bits — no divider even in the index
//! computation.  Each segment is one cache-line-sized record holding the
//! midpoint and both coefficient triples, so evaluating both outputs costs a
//! single table load.  With the default 10-bit table the relative error is
//! below `2^-26`, i.e. below the pipeline's own rounding, matching the
//! design rule that the functional unit must not dominate the force error
//! budget.
//!
//! `x ≤ 0` returns `0`, mirroring the hardware convention that makes the
//! self-interaction (`r = 0`, `ε = 0`) contribute zero force instead of NaN.

/// Default table size exponent (1024 segments over `[1, 4)`).
pub const DEFAULT_LOG2_SEGMENTS: u32 = 10;

/// One table segment: midpoint plus both Taylor coefficient triples, padded
/// and aligned so each lookup touches exactly one 64-byte cache line.
#[derive(Clone, Debug)]
#[repr(C, align(64))]
struct Segment {
    /// Segment midpoint `m0`.
    m0: f64,
    /// Taylor coefficients `(f, f', f''/2)` of `m^(-3/2)` at `m0`.
    c32: [f64; 3],
    /// Same for `m^(-1/2)` (potential path).
    c12: [f64; 3],
    _pad: f64,
}

// The SIMD gather in `eval_both_lanes` addresses the table as a flat
// array of f64 with a stride of 8 per segment — pin the layout down.
const _: () = assert!(std::mem::size_of::<Segment>() == 64);

/// Table-driven evaluator for `x^(-3/2)` and `x^(-1/2)`.
#[derive(Clone, Debug)]
pub struct RsqrtCubedUnit {
    /// Fused segment table, addressed by binade bit ‖ top mantissa bits.
    seg: Vec<Segment>,
    /// Table size exponent this unit was built with.
    pub log2_segments: u32,
}

impl Default for RsqrtCubedUnit {
    fn default() -> Self {
        Self::new(DEFAULT_LOG2_SEGMENTS)
    }
}

impl RsqrtCubedUnit {
    /// Build the unit with `2^log2_segments` table entries (4–16 supported).
    pub fn new(log2_segments: u32) -> Self {
        assert!(
            (4..=16).contains(&log2_segments),
            "table size exponent must be in 4..=16"
        );
        let n = 1usize << log2_segments;
        let half = n / 2;
        let mut seg = Vec::with_capacity(n);
        for i in 0..n {
            // Binade-aligned segments: entries 0..n/2 tile [1, 2) uniformly,
            // entries n/2..n tile [2, 4).  The midpoint is exactly
            // representable (a dyadic rational well inside f64 precision).
            let m0 = if i < half {
                1.0 + (i as f64 + 0.5) / half as f64
            } else {
                2.0 + ((i - half) as f64 + 0.5) * 2.0 / half as f64
            };
            // f(m) = m^(-3/2): f' = -3/2 m^(-5/2), f'' = 15/4 m^(-7/2)
            let f = m0.powf(-1.5);
            // g(m) = m^(-1/2): g' = -1/2 m^(-3/2), g'' = 3/4 m^(-5/2)
            let g = m0.powf(-0.5);
            seg.push(Segment {
                m0,
                c32: [f, -1.5 * f / m0, 0.5 * (15.0 / 4.0) * f / (m0 * m0)],
                c12: [g, -0.5 * g / m0, 0.5 * (3.0 / 4.0) * g / (m0 * m0)],
                _pad: 0.0,
            });
        }
        Self { seg, log2_segments }
    }

    /// Number of table segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.seg.len()
    }

    /// Evaluate `x^(-3/2)` (force path).
    #[inline]
    pub fn eval_pow_m32(&self, x: f64) -> f64 {
        self.eval(x, true)
    }

    /// Evaluate `x^(-1/2)` (potential path).
    #[inline]
    pub fn eval_pow_m12(&self, x: f64) -> f64 {
        self.eval(x, false)
    }

    /// Evaluate both paths from **one** decomposition and table index.
    ///
    /// Returns `(x^(-3/2), x^(-1/2))`, bit-for-bit identical to calling
    /// [`eval_pow_m32`](Self::eval_pow_m32) and
    /// [`eval_pow_m12`](Self::eval_pow_m12) separately — the segment lookup
    /// and Taylor evaluation use exactly the same operations — but the
    /// argument is split and indexed once.  This is the batched kernel's
    /// entry point.
    #[inline]
    pub fn eval_both(&self, x: f64) -> (f64, f64) {
        if x <= 0.0 || !x.is_finite() {
            return (0.0, 0.0);
        }
        let (m, k) = split_pow4(x);
        let s = self.segment(m);
        let d = m - s.m0;
        (
            (s.c32[0] + d * (s.c32[1] + d * s.c32[2])) * pow2(-3 * k),
            (s.c12[0] + d * (s.c12[1] + d * s.c12[2])) * pow2(-k),
        )
    }

    /// Segment record for a mantissa `m ∈ [1, 4)`, addressed directly from
    /// the bit pattern: the low exponent bit selects the binade (`[1, 2)`
    /// has biased exponent 1023, `[2, 4)` has 1024) and the top mantissa
    /// bits select the segment within it.  No division, no float→int
    /// conversion — this is the table addressing the hardware uses.
    #[inline]
    fn segment(&self, m: f64) -> &Segment {
        let bits = m.to_bits();
        let half_bits = self.log2_segments - 1;
        let upper = (((bits >> 52) & 1) ^ 1) as usize;
        let frac = ((bits >> (52 - half_bits)) as usize) & ((1 << half_bits) - 1);
        &self.seg[(upper << half_bits) | frac]
    }

    #[inline]
    fn eval(&self, x: f64, cubed: bool) -> f64 {
        if x <= 0.0 || !x.is_finite() {
            return 0.0;
        }
        let (m, k) = split_pow4(x);
        let s = self.segment(m);
        let d = m - s.m0;
        if cubed {
            (s.c32[0] + d * (s.c32[1] + d * s.c32[2])) * pow2(-3 * k)
        } else {
            (s.c12[0] + d * (s.c12[1] + d * s.c12[2])) * pow2(-k)
        }
    }

    /// Worst relative error of the `x^(-3/2)` path over a dense sweep —
    /// used by tests and by the chip's self-check at construction.
    pub fn max_rel_error_m32(&self, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..samples {
            // Sweep several binades to exercise the exponent logic.
            let x = 2f64.powf(-8.0 + 16.0 * (i as f64 + 0.5) / samples as f64);
            let approx = self.eval_pow_m32(x);
            let exact = x.powf(-1.5);
            worst = worst.max(((approx - exact) / exact).abs());
        }
        worst
    }
}

#[cfg(target_arch = "x86_64")]
impl RsqrtCubedUnit {
    /// Lane-parallel [`eval_both`](Self::eval_both): decompose a whole
    /// vector of arguments, gather the fused 64-byte segment records for
    /// every lane, and run the two Taylor chains lanewise — bit-identical
    /// to the scalar evaluation on every lane.
    ///
    /// The fast path covers positive normal arguments whose exponent
    /// factors `2^(−3k)` / `2^(−k)` are normal (i.e. `k ∈ [−341, 340]`,
    /// which is every force-pass argument by ~270 binades); zeros,
    /// negatives, subnormals, NaN/inf and out-of-window exponents drop to
    /// a per-lane scalar [`eval_both`](Self::eval_both) fixup, so the
    /// contract holds for *arbitrary* bit patterns.  The table gather is
    /// in-bounds for every lane — special or not — because the index is
    /// masked to `2^log2_segments` entries by construction.
    ///
    /// # Safety
    /// `L`'s ISA must be available on the running CPU.
    #[inline(always)]
    pub unsafe fn eval_both_lanes<L: crate::simd::Lanes>(&self, x: L::F) -> (L::F, L::F) {
        let bits = L::to_bits(x);
        // bf = sign ‖ biased exponent: for positive x this *is* the biased
        // exponent; any negative x lands ≥ 2048 and fails the window test.
        let bf = L::shr_i(bits, 52);
        let one = L::splat_i(1);
        // k = ⌊e/2⌋ computed in the non-negative biased domain so a
        // logical shift suffices: ⌊(bf−1023)/2⌋ = ((bf+1) >> 1) − 512.
        let bf1 = L::add_i(bf, one);
        let k = L::sub_i(L::shr_i(bf1, 1), L::splat_i(512));
        let modd = L::and_i(bf1, one); // e − 2k ∈ {0, 1}
                                       // Fast-path window: positive normal ∧ k ∈ [−341, 340].
        let ok = L::mask_and(
            L::mask_and(
                L::cmpgt_i(bf, L::splat_i(0)),
                L::cmpgt_i(L::splat_i(2047), bf),
            ),
            L::mask_and(
                L::cmpgt_i(k, L::splat_i(-342)),
                L::cmpgt_i(L::splat_i(341), k),
            ),
        );
        // m ∈ [1, 4): the mantissa re-biased to exponent e − 2k, exactly
        // as `split_pow4` builds it.
        let m_bits = L::or_i(
            L::and_i(bits, L::splat_i(0x000f_ffff_ffff_ffff)),
            L::shl_i(L::add_i(L::splat_i(1023), modd), 52),
        );
        let m = L::from_bits(m_bits);
        // Segment index straight from the mantissa bits, as in `segment`:
        // inverted binade bit ‖ top mantissa bits — masked, so in-bounds
        // for every lane.
        let half_bits = self.log2_segments - 1;
        let upper = L::and_i(L::xor_i(L::shr_i(m_bits, 52), one), one);
        let frac = L::and_i(
            L::shr_i(m_bits, 52 - half_bits),
            L::splat_i((1i64 << half_bits) - 1),
        );
        let idx = L::or_i(L::shl_i(upper, half_bits), frac);
        // One segment record is 64 bytes = 8 doubles; gather each field.
        let off = L::shl_i(idx, 3);
        let base = self.seg.as_ptr() as *const f64;
        let m0 = L::gather(base, off);
        let c32_0 = L::gather(base, L::add_i(off, L::splat_i(1)));
        let c32_1 = L::gather(base, L::add_i(off, L::splat_i(2)));
        let c32_2 = L::gather(base, L::add_i(off, L::splat_i(3)));
        let c12_0 = L::gather(base, L::add_i(off, L::splat_i(4)));
        let c12_1 = L::gather(base, L::add_i(off, L::splat_i(5)));
        let c12_2 = L::gather(base, L::add_i(off, L::splat_i(6)));
        // Taylor chains in the scalar evaluation's exact op order (no FMA).
        let d = L::sub(m, m0);
        let p32 = L::add(c32_0, L::mul(d, L::add(c32_1, L::mul(d, c32_2))));
        let p12 = L::add(c12_0, L::mul(d, L::add(c12_1, L::mul(d, c12_2))));
        // Exponent factors 2^(−3k) and 2^(−k) built like `pow2`'s
        // from_bits arm (the window test guaranteed both are normal for
        // ok lanes; junk in the others is overwritten below).
        let zero = L::splat_i(0);
        let n32 = L::sub_i(zero, L::add_i(L::add_i(k, k), k));
        let n12 = L::sub_i(zero, k);
        let pw32 = L::from_bits(L::shl_i(L::add_i(L::splat_i(1023), n32), 52));
        let pw12 = L::from_bits(L::shl_i(L::add_i(L::splat_i(1023), n12), 52));
        let mut r32 = L::mul(p32, pw32);
        let mut r12 = L::mul(p12, pw12);
        let okb = L::mask_bits(ok);
        if okb != L::ALL {
            // Rare lanes outside the fast-path window: scalar fixup,
            // one lane at a time, through the reference evaluation.
            let mut xs = [0.0f64; 8];
            let mut a32 = [0.0f64; 8];
            let mut a12 = [0.0f64; 8];
            L::store(xs.as_mut_ptr(), x);
            L::store(a32.as_mut_ptr(), r32);
            L::store(a12.as_mut_ptr(), r12);
            for lane in 0..L::WIDTH {
                if okb & (1 << lane) == 0 {
                    let (s32, s12) = self.eval_both(xs[lane]);
                    a32[lane] = s32;
                    a12[lane] = s12;
                }
            }
            r32 = L::load(a32.as_ptr());
            r12 = L::load(a12.as_ptr());
        }
        (r32, r12)
    }

    #[inline(always)]
    unsafe fn eval_slice_lanes<L: crate::simd::Lanes>(
        &self,
        xs: &[f64],
        out32: &mut [f64],
        out12: &mut [f64],
    ) {
        let n = xs.len();
        let mut i = 0;
        while i + L::WIDTH <= n {
            let v = L::load(xs.as_ptr().add(i));
            let (r32, r12) = self.eval_both_lanes::<L>(v);
            L::store(out32.as_mut_ptr().add(i), r32);
            L::store(out12.as_mut_ptr().add(i), r12);
            i += L::WIDTH;
        }
        for k in i..n {
            let (r32, r12) = self.eval_both(xs[k]);
            out32[k] = r32;
            out12[k] = r12;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn eval_slice_avx2(&self, xs: &[f64], out32: &mut [f64], out12: &mut [f64]) {
        self.eval_slice_lanes::<crate::simd::Avx2>(xs, out32, out12)
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn eval_slice_avx512(&self, xs: &[f64], out32: &mut [f64], out12: &mut [f64]) {
        self.eval_slice_lanes::<crate::simd::Avx512>(xs, out32, out12)
    }
}

impl RsqrtCubedUnit {
    /// Safe slice-shaped wrapper over the lane evaluation
    /// (`eval_both_lanes`): evaluates through the active SIMD level (tail
    /// through the scalar [`eval_both`](Self::eval_both)) and returns the
    /// level used, or `None` (outputs untouched) when SIMD dispatch is
    /// off or the architecture has no lane implementation — callers then
    /// run the scalar path themselves.
    pub fn eval_both_slice(
        &self,
        xs: &[f64],
        out32: &mut [f64],
        out12: &mut [f64],
    ) -> Option<crate::simd::SimdLevel> {
        assert_eq!(xs.len(), out32.len());
        assert_eq!(xs.len(), out12.len());
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd::{active_level, SimdLevel};
            match active_level() {
                Some(SimdLevel::Avx2) => {
                    // SAFETY: dispatch proved avx2 is available.
                    unsafe { self.eval_slice_avx2(xs, out32, out12) };
                    Some(SimdLevel::Avx2)
                }
                Some(SimdLevel::Avx512) => {
                    // SAFETY: dispatch proved avx512f+dq are available.
                    unsafe { self.eval_slice_avx512(xs, out32, out12) };
                    Some(SimdLevel::Avx512)
                }
                None => None,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (xs, out32, out12);
            None
        }
    }
}

/// Decompose a positive finite `x` as `m · 4^k` with `m ∈ [1, 4)`, exactly.
///
/// The exponent is read straight from the bit pattern (the mantissa of a
/// normal float lies in `[1, 2)`, so the stored exponent *is*
/// `⌊log₂ x⌋`), and `m` is rebuilt by re-biasing that exponent to
/// `e − 2k ∈ {0, 1}` — no rounding anywhere, and no `log2` call in the
/// hot path.  Subnormals are first renormalised by an exact `2^54`.
#[inline]
fn split_pow4(x: f64) -> (f64, i32) {
    let (bits, shift) = {
        let b = x.to_bits();
        if b >> 52 == 0 {
            ((x * 18_014_398_509_481_984.0).to_bits(), 54) // × 2^54, exact
        } else {
            (b, 0)
        }
    };
    let e = ((bits >> 52) as i32) - 1023 - shift;
    let k = e.div_euclid(2);
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (((1023 + (e - 2 * k)) as u64) << 52));
    debug_assert!((1.0..4.0).contains(&m), "m = {m}");
    (m, k)
}

/// Exact power of two; falls back to `powi` outside the normal range.
#[inline]
fn pow2(n: i32) -> f64 {
    if (-1022..=1023).contains(&n) {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else {
        2f64.powi(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_powers_of_four() {
        let u = RsqrtCubedUnit::default();
        for k in -4..=4 {
            let x = 4f64.powi(k);
            let got = u.eval_pow_m32(x);
            let want = x.powf(-1.5);
            assert!(
                ((got - want) / want).abs() < 1e-7,
                "x = {x}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn accuracy_below_pipeline_rounding() {
        let u = RsqrtCubedUnit::default();
        let err = u.max_rel_error_m32(20_000);
        assert!(
            err < 2f64.powi(-26),
            "table unit error {err:e} exceeds 2^-26"
        );
    }

    #[test]
    fn coarse_table_is_worse_fine_table_is_better() {
        let coarse = RsqrtCubedUnit::new(6);
        let fine = RsqrtCubedUnit::new(12);
        let ec = coarse.max_rel_error_m32(5_000);
        let ef = fine.max_rel_error_m32(5_000);
        assert!(ec > ef, "coarse {ec:e} should exceed fine {ef:e}");
        // Quadratic segments: halving the width cuts the error ~8x; 6 extra
        // bits of table should win at least a factor 100.
        assert!(ec / ef > 100.0);
    }

    #[test]
    fn potential_path_accuracy() {
        let u = RsqrtCubedUnit::default();
        for i in 0..5_000 {
            let x = 2f64.powf(-6.0 + 12.0 * (i as f64 + 0.5) / 5_000.0);
            let got = u.eval_pow_m12(x);
            let want = x.powf(-0.5);
            assert!(((got - want) / want).abs() < 2f64.powi(-26), "x = {x}");
        }
    }

    #[test]
    fn zero_and_negative_clamp_to_zero() {
        let u = RsqrtCubedUnit::default();
        assert_eq!(u.eval_pow_m32(0.0), 0.0);
        assert_eq!(u.eval_pow_m32(-1.0), 0.0);
        assert_eq!(u.eval_pow_m12(0.0), 0.0);
        assert_eq!(u.eval_pow_m32(f64::NAN), 0.0);
    }

    #[test]
    fn tiny_and_huge_arguments() {
        let u = RsqrtCubedUnit::default();
        for &x in &[1e-12f64, 1e12, 3.7e-9, 8.1e7] {
            let want = x.powf(-1.5);
            let got = u.eval_pow_m32(x);
            assert!(((got - want) / want).abs() < 1e-7, "x = {x:e}");
        }
    }

    #[test]
    fn split_is_exact_across_binade_boundaries() {
        // The exponent-window edges: exactly at a power of two, one ulp
        // below, and one ulp above.  The bit-extracted floor must place
        // each on the correct side (a libm `log2().floor()` may not).
        for e in [-1022i32, -600, -53, -2, -1, 0, 1, 2, 53, 600, 1023] {
            let p = if (-1022..=1023).contains(&e) {
                f64::from_bits(((1023 + e) as u64) << 52)
            } else {
                unreachable!()
            };
            for x in [p, next_down(p), next_up(p)] {
                // Subnormal neighbours are covered (in the log domain) by
                // `subnormal_inputs_decompose_exactly`; the 4^k
                // reconstruction below needs x and 4^k normal.
                if x < f64::MIN_POSITIVE || !x.is_finite() {
                    continue;
                }
                let (m, k) = split_pow4(x);
                assert!((1.0..4.0).contains(&m), "x = {x:e}: m = {m}");
                // Exact reconstruction: m · 4^k == x, bit for bit.
                let back = m * pow2(2 * k);
                assert_eq!(back.to_bits(), x.to_bits(), "x = {x:e}");
            }
        }
    }

    fn next_up(x: f64) -> f64 {
        f64::from_bits(x.to_bits() + 1)
    }

    fn next_down(x: f64) -> f64 {
        f64::from_bits(x.to_bits() - 1)
    }

    #[test]
    fn smallest_and_largest_normal_inputs() {
        let u = RsqrtCubedUnit::default();
        // Largest normal: x^(-3/2) underflows f64 entirely — the unit must
        // return a clean 0 (the exact answer to f64 precision), not junk.
        assert_eq!(u.eval_pow_m32(f64::MAX), 0.0);
        // …while the shallower potential path still has a finite value.
        let pot = u.eval_pow_m12(f64::MAX);
        let want = 1.0 / f64::MAX.sqrt();
        assert!(((pot - want) / want).abs() < 1e-7, "pot = {pot:e}");
        // Smallest normal: x^(-3/2) overflows — saturate to +inf like the
        // exact computation does.
        assert!(u.eval_pow_m32(f64::MIN_POSITIVE).is_infinite());
        let pot = u.eval_pow_m12(f64::MIN_POSITIVE);
        let want = 1.0 / f64::MIN_POSITIVE.sqrt();
        assert!(((pot - want) / want).abs() < 1e-7, "pot = {pot:e}");
    }

    #[test]
    fn subnormal_inputs_decompose_exactly() {
        for x in [
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0xf_ffff),              // mid subnormal
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        ] {
            let (m, k) = split_pow4(x);
            assert!((1.0..4.0).contains(&m), "x = {x:e}: m = {m}");
            // 4^k overflows pow2 for these, so check in the log domain.
            assert!(
                (m.log2() + 2.0 * k as f64 - x.log2()).abs() < 1e-9,
                "x = {x:e}"
            );
        }
        // The unit itself saturates: the exact x^(-1/2) of the smallest
        // subnormal is 2^537 — representable — and must come out close.
        let u = RsqrtCubedUnit::default();
        let x = f64::from_bits(1);
        let got = u.eval_pow_m12(x);
        let want = x.powf(-0.5);
        assert!(((got - want) / want).abs() < 1e-7, "got {got:e}");
    }

    #[test]
    fn segment_boundaries_stay_inside_the_error_bound() {
        // Every segment boundary in both binades, ± one ulp: the direct
        // bit-sliced index must keep the relative error inside the table
        // bound on both sides of each boundary (an off-by-one segment
        // selection would blow the quadratic remainder up).  Includes the
        // binade seam at m = 2 and the table wrap at m = 1 (one ulp below
        // lands in the last segment of [2, 4) one quartode down).
        let u = RsqrtCubedUnit::default();
        let half = u.segments() / 2;
        for s in 0..half {
            let lo = 1.0 + s as f64 / half as f64;
            let hi = 2.0 + s as f64 * 2.0 / half as f64;
            for x in [
                lo,
                next_up(lo),
                next_down(lo),
                hi,
                next_up(hi),
                next_down(hi),
            ] {
                let got = u.eval_pow_m32(x);
                let want = x.powf(-1.5);
                assert!(
                    ((got - want) / want).abs() < 2f64.powi(-26),
                    "boundary x = {x:e}"
                );
                let got12 = u.eval_pow_m12(x);
                let want12 = x.powf(-0.5);
                assert!(
                    ((got12 - want12) / want12).abs() < 2f64.powi(-26),
                    "boundary x = {x:e} (m12)"
                );
            }
        }
    }

    #[test]
    fn eval_both_is_bitwise_identical_to_separate_evals() {
        let u = RsqrtCubedUnit::default();
        let mut xs: Vec<f64> = (0..4_000)
            .map(|i| 2f64.powf(-24.0 + 48.0 * (i as f64 + 0.5) / 4_000.0))
            .collect();
        // Include the window edges and degenerate inputs.
        xs.extend_from_slice(&[
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0,
            4.0,
            next_down(4.0),
            next_up(1.0),
            0.0,
            -3.0,
            f64::NAN,
            f64::INFINITY,
        ]);
        for x in xs {
            let (m32, m12) = u.eval_both(x);
            assert_eq!(
                m32.to_bits(),
                u.eval_pow_m32(x).to_bits(),
                "m32 path diverged at x = {x:e}"
            );
            assert_eq!(
                m12.to_bits(),
                u.eval_pow_m12(x).to_bits(),
                "m12 path diverged at x = {x:e}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn lane_gather_is_bitwise_identical_to_scalar_eval_both() {
        use crate::simd::{Avx2, Avx512, Lanes};

        #[target_feature(enable = "avx2")]
        unsafe fn one_avx2(u: &RsqrtCubedUnit, xs: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
            let (r32, r12) = u.eval_both_lanes::<Avx2>(<Avx2 as Lanes>::load(xs.as_ptr()));
            let (mut a, mut b) = ([0.0; 4], [0.0; 4]);
            <Avx2 as Lanes>::store(a.as_mut_ptr(), r32);
            <Avx2 as Lanes>::store(b.as_mut_ptr(), r12);
            (a, b)
        }

        #[target_feature(enable = "avx512f,avx512dq")]
        unsafe fn one_avx512(u: &RsqrtCubedUnit, xs: &[f64; 8]) -> ([f64; 8], [f64; 8]) {
            let (r32, r12) = u.eval_both_lanes::<Avx512>(<Avx512 as Lanes>::load(xs.as_ptr()));
            let (mut a, mut b) = ([0.0; 8], [0.0; 8]);
            <Avx512 as Lanes>::store(a.as_mut_ptr(), r32);
            <Avx512 as Lanes>::store(b.as_mut_ptr(), r12);
            (a, b)
        }

        let avx2 = is_x86_feature_detected!("avx2");
        let avx512 = is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq");
        if !avx2 {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        // Default table and a non-default size (different index widths).
        for u in [RsqrtCubedUnit::default(), RsqrtCubedUnit::new(6)] {
            // Structured inputs: specials, segment/binade boundaries (both
            // sides, ± one ulp), subnormals, and exponents outside the
            // fast-path k-window (forcing the per-lane fixup).
            let mut xs: Vec<f64> = vec![
                0.0,
                -0.0,
                -1.0,
                f64::NAN,
                f64::from_bits(0x7ff8_dead_beef_0001), // NaN payload
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                f64::MAX,
                f64::from_bits(1),
                f64::from_bits(0x000f_ffff_ffff_ffff),
                2f64.powi(700),  // k outside [−341, 340]
                2f64.powi(-700), // k outside [−341, 340]
                1.0,
                4.0,
                next_up(1.0),
                next_down(4.0),
            ];
            let half = u.segments() / 2;
            for s in (0..half).step_by((half / 8).max(1)) {
                for b in [
                    1.0 + s as f64 / half as f64,
                    2.0 + s as f64 * 2.0 / half as f64,
                ] {
                    xs.extend_from_slice(&[b, next_up(b), next_down(b)]);
                }
            }
            // Random bit patterns: every float class.
            let mut s: u64 = 0x243f_6a88_85a3_08d3;
            for _ in 0..50_000 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                xs.push(f64::from_bits(s));
                // Biased toward force-pass magnitudes too.
                xs.push(f64::from_bits(
                    (s & 0x000f_ffff_ffff_ffff) | 0x3fe0_0000_0000_0000,
                ));
            }
            while xs.len() % 8 != 0 {
                xs.push(1.5);
            }
            for chunk in xs.chunks_exact(8) {
                let want: Vec<(u64, u64)> = chunk
                    .iter()
                    .map(|&x| {
                        let (a, b) = u.eval_both(x);
                        (a.to_bits(), b.to_bits())
                    })
                    .collect();
                for halfc in 0..2 {
                    let xs4: [f64; 4] = std::array::from_fn(|i| chunk[halfc * 4 + i]);
                    // SAFETY: avx2 checked above.
                    let (a, b) = unsafe { one_avx2(&u, &xs4) };
                    for i in 0..4 {
                        let w = want[halfc * 4 + i];
                        assert_eq!(a[i].to_bits(), w.0, "avx2 m32 x={:e}", xs4[i]);
                        assert_eq!(b[i].to_bits(), w.1, "avx2 m12 x={:e}", xs4[i]);
                    }
                }
                if avx512 {
                    let xs8: [f64; 8] = chunk.try_into().unwrap();
                    // SAFETY: avx512f+dq checked above.
                    let (a, b) = unsafe { one_avx512(&u, &xs8) };
                    for i in 0..8 {
                        assert_eq!(a[i].to_bits(), want[i].0, "avx512 m32 x={:e}", xs8[i]);
                        assert_eq!(b[i].to_bits(), want[i].1, "avx512 m12 x={:e}", xs8[i]);
                    }
                }
            }
        }
    }
}
