//! The pipeline's `x^(-3/2)` functional unit.
//!
//! The heart of the GRAPE force pipeline is a single hardware block that maps
//! `x = r² + ε²` to `x^(-3/2)` (one output feeds the acceleration terms; its
//! square root relative, `x^(-1/2)`, feeds the potential).  In silicon this
//! is a table lookup with piecewise-polynomial correction — there is no
//! divider or iterative square root in the pipeline, which is how one
//! interaction per cycle is sustained.
//!
//! [`RsqrtCubedUnit`] reproduces that structure: the argument is decomposed
//! as `x = m·4^k` with `m ∈ [1,4)`, the mantissa factor `m^(-3/2)` (and
//! `m^(-1/2)`) is evaluated by a second-order Taylor segment from a table of
//! `2^LOG2_SEGMENTS` entries, and the exponent factor `2^(-3k)` (resp.
//! `2^-k`) is applied exactly.  With the default 10-bit table the relative
//! error is below `2^-26`, i.e. below the pipeline's own rounding, matching
//! the design rule that the functional unit must not dominate the force
//! error budget.
//!
//! `x ≤ 0` returns `0`, mirroring the hardware convention that makes the
//! self-interaction (`r = 0`, `ε = 0`) contribute zero force instead of NaN.

/// Default table size exponent (1024 segments over `[1, 4)`).
pub const DEFAULT_LOG2_SEGMENTS: u32 = 10;

/// Table-driven evaluator for `x^(-3/2)` and `x^(-1/2)`.
#[derive(Clone, Debug)]
pub struct RsqrtCubedUnit {
    /// Per-segment Taylor coefficients `(f, f', f''/2)` of `m^(-3/2)` at the
    /// segment midpoint.
    seg32: Vec<[f64; 3]>,
    /// Same for `m^(-1/2)` (potential path).
    seg12: Vec<[f64; 3]>,
    /// Table size exponent this unit was built with.
    pub log2_segments: u32,
}

impl Default for RsqrtCubedUnit {
    fn default() -> Self {
        Self::new(DEFAULT_LOG2_SEGMENTS)
    }
}

impl RsqrtCubedUnit {
    /// Build the unit with `2^log2_segments` table entries (4–16 supported).
    pub fn new(log2_segments: u32) -> Self {
        assert!(
            (4..=16).contains(&log2_segments),
            "table size exponent must be in 4..=16"
        );
        let n = 1usize << log2_segments;
        let width = 3.0 / n as f64;
        let mut seg32 = Vec::with_capacity(n);
        let mut seg12 = Vec::with_capacity(n);
        for i in 0..n {
            let m0 = 1.0 + (i as f64 + 0.5) * width;
            // f(m) = m^(-3/2): f' = -3/2 m^(-5/2), f'' = 15/4 m^(-7/2)
            let f = m0.powf(-1.5);
            seg32.push([f, -1.5 * f / m0, 0.5 * (15.0 / 4.0) * f / (m0 * m0)]);
            // g(m) = m^(-1/2): g' = -1/2 m^(-3/2), g'' = 3/4 m^(-5/2)
            let g = m0.powf(-0.5);
            seg12.push([g, -0.5 * g / m0, 0.5 * (3.0 / 4.0) * g / (m0 * m0)]);
        }
        Self {
            seg32,
            seg12,
            log2_segments,
        }
    }

    /// Number of table segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.seg32.len()
    }

    /// Evaluate `x^(-3/2)` (force path).
    #[inline]
    pub fn eval_pow_m32(&self, x: f64) -> f64 {
        self.eval(x, true)
    }

    /// Evaluate `x^(-1/2)` (potential path).
    #[inline]
    pub fn eval_pow_m12(&self, x: f64) -> f64 {
        self.eval(x, false)
    }

    #[inline]
    fn eval(&self, x: f64, cubed: bool) -> f64 {
        if x <= 0.0 || !x.is_finite() {
            return 0.0;
        }
        // Decompose x = m · 4^k, m ∈ [1, 4).
        let e = x.log2().floor() as i32;
        let k = e.div_euclid(2);
        let m = x * pow2(-2 * k);
        debug_assert!((1.0..4.0 + 1e-12).contains(&m), "m = {m}");
        let n = self.seg32.len() as f64;
        let idx = (((m - 1.0) / 3.0) * n) as usize;
        let idx = idx.min(self.seg32.len() - 1);
        let width = 3.0 / n;
        let m0 = 1.0 + (idx as f64 + 0.5) * width;
        let d = m - m0;
        let (c, scale) = if cubed {
            (&self.seg32[idx], pow2(-3 * k))
        } else {
            (&self.seg12[idx], pow2(-k))
        };
        (c[0] + d * (c[1] + d * c[2])) * scale
    }

    /// Worst relative error of the `x^(-3/2)` path over a dense sweep —
    /// used by tests and by the chip's self-check at construction.
    pub fn max_rel_error_m32(&self, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..samples {
            // Sweep several binades to exercise the exponent logic.
            let x = 2f64.powf(-8.0 + 16.0 * (i as f64 + 0.5) / samples as f64);
            let approx = self.eval_pow_m32(x);
            let exact = x.powf(-1.5);
            worst = worst.max(((approx - exact) / exact).abs());
        }
        worst
    }
}

/// Exact power of two; falls back to `powi` outside the normal range.
#[inline]
fn pow2(n: i32) -> f64 {
    if (-1022..=1023).contains(&n) {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else {
        2f64.powi(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_powers_of_four() {
        let u = RsqrtCubedUnit::default();
        for k in -4..=4 {
            let x = 4f64.powi(k);
            let got = u.eval_pow_m32(x);
            let want = x.powf(-1.5);
            assert!(
                ((got - want) / want).abs() < 1e-7,
                "x = {x}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn accuracy_below_pipeline_rounding() {
        let u = RsqrtCubedUnit::default();
        let err = u.max_rel_error_m32(20_000);
        assert!(
            err < 2f64.powi(-26),
            "table unit error {err:e} exceeds 2^-26"
        );
    }

    #[test]
    fn coarse_table_is_worse_fine_table_is_better() {
        let coarse = RsqrtCubedUnit::new(6);
        let fine = RsqrtCubedUnit::new(12);
        let ec = coarse.max_rel_error_m32(5_000);
        let ef = fine.max_rel_error_m32(5_000);
        assert!(ec > ef, "coarse {ec:e} should exceed fine {ef:e}");
        // Quadratic segments: halving the width cuts the error ~8x; 6 extra
        // bits of table should win at least a factor 100.
        assert!(ec / ef > 100.0);
    }

    #[test]
    fn potential_path_accuracy() {
        let u = RsqrtCubedUnit::default();
        for i in 0..5_000 {
            let x = 2f64.powf(-6.0 + 12.0 * (i as f64 + 0.5) / 5_000.0);
            let got = u.eval_pow_m12(x);
            let want = x.powf(-0.5);
            assert!(((got - want) / want).abs() < 2f64.powi(-26), "x = {x}");
        }
    }

    #[test]
    fn zero_and_negative_clamp_to_zero() {
        let u = RsqrtCubedUnit::default();
        assert_eq!(u.eval_pow_m32(0.0), 0.0);
        assert_eq!(u.eval_pow_m32(-1.0), 0.0);
        assert_eq!(u.eval_pow_m12(0.0), 0.0);
        assert_eq!(u.eval_pow_m32(f64::NAN), 0.0);
    }

    #[test]
    fn tiny_and_huge_arguments() {
        let u = RsqrtCubedUnit::default();
        for &x in &[1e-12f64, 1e12, 3.7e-9, 8.1e7] {
            let want = x.powf(-1.5);
            let got = u.eval_pow_m32(x);
            assert!(((got - want) / want).abs() < 1e-7, "x = {x:e}");
        }
    }
}
