//! Hand-rolled SIMD lanes for the pipeline arithmetic, with runtime
//! dispatch.
//!
//! The batched kernel (PR 5) leans on LLVM auto-vectorization plus a
//! container-local `target-cpu=native`, which makes its speed — though
//! never its bits — hostage to the compiler version.  This module pins
//! the vector shape down by hand: a [`Lanes`] trait abstracts the 4-wide
//! AVX2 and 8-wide AVX-512 register files behind the exact operations
//! the force pass needs, and the hot helpers ([`quantize_lanes`], the
//! gathered `RsqrtCubedUnit::eval_both_lanes`, the pre-scaled
//! `BatchLane::add_rounded` feed) are written once, generically, and
//! monomorphized under `#[target_feature]` entry points.
//!
//! **Bitwise contract.** Every lane operation used here is either pure
//! integer manipulation (identical to scalar by definition) or an IEEE-754
//! f64 `add`/`sub`/`mul`/`round-to-nearest-even`, which x86 vector units
//! implement bit-identically to their scalar counterparts.  FMA is never
//! used — the pipeline model rounds after *every* operation, so a fused
//! multiply-add would change bits.  The SIMD kernel is therefore
//! bit-identical to the scalar batched kernel, which is itself enforced
//! bit-identical to the scalar oracle.
//!
//! **Dispatch.** [`active_level`] combines one-time hardware detection
//! (`is_x86_feature_detected!`), the `GRAPE6_FORCE_SCALAR` /
//! `GRAPE6_SIMD` environment overrides, and a process-wide programmatic
//! override ([`set_dispatch_override`]) used by the kernel benchmark to
//! time the AVX2 variant on an AVX-512 host.  When no level is active the
//! callers fall back to the scalar batched path — same bits, fewer lanes.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Vector ISA level the kernel can dispatch to, in increasing width.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SimdLevel {
    /// 4 × f64 lanes (`avx2`).
    Avx2,
    /// 8 × f64 lanes (`avx512f` + `avx512dq`).
    Avx512,
}

impl SimdLevel {
    /// Stable lower-case name, used in benchmark variant labels.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Process-wide dispatch override, applied *on top of* detection — it can
/// only lower the active level, never enable an ISA the host lacks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DispatchOverride {
    /// Use whatever detection (and the environment) allows.
    #[default]
    Auto,
    /// Run the scalar batched fallback even on SIMD-capable hosts.
    ForceScalar,
    /// Cap at AVX2 (times the 4-wide variant on an AVX-512 host).
    CapAvx2,
    /// Cap at AVX-512 (same as `Auto` on every real host).
    CapAvx512,
}

static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide [`DispatchOverride`].  Safe to call at any time:
/// all variants are bitwise identical, so a mid-run change can alter
/// timing but never results.
pub fn set_dispatch_override(o: DispatchOverride) {
    let v = match o {
        DispatchOverride::Auto => 0,
        DispatchOverride::ForceScalar => 1,
        DispatchOverride::CapAvx2 => 2,
        DispatchOverride::CapAvx512 => 3,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The currently installed [`DispatchOverride`].
pub fn dispatch_override() -> DispatchOverride {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => DispatchOverride::ForceScalar,
        2 => DispatchOverride::CapAvx2,
        3 => DispatchOverride::CapAvx512,
        _ => DispatchOverride::Auto,
    }
}

/// Highest level the host supports, after the environment overrides.
/// Detection and environment are read once per process.
///
/// * `GRAPE6_FORCE_SCALAR` — any value other than empty or `0` disables
///   SIMD dispatch entirely (CI uses this to keep the fallback path
///   exercised on AVX-capable runners).
/// * `GRAPE6_SIMD` — `off`/`scalar` disables, `avx2` caps at AVX2,
///   `avx512` (or unset) allows full detection.
pub fn detected_level() -> Option<SimdLevel> {
    static DETECTED: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if matches!(std::env::var("GRAPE6_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0") {
            return None;
        }
        let cap = match std::env::var("GRAPE6_SIMD").as_deref() {
            Ok("off") | Ok("scalar") => return None,
            Ok("avx2") => Some(SimdLevel::Avx2),
            _ => None, // unset / "avx512" / unknown: full detection
        };
        let hw = hardware_level();
        match (hw, cap) {
            (Some(h), Some(c)) => Some(h.min(c)),
            (h, _) => h,
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn hardware_level() -> Option<SimdLevel> {
    if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
        Some(SimdLevel::Avx512)
    } else if is_x86_feature_detected!("avx2") {
        Some(SimdLevel::Avx2)
    } else {
        None
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn hardware_level() -> Option<SimdLevel> {
    None
}

/// The level the kernel should dispatch to right now: detection capped by
/// the programmatic override.  `None` means "run the scalar batched
/// fallback".
pub fn active_level() -> Option<SimdLevel> {
    let detected = detected_level()?;
    match dispatch_override() {
        DispatchOverride::Auto | DispatchOverride::CapAvx512 => Some(detected),
        DispatchOverride::ForceScalar => None,
        DispatchOverride::CapAvx2 => Some(detected.min(SimdLevel::Avx2)),
    }
}

/// One vector register file's worth of f64 lanes and the operations the
/// force pass needs on them.
///
/// Every method is `unsafe`: the caller must guarantee the implementing
/// ISA is available on the running CPU (the dispatchers in this crate
/// only reach these through `#[target_feature]` entry points selected by
/// [`active_level`]).  All float methods are single-rounded IEEE-754
/// operations, bit-identical to their scalar f64 counterparts; integer
/// methods wrap like the scalar `wrapping_*` family.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::missing_safety_doc)] // blanket contract documented above
pub trait Lanes: Copy {
    /// Number of f64 lanes.
    const WIDTH: usize;
    /// `mask_bits` value when every lane is set.
    const ALL: u32;
    /// Float register type.
    type F: Copy;
    /// Integer register type (64-bit lanes).
    type I: Copy;
    /// Comparison mask type.
    type M: Copy;

    /// Broadcast a double into all lanes.
    unsafe fn splat(x: f64) -> Self::F;
    /// Broadcast an i64 into all lanes.
    unsafe fn splat_i(x: i64) -> Self::I;
    /// Unaligned load of `WIDTH` doubles.
    unsafe fn load(p: *const f64) -> Self::F;
    /// Unaligned store of `WIDTH` doubles.
    unsafe fn store(p: *mut f64, v: Self::F);
    /// Unaligned load of `WIDTH` i64s.
    unsafe fn load_i(p: *const i64) -> Self::I;
    /// Lanewise IEEE add (one rounding).
    unsafe fn add(a: Self::F, b: Self::F) -> Self::F;
    /// Lanewise IEEE subtract (one rounding).
    unsafe fn sub(a: Self::F, b: Self::F) -> Self::F;
    /// Lanewise IEEE multiply (one rounding).
    unsafe fn mul(a: Self::F, b: Self::F) -> Self::F;
    /// Lanewise round to nearest integer, ties to even.
    unsafe fn round_ties_even(a: Self::F) -> Self::F;
    /// Bit-cast f64 lanes to i64 lanes.
    unsafe fn to_bits(a: Self::F) -> Self::I;
    /// Bit-cast i64 lanes to f64 lanes.
    unsafe fn from_bits(a: Self::I) -> Self::F;
    /// Lanewise wrapping i64 add.
    unsafe fn add_i(a: Self::I, b: Self::I) -> Self::I;
    /// Lanewise wrapping i64 subtract.
    unsafe fn sub_i(a: Self::I, b: Self::I) -> Self::I;
    /// Lanewise bitwise AND.
    unsafe fn and_i(a: Self::I, b: Self::I) -> Self::I;
    /// Lanewise bitwise OR.
    unsafe fn or_i(a: Self::I, b: Self::I) -> Self::I;
    /// Lanewise bitwise XOR.
    unsafe fn xor_i(a: Self::I, b: Self::I) -> Self::I;
    /// Lanewise logical shift right by a uniform count.
    unsafe fn shr_i(a: Self::I, n: u32) -> Self::I;
    /// Lanewise logical shift left by a uniform count.
    unsafe fn shl_i(a: Self::I, n: u32) -> Self::I;
    /// Lanewise full-range `i64 → f64`, round-to-nearest-even — the exact
    /// bits of Rust's scalar `as f64` cast for every input.
    unsafe fn i64_to_f64(a: Self::I) -> Self::F;
    /// Lanewise `a == b` on i64 lanes.
    unsafe fn cmpeq_i(a: Self::I, b: Self::I) -> Self::M;
    /// Lanewise signed `a > b` on i64 lanes.
    unsafe fn cmpgt_i(a: Self::I, b: Self::I) -> Self::M;
    /// Mask conjunction.
    unsafe fn mask_and(a: Self::M, b: Self::M) -> Self::M;
    /// `m ? t : f`, lanewise.
    unsafe fn select(m: Self::M, t: Self::F, f: Self::F) -> Self::F;
    /// One bit per lane (bit `i` = lane `i`).
    unsafe fn mask_bits(m: Self::M) -> u32;
    /// Gather `WIDTH` doubles from `base + idx·8` bytes (`idx` in f64
    /// units, i64 lanes).
    unsafe fn gather(base: *const f64, idx: Self::I) -> Self::F;
}

/// 4 × f64 AVX2 lanes.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx2;

/// 8 × f64 AVX-512 lanes (`avx512f` + `avx512dq`).
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx512;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Avx2, Avx512, Lanes};
    use std::arch::x86_64::*;

    #[allow(clippy::missing_safety_doc)]
    impl Lanes for Avx2 {
        const WIDTH: usize = 4;
        const ALL: u32 = 0b1111;
        type F = __m256d;
        type I = __m256i;
        type M = __m256i;

        #[inline(always)]
        unsafe fn splat(x: f64) -> __m256d {
            _mm256_set1_pd(x)
        }
        #[inline(always)]
        unsafe fn splat_i(x: i64) -> __m256i {
            _mm256_set1_epi64x(x)
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> __m256d {
            _mm256_loadu_pd(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f64, v: __m256d) {
            _mm256_storeu_pd(p, v)
        }
        #[inline(always)]
        unsafe fn load_i(p: *const i64) -> __m256i {
            _mm256_loadu_si256(p as *const __m256i)
        }
        #[inline(always)]
        unsafe fn add(a: __m256d, b: __m256d) -> __m256d {
            _mm256_add_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m256d, b: __m256d) -> __m256d {
            _mm256_sub_pd(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
            _mm256_mul_pd(a, b)
        }
        #[inline(always)]
        unsafe fn round_ties_even(a: __m256d) -> __m256d {
            _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(a)
        }
        #[inline(always)]
        unsafe fn to_bits(a: __m256d) -> __m256i {
            _mm256_castpd_si256(a)
        }
        #[inline(always)]
        unsafe fn from_bits(a: __m256i) -> __m256d {
            _mm256_castsi256_pd(a)
        }
        #[inline(always)]
        unsafe fn add_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_add_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn sub_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_sub_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn and_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_and_si256(a, b)
        }
        #[inline(always)]
        unsafe fn or_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_or_si256(a, b)
        }
        #[inline(always)]
        unsafe fn xor_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_xor_si256(a, b)
        }
        #[inline(always)]
        unsafe fn shr_i(a: __m256i, n: u32) -> __m256i {
            _mm256_srl_epi64(a, _mm_cvtsi32_si128(n as i32))
        }
        #[inline(always)]
        unsafe fn shl_i(a: __m256i, n: u32) -> __m256i {
            _mm256_sll_epi64(a, _mm_cvtsi32_si128(n as i32))
        }
        #[inline(always)]
        unsafe fn i64_to_f64(a: __m256i) -> __m256d {
            // AVX2 has no 64-bit int → double conversion; split each lane
            // into its low and high 32-bit halves and rebuild the value as
            // `(hi·2^32 − 2^52) + (2^52 + lo)` with magic-exponent bit
            // tricks (the classic full-range construction).  The high part
            // is exact (32-bit payload aligned at 2^32 inside a 2^84-scaled
            // double), so the single rounding happens in the final add —
            // bit-identical to the scalar `as f64` cast for every i64.
            let magic_lo = _mm256_set1_epi64x(0x4330_0000_0000_0000); // 2^52
            let magic_hi32 = _mm256_set1_epi64x(0x4530_0000_8000_0000u64 as i64); // 2^84 + 2^63
            let magic_all = _mm256_set1_epi64x(0x4530_0000_8010_0000u64 as i64); // 2^84 + 2^63 + 2^52
            let v_lo = _mm256_blend_epi32::<0b0101_0101>(magic_lo, a);
            let v_hi = _mm256_xor_si256(_mm256_srli_epi64::<32>(a), magic_hi32);
            let hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
            _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo))
        }
        #[inline(always)]
        unsafe fn cmpeq_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_cmpeq_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn cmpgt_i(a: __m256i, b: __m256i) -> __m256i {
            _mm256_cmpgt_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn mask_and(a: __m256i, b: __m256i) -> __m256i {
            _mm256_and_si256(a, b)
        }
        #[inline(always)]
        unsafe fn select(m: __m256i, t: __m256d, f: __m256d) -> __m256d {
            // blendv picks by sign bit; comparison masks are all-ones or
            // all-zeros per lane, so the sign bit carries the full mask.
            _mm256_blendv_pd(f, t, _mm256_castsi256_pd(m))
        }
        #[inline(always)]
        unsafe fn mask_bits(m: __m256i) -> u32 {
            _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32
        }
        #[inline(always)]
        unsafe fn gather(base: *const f64, idx: __m256i) -> __m256d {
            _mm256_i64gather_pd::<8>(base, idx)
        }
    }

    #[allow(clippy::missing_safety_doc)]
    impl Lanes for Avx512 {
        const WIDTH: usize = 8;
        const ALL: u32 = 0b1111_1111;
        type F = __m512d;
        type I = __m512i;
        type M = __mmask8;

        #[inline(always)]
        unsafe fn splat(x: f64) -> __m512d {
            _mm512_set1_pd(x)
        }
        #[inline(always)]
        unsafe fn splat_i(x: i64) -> __m512i {
            _mm512_set1_epi64(x)
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> __m512d {
            _mm512_loadu_pd(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f64, v: __m512d) {
            _mm512_storeu_pd(p, v)
        }
        #[inline(always)]
        unsafe fn load_i(p: *const i64) -> __m512i {
            _mm512_loadu_epi64(p)
        }
        #[inline(always)]
        unsafe fn add(a: __m512d, b: __m512d) -> __m512d {
            _mm512_add_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m512d, b: __m512d) -> __m512d {
            _mm512_sub_pd(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m512d, b: __m512d) -> __m512d {
            _mm512_mul_pd(a, b)
        }
        #[inline(always)]
        unsafe fn round_ties_even(a: __m512d) -> __m512d {
            _mm512_roundscale_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(a)
        }
        #[inline(always)]
        unsafe fn to_bits(a: __m512d) -> __m512i {
            _mm512_castpd_si512(a)
        }
        #[inline(always)]
        unsafe fn from_bits(a: __m512i) -> __m512d {
            _mm512_castsi512_pd(a)
        }
        #[inline(always)]
        unsafe fn add_i(a: __m512i, b: __m512i) -> __m512i {
            _mm512_add_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn sub_i(a: __m512i, b: __m512i) -> __m512i {
            _mm512_sub_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn and_i(a: __m512i, b: __m512i) -> __m512i {
            _mm512_and_si512(a, b)
        }
        #[inline(always)]
        unsafe fn or_i(a: __m512i, b: __m512i) -> __m512i {
            _mm512_or_si512(a, b)
        }
        #[inline(always)]
        unsafe fn xor_i(a: __m512i, b: __m512i) -> __m512i {
            _mm512_xor_si512(a, b)
        }
        #[inline(always)]
        unsafe fn shr_i(a: __m512i, n: u32) -> __m512i {
            _mm512_srl_epi64(a, _mm_cvtsi32_si128(n as i32))
        }
        #[inline(always)]
        unsafe fn shl_i(a: __m512i, n: u32) -> __m512i {
            _mm512_sll_epi64(a, _mm_cvtsi32_si128(n as i32))
        }
        #[inline(always)]
        unsafe fn i64_to_f64(a: __m512i) -> __m512d {
            _mm512_cvtepi64_pd(a) // avx512dq: native, round-to-nearest-even
        }
        #[inline(always)]
        unsafe fn cmpeq_i(a: __m512i, b: __m512i) -> __mmask8 {
            _mm512_cmpeq_epi64_mask(a, b)
        }
        #[inline(always)]
        unsafe fn cmpgt_i(a: __m512i, b: __m512i) -> __mmask8 {
            _mm512_cmpgt_epi64_mask(a, b)
        }
        #[inline(always)]
        unsafe fn mask_and(a: __mmask8, b: __mmask8) -> __mmask8 {
            a & b
        }
        #[inline(always)]
        unsafe fn select(m: __mmask8, t: __m512d, f: __m512d) -> __m512d {
            _mm512_mask_blend_pd(m, f, t)
        }
        #[inline(always)]
        unsafe fn mask_bits(m: __mmask8) -> u32 {
            m as u32
        }
        #[inline(always)]
        unsafe fn gather(base: *const f64, idx: __m512i) -> __m512d {
            _mm512_i64gather_pd::<8>(idx, base)
        }
    }
}

/// Lanewise [`quantize_sig_branchless`](crate::quantize_sig_branchless):
/// round every lane to a `sig`-bit significand, round-to-nearest-even,
/// NaN/±inf passing through.  Bit-identical to the scalar function on
/// every lane for every bit pattern (the carry chain is the same wrapping
/// integer add; the NaN/inf select keys on the same exponent-field test).
///
/// # Safety
/// `L`'s ISA must be available on the running CPU.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub unsafe fn quantize_lanes<L: Lanes>(x: L::F, sig: u32) -> L::F {
    debug_assert!((1..=52).contains(&sig));
    let drop = 53 - sig;
    let bits = L::to_bits(x);
    let half_m1 = L::splat_i(((1u64 << (drop - 1)) - 1) as i64);
    let keep_mask = L::splat_i(!((1u64 << drop) - 1) as i64);
    let lsb = L::and_i(L::shr_i(bits, drop), L::splat_i(1));
    let rounded = L::and_i(L::add_i(bits, L::add_i(half_m1, lsb)), keep_mask);
    let exp_mask = L::splat_i(0x7ff0_0000_0000_0000);
    let special = L::cmpeq_i(L::and_i(bits, exp_mask), exp_mask);
    L::select(special, x, L::from_bits(rounded))
}

/// Quantize a slice through the active SIMD level: `out[i] =
/// quantize_sig_branchless(xs[i], sig)` for every `i`, the bulk in
/// 4/8-wide lanes and the tail through the scalar function.  Returns the
/// level used, or `None` (output untouched) when no SIMD level is active
/// — callers then run the scalar path themselves.
///
/// This is the safe, slice-shaped entry point used by tests and by
/// callers outside the force kernel's hand-scheduled loops.
pub fn quantize_slice(xs: &[f64], out: &mut [f64], sig: u32) -> Option<SimdLevel> {
    assert_eq!(xs.len(), out.len());
    assert!((1..=52).contains(&sig), "sig must be in 1..=52");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        Some(SimdLevel::Avx2) => {
            // SAFETY: dispatch proved avx2 is available.
            unsafe { quantize_slice_avx2(xs, out, sig) };
            Some(SimdLevel::Avx2)
        }
        #[cfg(target_arch = "x86_64")]
        Some(SimdLevel::Avx512) => {
            // SAFETY: dispatch proved avx512f+dq are available.
            unsafe { quantize_slice_avx512(xs, out, sig) };
            Some(SimdLevel::Avx512)
        }
        _ => None,
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn quantize_slice_lanes<L: Lanes>(xs: &[f64], out: &mut [f64], sig: u32) {
    let n = xs.len();
    let mut i = 0;
    while i + L::WIDTH <= n {
        let v = L::load(xs.as_ptr().add(i));
        L::store(out.as_mut_ptr().add(i), quantize_lanes::<L>(v, sig));
        i += L::WIDTH;
    }
    for k in i..n {
        out[k] = crate::quantize_sig_branchless(xs[k], sig);
    }
}

/// # Safety
/// Requires `avx2` at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn quantize_slice_avx2(xs: &[f64], out: &mut [f64], sig: u32) {
    quantize_slice_lanes::<Avx2>(xs, out, sig)
}

/// # Safety
/// Requires `avx512f` and `avx512dq` at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn quantize_slice_avx512(xs: &[f64], out: &mut [f64], sig: u32) {
    quantize_slice_lanes::<Avx512>(xs, out, sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_sweep(mut f: impl FnMut(u64)) {
        // Same deterministic generator as the pfloat equivalence sweep:
        // every float class shows up (all magnitudes, subnormals, NaN
        // payloads, infs, both signs).
        let mut s: u64 = 0x243f_6a88_85a3_08d3;
        for _ in 0..200_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            f(s);
        }
    }

    #[test]
    fn dispatch_override_caps_but_never_raises() {
        let detected = detected_level();
        set_dispatch_override(DispatchOverride::ForceScalar);
        assert_eq!(active_level(), None);
        set_dispatch_override(DispatchOverride::CapAvx2);
        assert_eq!(active_level(), detected.map(|l| l.min(SimdLevel::Avx2)));
        set_dispatch_override(DispatchOverride::CapAvx512);
        assert_eq!(active_level(), detected);
        set_dispatch_override(DispatchOverride::Auto);
        assert_eq!(active_level(), detected);
    }

    #[cfg(target_arch = "x86_64")]
    mod lane_equivalence {
        use super::super::*;
        use super::xorshift_sweep;

        // Per-ISA test drivers: plain #[target_feature] wrappers over the
        // generic bodies, called only after an explicit runtime check.
        #[target_feature(enable = "avx2")]
        unsafe fn quantize_one_avx2(xs: &[f64; 4], out: &mut [f64; 4], sig: u32) {
            let v = <Avx2 as Lanes>::load(xs.as_ptr());
            <Avx2 as Lanes>::store(out.as_mut_ptr(), quantize_lanes::<Avx2>(v, sig));
        }

        #[target_feature(enable = "avx512f,avx512dq")]
        unsafe fn quantize_one_avx512(xs: &[f64; 8], out: &mut [f64; 8], sig: u32) {
            let v = <Avx512 as Lanes>::load(xs.as_ptr());
            <Avx512 as Lanes>::store(out.as_mut_ptr(), quantize_lanes::<Avx512>(v, sig));
        }

        #[target_feature(enable = "avx2")]
        unsafe fn cvt_avx2(xs: &[i64; 4], out: &mut [f64; 4]) {
            let v = <Avx2 as Lanes>::load_i(xs.as_ptr());
            <Avx2 as Lanes>::store(out.as_mut_ptr(), <Avx2 as Lanes>::i64_to_f64(v));
        }

        #[target_feature(enable = "avx512f,avx512dq")]
        unsafe fn cvt_avx512(xs: &[i64; 8], out: &mut [f64; 8]) {
            let v = <Avx512 as Lanes>::load_i(xs.as_ptr());
            <Avx512 as Lanes>::store(out.as_mut_ptr(), <Avx512 as Lanes>::i64_to_f64(v));
        }

        #[test]
        fn lane_quantizer_matches_scalar_on_random_bit_patterns() {
            let avx2 = is_x86_feature_detected!("avx2");
            let avx512 =
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq");
            if !avx2 {
                eprintln!("skipping: no AVX2 on this host");
                return;
            }
            let mut pend: Vec<u64> = Vec::new();
            xorshift_sweep(|s| pend.push(s));
            // Structured extras: specials and exact grid ties.
            for x in [
                0.0f64,
                -0.0,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                f64::from_bits(1),
                f64::from_bits(0x000f_ffff_ffff_ffff),
                1.0 + 2f64.powi(-24),
                2.0 - 2f64.powi(-25),
            ] {
                pend.push(x.to_bits());
            }
            while pend.len() % 8 != 0 {
                pend.push(0);
            }
            for sig in [24u32, 11, 50] {
                for chunk in pend.chunks_exact(8) {
                    let xs8: [f64; 8] = std::array::from_fn(|i| f64::from_bits(chunk[i]));
                    let want: [u64; 8] = std::array::from_fn(|i| {
                        crate::quantize_sig_branchless(xs8[i], sig).to_bits()
                    });
                    for half in 0..2 {
                        let xs4: [f64; 4] = std::array::from_fn(|i| xs8[half * 4 + i]);
                        let mut out4 = [0.0f64; 4];
                        // SAFETY: avx2 checked above.
                        unsafe { quantize_one_avx2(&xs4, &mut out4, sig) };
                        for i in 0..4 {
                            assert_eq!(
                                out4[i].to_bits(),
                                want[half * 4 + i],
                                "avx2 sig={sig} bits={:#018x}",
                                chunk[half * 4 + i]
                            );
                        }
                    }
                    if avx512 {
                        let mut out8 = [0.0f64; 8];
                        // SAFETY: avx512f+dq checked above.
                        unsafe { quantize_one_avx512(&xs8, &mut out8, sig) };
                        for i in 0..8 {
                            assert_eq!(
                                out8[i].to_bits(),
                                want[i],
                                "avx512 sig={sig} bits={:#018x}",
                                chunk[i]
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn lane_i64_to_f64_matches_scalar_cast() {
            let avx2 = is_x86_feature_detected!("avx2");
            let avx512 =
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq");
            if !avx2 {
                eprintln!("skipping: no AVX2 on this host");
                return;
            }
            let mut vals: Vec<i64> = vec![
                0,
                1,
                -1,
                i64::MAX,
                i64::MIN,
                i64::MAX - 1,
                i64::MIN + 1,
                (1 << 53) + 1, // first value needing a rounded cast
                -(1 << 53) - 1,
                (1 << 62) | 1,
                u32::MAX as i64,
                -(u32::MAX as i64),
            ];
            xorshift_sweep(|s| vals.push(s as i64));
            while vals.len() % 8 != 0 {
                vals.push(0);
            }
            for chunk in vals.chunks_exact(8) {
                let want: [u64; 8] = std::array::from_fn(|i| (chunk[i] as f64).to_bits());
                for half in 0..2 {
                    let xs4: [i64; 4] = std::array::from_fn(|i| chunk[half * 4 + i]);
                    let mut out4 = [0.0f64; 4];
                    // SAFETY: avx2 checked above.
                    unsafe { cvt_avx2(&xs4, &mut out4) };
                    for i in 0..4 {
                        assert_eq!(
                            out4[i].to_bits(),
                            want[half * 4 + i],
                            "avx2 v={}",
                            chunk[half * 4 + i]
                        );
                    }
                }
                if avx512 {
                    let xs8: [i64; 8] = chunk.try_into().unwrap();
                    let mut out8 = [0.0f64; 8];
                    // SAFETY: avx512f+dq checked above.
                    unsafe { cvt_avx512(&xs8, &mut out8) };
                    for i in 0..8 {
                        assert_eq!(out8[i].to_bits(), want[i], "avx512 v={}", chunk[i]);
                    }
                }
            }
        }

        #[test]
        fn quantize_slice_matches_scalar_including_tail() {
            if active_level().is_none() {
                eprintln!("skipping: no SIMD level active");
                return;
            }
            let mut xs = Vec::new();
            let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
            for _ in 0..1027 {
                // odd length: exercises the scalar tail
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                xs.push(f64::from_bits(s));
            }
            let mut out = vec![0.0; xs.len()];
            let level = quantize_slice(&xs, &mut out, 24);
            assert!(level.is_some());
            for (i, (&x, &o)) in xs.iter().zip(&out).enumerate() {
                assert_eq!(
                    o.to_bits(),
                    crate::quantize_sig_branchless(x, 24).to_bits(),
                    "lane {i}"
                );
            }
        }
    }
}
