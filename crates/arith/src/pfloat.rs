//! Reduced-precision pipeline floating point.
//!
//! Each adder and multiplier in the GRAPE-6 force pipeline works on a short
//! custom float — long enough that the *accumulated* force meets the Hermite
//! integrator's accuracy requirement (relative force error around 1e-7, cf.
//! Makino & Taiji 1998 §4.3), short enough that ~60 arithmetic units fit in
//! one pipeline.  We model this as IEEE-754 doubles that are re-rounded to a
//! `SIG`-bit significand (hidden bit included, round-to-nearest-even) after
//! **every** operation, which reproduces the error character of the hardware
//! without committing to its exact gate-level encodings.
//!
//! The default [`PIPE_SIG_BITS`] is 24 (single-precision-like), matching the
//! effective precision the GRAPE-6 pipeline delivers for the dominant force
//! terms.
//!
//! The exponent range is left at f64's: in Heggie units the dynamic range of
//! pairwise force terms never approaches the 8-bit hardware exponent limits,
//! and keeping f64 exponents lets the quantisation be a pure significand
//! rounding (two integer ops), fast enough for the innermost loop.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Significand width (incl. hidden bit) of the force pipeline arithmetic.
pub const PIPE_SIG_BITS: u32 = 24;

/// Round `x` to a `sig`-bit significand, round-to-nearest-even.
///
/// `sig` counts the hidden bit, so `sig = 53` is the identity and `sig = 24`
/// produces the f32-like grid (with f64's exponent range).  Zero, infinities
/// and NaN pass through unchanged.
#[inline]
// `RangeInclusive::contains` is not const-callable, hence the manual range.
#[allow(clippy::manual_range_contains)]
pub const fn quantize_sig(x: f64, sig: u32) -> f64 {
    debug_assert!(1 <= sig && sig <= 53);
    if sig >= 53 || x == 0.0 || !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let drop = (53 - sig) as u64; // low mantissa bits to discard
    let half = 1u64 << (drop - 1);
    let mask = (1u64 << drop) - 1;
    let frac = bits & mask;
    let trunc = bits & !mask;
    let round_up = frac > half || (frac == half && (bits >> drop) & 1 == 1);
    // A mantissa carry correctly propagates into the exponent field because
    // of the IEEE bit layout (monotone encoding).
    let out = if round_up {
        trunc.wrapping_add(1u64 << drop)
    } else {
        trunc
    };
    f64::from_bits(out)
}

/// Branchless twin of [`quantize_sig`], bit-identical for every input.
///
/// [`quantize_sig`]'s round-to-nearest-even decision is a data-dependent
/// branch (`frac > half || …`) that the hardware predictor cannot learn —
/// force-pipeline operands make it a near-coin-flip, and ~30 quantisations
/// per interaction turn the mispredicts into the dominant cost of the
/// batched kernel's inner loop.  This version computes the same rounding
/// with pure integer arithmetic:
///
/// ```text
/// out = (bits + (half − 1) + lsb) & !mask      (wrapping)
/// ```
///
/// where `lsb` is the lowest *kept* mantissa bit.  A carry into the kept
/// field occurs iff `frac + half − 1 + lsb ≥ 2^drop`, i.e. iff
/// `frac > half` or (`frac == half` and `lsb == 1`) — exactly the
/// round-up predicate — and the carry propagates into the exponent field
/// through the monotone IEEE encoding just as `quantize_sig`'s
/// `wrapping_add(1 << drop)` does.  Zeros fall through unchanged
/// (`frac = lsb = 0` ⇒ no carry); NaN and infinities take the early
/// return, mirroring the reference's pass-through.  The equivalence is
/// enforced bit-for-bit over structured sweeps and random bit patterns in
/// the tests below.
#[inline(always)]
// `RangeInclusive::contains` is not const-callable, hence the manual range.
#[allow(clippy::manual_range_contains)]
pub const fn quantize_sig_branchless(x: f64, sig: u32) -> f64 {
    debug_assert!(1 <= sig && sig <= 53);
    if sig >= 53 {
        return x;
    }
    let bits = x.to_bits();
    let drop = (53 - sig) as u64;
    let half_m1 = (1u64 << (drop - 1)) - 1;
    let mask = (1u64 << drop) - 1;
    let lsb = (bits >> drop) & 1;
    let rounded = f64::from_bits(bits.wrapping_add(half_m1 + lsb) & !mask);
    // NaN / ±inf pass through, as in the reference.  Written as a final
    // select (not an early return) so the whole body is a straight-line
    // diamond the compiler can if-convert inside vectorised loops.
    if bits & 0x7ff0_0000_0000_0000 == 0x7ff0_0000_0000_0000 {
        x
    } else {
        rounded
    }
}

/// A value constrained to a `SIG`-bit significand grid.
///
/// All arithmetic re-quantizes its result, so chains of operations behave
/// like the hardware pipeline: one rounding per functional unit.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PFloat<const SIG: u32>(f64);

/// The pipeline's working precision.
pub type PipeFloat = PFloat<PIPE_SIG_BITS>;

impl<const SIG: u32> PFloat<SIG> {
    /// Zero.
    pub const ZERO: Self = Self(0.0);

    /// Quantize a double into the format.
    ///
    /// `const`, so pipeline constants (`1/2`, `1/3`, …) can be quantized
    /// once at compile time instead of per call in the hot loops.
    #[inline]
    pub const fn new(x: f64) -> Self {
        Self(quantize_sig(x, SIG))
    }

    /// The stored (already quantized) value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Fused square: `x²` with a single rounding.
    #[inline]
    pub fn square(self) -> Self {
        Self::new(self.0 * self.0)
    }

    /// Multiply-accumulate `self + a·b` with *two* roundings (the hardware
    /// has separate multiplier and adder units, not an FMA).
    #[inline]
    pub fn mul_add_2r(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    /// Machine epsilon of the format (spacing of numbers near 1).
    pub const fn epsilon() -> f64 {
        // 2^-(SIG-1)
        let exp_bits = ((1023 - (SIG as i64 - 1)) as u64) << 52;
        f64::from_bits(exp_bits)
    }
}

impl<const SIG: u32> Add for PFloat<SIG> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.0 + rhs.0)
    }
}

impl<const SIG: u32> Sub for PFloat<SIG> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.0 - rhs.0)
    }
}

impl<const SIG: u32> Mul for PFloat<SIG> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(self.0 * rhs.0)
    }
}

impl<const SIG: u32> Div for PFloat<SIG> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Self::new(self.0 / rhs.0)
    }
}

impl<const SIG: u32> Neg for PFloat<SIG> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(-self.0) // negation is exact, no re-quantization needed
    }
}

impl<const SIG: u32> From<f64> for PFloat<SIG> {
    #[inline]
    fn from(x: f64) -> Self {
        Self::new(x)
    }
}

impl<const SIG: u32> fmt::Debug for PFloat<SIG> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PFloat<{}>({:e})", SIG, self.0)
    }
}

impl<const SIG: u32> fmt::Display for PFloat<SIG> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_53_bits() {
        let xs = [1.0, -3.5, 1e-300, 123456.789, f64::MIN_POSITIVE];
        for &x in &xs {
            assert_eq!(quantize_sig(x, 53), x);
        }
    }

    #[test]
    fn specials_pass_through() {
        assert_eq!(quantize_sig(0.0, 24), 0.0);
        assert!(quantize_sig(f64::NAN, 24).is_nan());
        assert_eq!(quantize_sig(f64::INFINITY, 24), f64::INFINITY);
        assert_eq!(quantize_sig(-0.0, 24).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn matches_f32_grid_at_24_bits() {
        // For values well inside f32's exponent range, quantize_sig(x, 24)
        // must agree with a roundtrip through f32.
        let xs = [
            1.0,
            std::f64::consts::PI,
            -1.7e8,
            3.0e-5,
            0.1,
            2.0f64.powi(100), // outside f32 range on purpose? no: 2^100 > f32 max
        ];
        for &x in &xs[..5] {
            let q = quantize_sig(x, 24);
            assert_eq!(q, x as f32 as f64, "x = {x:e}");
        }
        // Outside f32's exponent range the format keeps going (documented).
        let big = 2.0f64.powi(300) * 1.2345678;
        let q = quantize_sig(big, 24);
        assert!((q / big - 1.0).abs() < 2.0f64.powi(-24));
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-24 is exactly halfway between 1 and 1 + 2^-23 on the 24-bit
        // grid; the even neighbour is 1.
        let x = 1.0 + 2f64.powi(-24);
        assert_eq!(quantize_sig(x, 24), 1.0);
        // 1 + 3·2^-24 is halfway between 1+2^-23 and 1+2^-22; even neighbour
        // is 1 + 2^-22.
        let x = 1.0 + 3.0 * 2f64.powi(-24);
        assert_eq!(quantize_sig(x, 24), 1.0 + 2f64.powi(-22));
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Just below 2.0: rounds up to exactly 2.0 (carry out of mantissa).
        let x = 2.0 - 2f64.powi(-25);
        assert_eq!(quantize_sig(x, 24), 2.0);
    }

    #[test]
    fn arithmetic_requantizes() {
        let a = PipeFloat::new(1.0);
        let b = PipeFloat::new(2f64.powi(-30));
        // The tiny addend is below the format's resolution near 1.0.
        assert_eq!((a + b).get(), 1.0);
        let c = PipeFloat::new(3.0);
        assert_eq!((a * c).get(), 3.0);
    }

    #[test]
    fn epsilon_is_correct() {
        assert_eq!(PipeFloat::epsilon(), 2f64.powi(-23));
        assert_eq!(PFloat::<53>::epsilon(), f64::EPSILON);
    }

    #[test]
    fn branchless_matches_reference_on_structured_cases() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
            1.0,
            -1.0,
            2.0 - 2f64.powi(-25), // carries out of the mantissa
        ];
        for sig in [1u32, 12, 24, 40, 52, 53] {
            for &x in &specials {
                let a = quantize_sig(x, sig);
                let b = quantize_sig_branchless(x, sig);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sig={sig}, x={x:e} ({:#018x})",
                    x.to_bits()
                );
            }
            // Exact ties and their neighbours on the sig-bit grid around
            // several magnitudes: the even/odd kept-bit cases both ways.
            if sig < 53 {
                let drop = 53 - sig;
                for base in [1.0f64, -1.0, 3.0, 1e-300, 1e300, 0.7] {
                    let bb = base.to_bits() & !((1u64 << drop) - 1);
                    for kept_lsb in [0u64, 1] {
                        let start = bb | (kept_lsb << drop);
                        let half = 1u64 << (drop - 1);
                        for frac in [0, 1, half - 1, half, half + 1, (1 << drop) - 1] {
                            let x = f64::from_bits(start | frac);
                            let a = quantize_sig(x, sig);
                            let b = quantize_sig_branchless(x, sig);
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "sig={sig}, bits={start:#x}|{frac:#x}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn branchless_matches_reference_on_random_bit_patterns() {
        // Deterministic xorshift over raw u64s: every float class shows up
        // (normals of all magnitudes, subnormals, NaNs, infs, both signs).
        let mut s: u64 = 0x243f_6a88_85a3_08d3;
        for _ in 0..200_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let x = f64::from_bits(s);
            for sig in [24u32, 11, 50] {
                let a = quantize_sig(x, sig);
                let b = quantize_sig_branchless(x, sig);
                assert_eq!(a.to_bits(), b.to_bits(), "sig={sig}, bits={s:#018x}");
            }
        }
    }

    #[test]
    fn relative_error_bounded_by_half_ulp() {
        let mut x: f64 = 0.9371;
        for _ in 0..1000 {
            x = (x * 1.618033988749).fract() + 0.1;
            let q = quantize_sig(x, 24);
            assert!(((q - x) / x).abs() <= 2f64.powi(-24), "x = {x:e}");
        }
    }
}
