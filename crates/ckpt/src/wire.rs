//! Hand-rolled binary encoding.
//!
//! The container this repo builds in has no functional serde, and the
//! restore contract is *bitwise* identity anyway — a fixed little-endian
//! layout is the honest representation.  Everything is built from four
//! primitives (`u32`, `u64`, `bool`, length-prefixed byte strings);
//! `f64`s travel as their bit patterns, so `+inf` sentinels and quiet
//! NaNs survive exactly.

/// Decoding failure. Mapped to [`crate::CkptError::Format`] by the caller;
/// by the time a payload is decoded it has already passed the digest
/// check, so hitting one of these means a format bug, not file damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value being read.
    Eof,
    /// A length prefix exceeds the bytes actually remaining.
    Oversize,
    /// A string field was not valid UTF-8.
    Utf8,
    /// A bool byte was neither 0 nor 1.
    Bool,
    /// Bytes were left over after the top-level value.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Eof => f.write_str("unexpected end of payload"),
            Self::Oversize => f.write_str("length prefix exceeds remaining payload"),
            Self::Utf8 => f.write_str("string field is not UTF-8"),
            Self::Bool => f.write_str("bool byte is not 0 or 1"),
            Self::Trailing => f.write_str("trailing bytes after payload"),
        }
    }
}

/// Append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.size(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u64` sequence.
    pub fn seq_u64(&mut self, v: &[u64]) {
        self.size(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Append a length-prefixed `[u64; 3]` sequence.
    pub fn seq_u64x3(&mut self, v: &[[u64; 3]]) {
        self.size(v.len());
        for x in v {
            self.u64(x[0]);
            self.u64(x[1]);
            self.u64(x[2]);
        }
    }

    /// Append a length-prefixed `usize` sequence.
    pub fn seq_size(&mut self, v: &[usize]) {
        self.size(v.len());
        for &x in v {
            self.size(x);
        }
    }
}

/// Cursor-based decoder over a digest-checked payload.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Oversize)?;
        if end > self.buf.len() {
            return Err(WireError::Eof);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Require full consumption (call after the top-level value).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` stored as `u64`.
    pub fn size(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Oversize)
    }

    /// Read a sequence length and check the remaining payload can hold it
    /// at `elem_bytes` per element, so a bad prefix can never trigger a
    /// huge allocation.
    fn seq_len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.size()?;
        if len.checked_mul(elem_bytes).ok_or(WireError::Oversize)? > self.remaining() {
            return Err(WireError::Oversize);
        }
        Ok(len)
    }

    /// Read a bool byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Bool),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| WireError::Utf8)
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn seq_u64(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.seq_len(8)?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Read a length-prefixed `[u64; 3]` sequence.
    pub fn seq_u64x3(&mut self) -> Result<Vec<[u64; 3]>, WireError> {
        let len = self.seq_len(24)?;
        (0..len)
            .map(|_| Ok([self.u64()?, self.u64()?, self.u64()?]))
            .collect()
    }

    /// Read a length-prefixed `usize` sequence.
    pub fn seq_size(&mut self) -> Result<Vec<usize>, WireError> {
        let len = self.seq_len(8)?;
        (0..len).map(|_| self.size()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u32(7);
        e.u64(u64::MAX);
        e.size(usize::MAX);
        e.bool(true);
        e.bool(false);
        e.str("héllo");
        e.seq_u64(&[1, 2, 3]);
        e.seq_u64x3(&[[4, 5, 6], [7, 8, 9]]);
        e.seq_size(&[10, 11]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.size().unwrap(), usize::MAX);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.seq_u64().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.seq_u64x3().unwrap(), vec![[4, 5, 6], [7, 8, 9]]);
        assert_eq!(d.seq_size().unwrap(), vec![10, 11]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_eof_not_a_panic() {
        let mut e = Enc::new();
        e.u64(42);
        e.str("abc");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let r = d.u64().and_then(|_| d.str());
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn oversize_length_prefix_does_not_allocate() {
        // A length prefix claiming 2^60 elements must be rejected up
        // front, not passed to Vec::with_capacity.
        let mut e = Enc::new();
        e.u64(1 << 60);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).seq_u64().unwrap_err(), WireError::Oversize);
        assert_eq!(
            Dec::new(&bytes).seq_u64x3().unwrap_err(),
            WireError::Oversize
        );
        assert_eq!(Dec::new(&bytes).str().unwrap_err(), WireError::Oversize);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u32(1);
        e.u32(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u32().unwrap();
        assert_eq!(d.finish().unwrap_err(), WireError::Trailing);
    }

    #[test]
    fn bad_bool_byte_rejected() {
        let mut d = Dec::new(&[2u8]);
        assert_eq!(d.bool().unwrap_err(), WireError::Bool);
    }
}
