//! Digest-guarded generic state blobs.
//!
//! The full [`Checkpoint`](crate::Checkpoint) captures an integrator +
//! engine pair; the cluster recovery layer also needs to persist *small,
//! caller-defined* state (a rank's wave-chain state at a coordinated
//! cut, a recovery manifest) with the same guarantees: versioned header,
//! FNV-1a payload digest checked before parsing, atomic publication, and
//! typed [`CkptError`]s instead of panics.  [`Blob`] is that container —
//! the header carries a caller-chosen `kind` tag so a manifest can never
//! be mistaken for a rank checkpoint.

use std::path::Path;

use crate::digest::fnv1a64;
use crate::CkptError;

/// Magic string opening every blob header (distinct from the full
/// checkpoint magic, so the two file families never cross-load).
const BLOB_MAGIC: &str = "GRAPE6-BLOB";

/// A digest-guarded, kind-tagged byte payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blob {
    /// Caller-defined family tag (e.g. `"cluster-rank"`), checked on
    /// load.  Must contain no whitespace.
    pub kind: String,
    /// Caller-defined format version of the payload.
    pub version: u32,
    /// The payload bytes (typically a `wire::Enc` encoding).
    pub payload: Vec<u8>,
}

impl Blob {
    /// Wrap a payload.  Panics if `kind` contains whitespace (the header
    /// is a whitespace-separated line).
    pub fn new(kind: &str, version: u32, payload: Vec<u8>) -> Self {
        assert!(
            !kind.is_empty() && !kind.contains(char::is_whitespace),
            "blob kind must be a single non-empty token"
        );
        Self {
            kind: kind.to_string(),
            version,
            payload,
        }
    }

    /// Serialise: `GRAPE6-BLOB <kind> <version> <digest:016x> <len>\n`
    /// followed by the payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "{BLOB_MAGIC} {} {} {:016x} {}\n",
            self.kind,
            self.version,
            fnv1a64(&self.payload),
            self.payload.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse and validate. Order: magic, kind, version ceiling, declared
    /// length, digest — the payload is never interpreted before its
    /// integrity is established.
    pub fn from_bytes(bytes: &[u8], kind: &str, max_version: u32) -> Result<Self, CkptError> {
        let bad = |m: String| CkptError::Format(m);
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("blob: missing header line".into()))?;
        let line = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| bad("blob: header line is not UTF-8".into()))?;
        let mut parts = line.split_whitespace();
        let magic = parts.next().unwrap_or_default();
        if magic != BLOB_MAGIC {
            return Err(bad(format!(
                "blob: bad magic {magic:?} (expected {BLOB_MAGIC:?})"
            )));
        }
        let found_kind = parts
            .next()
            .ok_or_else(|| bad("blob: missing kind".into()))?;
        if found_kind != kind {
            return Err(bad(format!(
                "blob: kind {found_kind:?} where {kind:?} was expected"
            )));
        }
        let version = parts
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| bad("blob: missing or non-numeric version".into()))?;
        if version > max_version {
            return Err(CkptError::Version {
                found: version,
                supported: max_version,
            });
        }
        let digest = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("blob: missing or non-hex digest".into()))?;
        let payload_len = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| bad("blob: missing or non-numeric length".into()))?;
        if parts.next().is_some() {
            return Err(bad("blob: trailing header fields".into()));
        }
        let payload = &bytes[nl + 1..];
        if (payload.len() as u64) < payload_len {
            return Err(CkptError::Truncated {
                expected: payload_len,
                got: payload.len() as u64,
            });
        }
        let payload = &payload[..payload_len as usize];
        let got = fnv1a64(payload);
        if got != digest {
            return Err(CkptError::BadDigest {
                expected: digest,
                got,
            });
        }
        Ok(Self {
            kind: kind.to_string(),
            version,
            payload: payload.to_vec(),
        })
    }

    /// Write atomically: the bytes land under a temporary name in the
    /// same directory and are renamed into place, so a reader polling for
    /// `path` (a respawned rank looking for its checkpoint or a recovery
    /// manifest) can never observe a half-written file.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let base = path
            .file_name()
            .ok_or_else(|| CkptError::Format("blob: path has no file name".into()))?;
        let tmp = dir.join(format!(".{}.tmp", base.to_string_lossy()));
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate a blob of the given kind from disk.
    pub fn load(path: &Path, kind: &str, max_version: u32) -> Result<Self, CkptError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes, kind, max_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("g6-blob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.blob");
        let b = Blob::new("cluster-rank", 3, vec![1, 2, 3, 255, 0]);
        b.save(&path).unwrap();
        assert_eq!(Blob::load(&path, "cluster-rank", 3).unwrap(), b);
        // No temp file left behind.
        assert!(!dir.join(".state.blob.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_truncation_and_wrong_kind_are_typed_errors() {
        let b = Blob::new("manifest", 1, b"recovery manifest payload".to_vec());
        let bytes = b.to_bytes();
        // Wrong kind never parses.
        assert!(matches!(
            Blob::from_bytes(&bytes, "cluster-rank", 1),
            Err(CkptError::Format(_))
        ));
        // Newer version is refused before the payload is touched.
        assert!(matches!(
            Blob::from_bytes(&bytes, "manifest", 0),
            Err(CkptError::Version {
                found: 1,
                supported: 0
            })
        ));
        // Truncation is detected by length, not by a parse failure.
        assert!(matches!(
            Blob::from_bytes(&bytes[..bytes.len() - 3], "manifest", 1),
            Err(CkptError::Truncated { .. })
        ));
        // A flipped payload byte fails the digest.
        let mut corrupt = bytes.clone();
        let at = corrupt.len() - 5;
        corrupt[at] ^= 0x40;
        assert!(matches!(
            Blob::from_bytes(&corrupt, "manifest", 1),
            Err(CkptError::BadDigest { .. })
        ));
        // Extra trailing bytes beyond the declared length are ignored
        // (a torn append cannot poison an otherwise-valid blob).
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"junk");
        assert_eq!(Blob::from_bytes(&extended, "manifest", 1).unwrap(), b);
    }
}
