//! Payload integrity digest.
//!
//! FNV-1a over the raw payload bytes.  Not cryptographic — the threat
//! model is a truncated write, a torn disk sector or a bit flip on an NFS
//! mount, the failure modes the PC-GRAPE clusters actually saw — and FNV
//! needs no external crate, keeping this crate dependency-free beyond
//! serde.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values of the standard FNV-1a 64-bit function.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let a = b"checkpoint payload".to_vec();
        let mut b = a.clone();
        b[3] ^= 1;
        assert_ne!(fnv1a64(&a), fnv1a64(&b));
    }
}
