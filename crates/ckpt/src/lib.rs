//! # grape6-ckpt — versioned, digest-guarded run checkpoints
//!
//! The paper's headline runs are week-to-month integrations ("The whole
//! simulation, including file operations, took 16.30 hours" is the *short*
//! benchmark, §5); at that scale surviving host crashes matters more than
//! peak Tflops, and the PC-GRAPE cluster papers treat checkpointing as a
//! routine operational necessity.  This crate is the file layer of that
//! story:
//!
//! * [`state`] — a plain serialisable model of *complete* run state:
//!   full Hermite integrator state (positions, velocities, the whole force
//!   polynomial, per-particle `t`/`dt`), the engine internals that shape
//!   subsequent arithmetic (block-FP magnitude estimates, pass counters,
//!   masked units, pending scheduled deaths), per-rank network counters
//!   and the tracer phase.  Every `f64` travels as its bit pattern — the
//!   restore contract is **bitwise identity**, enforced end-to-end by the
//!   workspace's resume tests;
//! * [`wire`] — a hand-rolled little-endian binary encoding (four
//!   primitives: `u32`, `u64`, bool, length-prefixed bytes).  No decimal
//!   representation anywhere, no serialisation framework;
//! * [`Checkpoint::save`]/[`Checkpoint::load`] — a two-part on-disk
//!   format: a one-line ASCII header carrying the format version, an
//!   FNV-1a digest and the payload length, followed by the binary
//!   payload.  Truncation, corruption and future versions are all
//!   detected *before* the payload is parsed and surface as typed
//!   [`CkptError`]s — never a panic, because a supervisor's recovery
//!   ladder has to be able to step past a bad checkpoint file to an
//!   older one.
//!
//! Conversions between live state and this model live with the live state
//! (`grape6_core::checkpoint`), keeping this crate dependency-free.

pub mod blob;
pub mod digest;
pub mod state;
pub mod wire;

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

pub use blob::Blob;
pub use digest::fnv1a64;
pub use state::{
    bits, bits3, unbits, unbits3, Checkpoint, EngineState, FaultCounterState, IntegratorState,
    NetEndpointState, RecoveryState, RunStatState, TraceState,
};

/// Current checkpoint format version.
///
/// History: v1 was the original layout; v2 appends the `step_retries`
/// ladder counter to [`RecoveryState`].  v1 files still load (the missing
/// counter decodes as 0) — only versions *newer* than this are rejected.
pub const CKPT_VERSION: u32 = 2;

/// Magic string opening every checkpoint header.
const MAGIC: &str = "GRAPE6-CKPT";

/// Header line preceding the payload:
/// `GRAPE6-CKPT <version> <digest:016x> <payload_len>`.
#[derive(Debug)]
struct Header {
    magic: String,
    version: u32,
    digest: u64,
    payload_len: u64,
}

impl Header {
    fn to_line(&self) -> String {
        format!(
            "{} {} {:016x} {}",
            self.magic, self.version, self.digest, self.payload_len
        )
    }

    fn parse(line: &str) -> Result<Self, CkptError> {
        let mut parts = line.split_whitespace();
        let bad = |m: &str| CkptError::Format(format!("bad header: {m}"));
        let magic = parts.next().ok_or_else(|| bad("empty line"))?.to_string();
        let version = parts
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| bad("missing or non-numeric version"))?;
        let digest = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("missing or non-hex digest"))?;
        let payload_len = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| bad("missing or non-numeric payload length"))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        Ok(Self {
            magic,
            version,
            digest,
            payload_len,
        })
    }
}

/// Every way reading or writing a checkpoint can fail.  Typed, never a
/// panic: the recovery ladder treats a bad checkpoint as one more fault to
/// step past.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Header or payload did not parse.
    Format(String),
    /// The file ends before the header's declared payload length.
    Truncated {
        /// Payload bytes the header promised.
        expected: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The payload digest does not match the header.
    BadDigest {
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the payload as read.
        got: u64,
    },
    /// The file was written by a newer format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// Header parsed but the payload is internally inconsistent
    /// (array-length mismatches).
    Inconsistent(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Format(m) => write!(f, "checkpoint format error: {m}"),
            Self::Truncated { expected, got } => {
                write!(f, "checkpoint truncated: {got} of {expected} payload bytes")
            }
            Self::BadDigest { expected, got } => write!(
                f,
                "checkpoint digest mismatch: header {expected:016x}, payload {got:016x}"
            ),
            Self::Version { found, supported } => write!(
                f,
                "checkpoint version {found} newer than supported {supported}"
            ),
            Self::Inconsistent(m) => write!(f, "checkpoint inconsistent: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl Checkpoint {
    /// Serialise to the on-disk byte format (header line + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = wire::Enc::new();
        self.encode(&mut enc);
        let payload = enc.into_bytes();
        let header = Header {
            magic: MAGIC.to_string(),
            version: self.version,
            digest: fnv1a64(&payload),
            payload_len: payload.len() as u64,
        };
        let mut out = header.to_line().into_bytes();
        out.push(b'\n');
        out.extend_from_slice(&payload);
        out
    }

    /// Parse and validate the on-disk byte format.
    ///
    /// Validation order matters: version is checked first (a future
    /// format may legitimately change the digest scheme), then length,
    /// then digest, and only then is the payload parsed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| CkptError::Format("missing header line".into()))?;
        let line = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| CkptError::Format("header line is not UTF-8".into()))?;
        let header = Header::parse(line)?;
        if header.magic != MAGIC {
            return Err(CkptError::Format(format!(
                "bad magic {:?} (expected {MAGIC:?})",
                header.magic
            )));
        }
        if header.version > CKPT_VERSION {
            return Err(CkptError::Version {
                found: header.version,
                supported: CKPT_VERSION,
            });
        }
        let payload = &bytes[nl + 1..];
        if (payload.len() as u64) != header.payload_len {
            return Err(CkptError::Truncated {
                expected: header.payload_len,
                got: payload.len() as u64,
            });
        }
        let got = fnv1a64(payload);
        if got != header.digest {
            return Err(CkptError::BadDigest {
                expected: header.digest,
                got,
            });
        }
        let mut dec = wire::Dec::new(payload);
        let ckpt = Checkpoint::decode(&mut dec)
            .and_then(|c| dec.finish().map(|()| c))
            .map_err(|e| CkptError::Format(format!("bad payload: {e}")))?;
        if !ckpt.integrator.is_consistent() {
            return Err(CkptError::Inconsistent(format!(
                "per-particle arrays do not all have length {}",
                ckpt.integrator.n
            )));
        }
        Ok(ckpt)
    }

    /// Write to a file (atomically enough for a single writer: the full
    /// byte image is assembled in memory first).
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read and validate a file.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        let mut bytes = Vec::new();
        BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{IntegratorState, RunStatState, TraceState};

    fn sample(n: usize) -> Checkpoint {
        let v3 = |k: usize| [bits(k as f64), bits(-0.5), bits(f64::MIN_POSITIVE)];
        Checkpoint {
            version: CKPT_VERSION,
            label: "test run".into(),
            blockstep: 41,
            engine: None,
            integrator: IntegratorState {
                t: bits(0.25),
                eps: bits(0.015625),
                n,
                mass: (0..n).map(|k| bits(1.0 / (k + 1) as f64)).collect(),
                pos: (0..n).map(v3).collect(),
                vel: (0..n).map(v3).collect(),
                acc: (0..n).map(v3).collect(),
                jerk: (0..n).map(v3).collect(),
                snap: (0..n).map(v3).collect(),
                crackle: (0..n).map(v3).collect(),
                pot: (0..n).map(|_| bits(-1.25)).collect(),
                t_last: (0..n).map(|_| bits(0.25)).collect(),
                dt: (0..n).map(|_| bits(0.0078125)).collect(),
                stats: RunStatState {
                    dt_min: bits(f64::INFINITY),
                    ..Default::default()
                },
            },
            net: Vec::new(),
            trace: TraceState::default(),
        }
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let c = sample(5);
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        // The +inf sentinel survived (JSON would have mangled it).
        assert_eq!(unbits(back.integrator.stats.dt_min), f64::INFINITY);
    }

    #[test]
    fn file_roundtrip() {
        let c = sample(3);
        let dir = std::env::temp_dir().join("grape6_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        c.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let bytes = sample(4).to_bytes();
        // Cut anywhere inside the payload: always Truncated, never a panic.
        for cut in [bytes.len() - 1, bytes.len() - 100, bytes.len() / 2] {
            match Checkpoint::from_bytes(&bytes[..cut]) {
                Err(CkptError::Truncated { expected, got }) => assert!(got < expected),
                // A cut through the header line loses the newline.
                Err(CkptError::Format(_)) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_payload_is_a_bad_digest_error() {
        let mut bytes = sample(4).to_bytes();
        let n = bytes.len();
        bytes[n - 10] ^= 0x40; // flip a bit well inside the payload
        match Checkpoint::from_bytes(&bytes) {
            Err(CkptError::BadDigest { expected, got }) => assert_ne!(expected, got),
            other => panic!("expected BadDigest, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let mut c = sample(2);
        c.version = CKPT_VERSION + 7;
        match Checkpoint::from_bytes(&c.to_bytes()) {
            Err(CkptError::Version { found, supported }) => {
                assert_eq!(found, CKPT_VERSION + 7);
                assert_eq!(supported, CKPT_VERSION);
            }
            other => panic!("expected Version, got {other:?}"),
        }
    }

    #[test]
    fn v1_files_still_load_with_zero_step_retries() {
        // Encoding honours the declared version, so a v1-stamped
        // checkpoint produces genuine v1 bytes (no step_retries field) —
        // exactly what a pre-v2 build wrote.
        let mut c = sample(3);
        c.version = 1;
        c.integrator.stats.recovery.step_retries = 99; // dropped by v1 encode
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.integrator.stats.recovery.step_retries, 0);
        // Everything else survives untouched.
        assert_eq!(back.integrator.pos, c.integrator.pos);
        assert_eq!(
            back.integrator.stats.recovery.checkpoints_taken,
            c.integrator.stats.recovery.checkpoints_taken
        );
    }

    #[test]
    fn v2_roundtrips_step_retries() {
        let mut c = sample(3);
        c.integrator.stats.recovery.step_retries = 7;
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.integrator.stats.recovery.step_retries, 7);
        assert_eq!(back, c);
    }

    #[test]
    fn garbage_is_a_format_error_not_a_panic() {
        for garbage in [
            &b""[..],
            &b"not a checkpoint"[..],
            &b"{\"magic\":\"WRONG\",\"version\":1,\"digest\":0,\"payload_len\":0}\n"[..],
            &b"\n\n\n"[..],
        ] {
            match Checkpoint::from_bytes(garbage) {
                Err(CkptError::Format(_)) | Err(CkptError::Truncated { .. }) => {}
                other => panic!("expected Format/Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn inconsistent_arrays_are_rejected() {
        let mut c = sample(4);
        c.integrator.dt.pop();
        let bytes = c.to_bytes();
        match Checkpoint::from_bytes(&bytes) {
            Err(CkptError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_name_the_failure() {
        let e = CkptError::BadDigest {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("digest mismatch"));
        let e = CkptError::Version {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}
