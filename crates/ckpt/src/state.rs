//! The checkpoint data model.
//!
//! Plain structs with **no dependency on the crates whose state they
//! capture** — `grape6-core`, `grape6-net` and friends convert their live
//! state into these records and back.  Every `f64` is stored as its
//! IEEE-754 bit pattern (`u64`): the restore guarantee is *bitwise*
//! identity, so nothing may pass through a decimal representation, and
//! values like the `dt_min = +inf` sentinel survive unharmed.  The
//! encoding itself is the hand-rolled little-endian layout of [`wire`](crate::wire).

use crate::wire::{Dec, Enc, WireError};

/// Encode an `f64` as its bit pattern.
#[inline]
pub fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Decode an `f64` from its bit pattern.
#[inline]
pub fn unbits(b: u64) -> f64 {
    f64::from_bits(b)
}

/// Encode a 3-vector of `f64` as bit patterns.
#[inline]
pub fn bits3(v: [f64; 3]) -> [u64; 3] {
    [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()]
}

/// Decode a 3-vector of `f64` from bit patterns.
#[inline]
pub fn unbits3(b: [u64; 3]) -> [f64; 3] {
    [
        f64::from_bits(b[0]),
        f64::from_bits(b[1]),
        f64::from_bits(b[2]),
    ]
}

/// The complete state of one run, as written to disk.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Format version (mirrors the header; kept in the payload so the
    /// payload is self-describing on its own).
    pub version: u32,
    /// Free-form run label.
    pub label: String,
    /// Blocksteps completed when the checkpoint was taken.
    pub blockstep: u64,
    /// Engine state (present for hardware-simulator runs).
    pub engine: Option<EngineState>,
    /// Integrator state: particles, time, run statistics.
    pub integrator: IntegratorState,
    /// Per-rank network endpoint counters (empty for single-host runs).
    pub net: Vec<NetEndpointState>,
    /// Tracer phase: the virtual-time cursor and whether tracing was
    /// active, so a resumed trace continues where the old one stopped.
    pub trace: TraceState,
}

impl Checkpoint {
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.u32(self.version);
        e.str(&self.label);
        e.u64(self.blockstep);
        match &self.engine {
            None => e.bool(false),
            Some(es) => {
                e.bool(true);
                es.encode(e);
            }
        }
        // The payload's leading version drives which layout the
        // version-evolved records use, both ways: a checkpoint loaded
        // from a v1 file re-encodes as genuine v1 bytes.
        self.integrator.encode(e, self.version);
        e.size(self.net.len());
        for n in &self.net {
            n.encode(e);
        }
        self.trace.encode(e);
    }

    pub(crate) fn decode(d: &mut Dec) -> Result<Self, WireError> {
        let version = d.u32()?;
        Ok(Self {
            version,
            label: d.str()?,
            blockstep: d.u64()?,
            engine: if d.bool()? {
                Some(EngineState::decode(d)?)
            } else {
                None
            },
            integrator: IntegratorState::decode(d, version)?,
            net: {
                let len = d.size()?;
                (0..len)
                    .map(|_| NetEndpointState::decode(d))
                    .collect::<Result<_, _>>()?
            },
            trace: TraceState::decode(d)?,
        })
    }
}

/// `Grape6Engine` internals that shape subsequent arithmetic.
///
/// The hardware itself is *not* serialised: it is reconstructed from the
/// machine configuration and the fault plan (both deterministic), the
/// masked-unit set below is re-applied, and the j-memory is reloaded from
/// the particle state — the §3.4 block-FP property makes the refreshed
/// partitioning bitwise invisible.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineState {
    /// Machine fingerprint `(boards, modules/board, chips/module, jmem)`
    /// — restore refuses a mismatched machine.
    pub machine: (usize, usize, usize, usize),
    /// Seed of the fault plan in force (0 for hand-written plans).
    pub plan_seed: u64,
    /// j-slots the engine was built for.
    pub n_slots: usize,
    /// Running magnitude estimates (acc, jerk, pot) — these drive the
    /// block-FP exponent windows, so they are bitwise-critical.
    pub mag: [u64; 3],
    /// Exponent-retry count so far.
    pub retries: u64,
    /// Engine system time (bit pattern).
    pub time: u64,
    /// Compute chunks completed — the clock scheduled deaths run on.
    pub pass: u64,
    /// Hardware ensemble pass counter (includes self-test and retry
    /// passes) — the clock transient reduction glitches run on.
    pub hw_passes: u64,
    /// Scheduled deaths not yet applied.
    pub pending_deaths: Vec<(Vec<usize>, u64)>,
    /// Every unit masked so far (self-test and mid-run).
    pub masked: Vec<Vec<usize>>,
    /// Fault counters at capture.
    pub counters: FaultCounterState,
    /// Virtual-time cursor of the engine's span timeline (bit pattern).
    pub vt: u64,
}

impl EngineState {
    fn encode(&self, e: &mut Enc) {
        e.size(self.machine.0);
        e.size(self.machine.1);
        e.size(self.machine.2);
        e.size(self.machine.3);
        e.u64(self.plan_seed);
        e.size(self.n_slots);
        e.seq_u64(&self.mag);
        e.u64(self.retries);
        e.u64(self.time);
        e.u64(self.pass);
        e.u64(self.hw_passes);
        e.size(self.pending_deaths.len());
        for (path, at) in &self.pending_deaths {
            e.seq_size(path);
            e.u64(*at);
        }
        e.size(self.masked.len());
        for path in &self.masked {
            e.seq_size(path);
        }
        self.counters.encode(e);
        e.u64(self.vt);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            machine: (d.size()?, d.size()?, d.size()?, d.size()?),
            plan_seed: d.u64()?,
            n_slots: d.size()?,
            mag: {
                let v = d.seq_u64()?;
                v.try_into().map_err(|_| WireError::Oversize)?
            },
            retries: d.u64()?,
            time: d.u64()?,
            pass: d.u64()?,
            hw_passes: d.u64()?,
            pending_deaths: {
                let len = d.size()?;
                (0..len)
                    .map(|_| Ok((d.seq_size()?, d.u64()?)))
                    .collect::<Result<_, WireError>>()?
            },
            masked: {
                let len = d.size()?;
                (0..len).map(|_| d.seq_size()).collect::<Result<_, _>>()?
            },
            counters: FaultCounterState::decode(d)?,
            vt: d.u64()?,
        })
    }
}

/// Mirror of `grape6_fault::FaultCounters`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounterState {
    /// Units that failed the startup self-test.
    pub selftest_failures: u64,
    /// Units masked out of service.
    pub units_masked: u64,
    /// Scheduled mid-run deaths applied.
    pub scheduled_deaths: u64,
    /// Transient reduction glitches recovered from.
    pub reduction_glitches: u64,
    /// Sanity-screen recomputes.
    pub sanity_recomputes: u64,
    /// Exponent-overflow retries.
    pub exponent_retries: u64,
}

impl FaultCounterState {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.selftest_failures);
        e.u64(self.units_masked);
        e.u64(self.scheduled_deaths);
        e.u64(self.reduction_glitches);
        e.u64(self.sanity_recomputes);
        e.u64(self.exponent_retries);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            selftest_failures: d.u64()?,
            units_masked: d.u64()?,
            scheduled_deaths: d.u64()?,
            reduction_glitches: d.u64()?,
            sanity_recomputes: d.u64()?,
            exponent_retries: d.u64()?,
        })
    }
}

/// Full Hermite integrator state.
#[derive(Clone, Debug, PartialEq)]
pub struct IntegratorState {
    /// System time (bit pattern).
    pub t: u64,
    /// Softening length in force (bit pattern) — a restore consistency
    /// guard, since ε is re-derived from the integrator configuration.
    pub eps: u64,
    /// Particle count.
    pub n: usize,
    /// Masses.
    pub mass: Vec<u64>,
    /// Positions.
    pub pos: Vec<[u64; 3]>,
    /// Velocities.
    pub vel: Vec<[u64; 3]>,
    /// Accelerations.
    pub acc: Vec<[u64; 3]>,
    /// Jerks.
    pub jerk: Vec<[u64; 3]>,
    /// Snaps (2nd force derivatives — the predictor's `a⁽²⁾` term).
    pub snap: Vec<[u64; 3]>,
    /// Crackles (3rd derivatives — the Aarseth criterion's input).
    pub crackle: Vec<[u64; 3]>,
    /// Potentials.
    pub pot: Vec<u64>,
    /// Per-particle times.
    pub t_last: Vec<u64>,
    /// Per-particle block timesteps.
    pub dt: Vec<u64>,
    /// Run statistics at capture.
    pub stats: RunStatState,
}

impl IntegratorState {
    /// Internal consistency: every per-particle array has length `n`.
    pub fn is_consistent(&self) -> bool {
        let n = self.n;
        self.mass.len() == n
            && self.pos.len() == n
            && self.vel.len() == n
            && self.acc.len() == n
            && self.jerk.len() == n
            && self.snap.len() == n
            && self.crackle.len() == n
            && self.pot.len() == n
            && self.t_last.len() == n
            && self.dt.len() == n
    }

    fn encode(&self, e: &mut Enc, version: u32) {
        e.u64(self.t);
        e.u64(self.eps);
        e.size(self.n);
        e.seq_u64(&self.mass);
        e.seq_u64x3(&self.pos);
        e.seq_u64x3(&self.vel);
        e.seq_u64x3(&self.acc);
        e.seq_u64x3(&self.jerk);
        e.seq_u64x3(&self.snap);
        e.seq_u64x3(&self.crackle);
        e.seq_u64(&self.pot);
        e.seq_u64(&self.t_last);
        e.seq_u64(&self.dt);
        self.stats.encode(e, version);
    }

    fn decode(d: &mut Dec, version: u32) -> Result<Self, WireError> {
        Ok(Self {
            t: d.u64()?,
            eps: d.u64()?,
            n: d.size()?,
            mass: d.seq_u64()?,
            pos: d.seq_u64x3()?,
            vel: d.seq_u64x3()?,
            acc: d.seq_u64x3()?,
            jerk: d.seq_u64x3()?,
            snap: d.seq_u64x3()?,
            crackle: d.seq_u64x3()?,
            pot: d.seq_u64()?,
            t_last: d.seq_u64()?,
            dt: d.seq_u64()?,
            stats: RunStatState::decode(d, version)?,
        })
    }
}

/// Mirror of `grape6_core::RunStats` (scalars as bit patterns where f64).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStatState {
    /// Individual particle steps.
    pub particle_steps: u64,
    /// Blocksteps executed.
    pub blocksteps: u64,
    /// Largest block seen.
    pub max_block: u64,
    /// Block-size histogram (powers of two).
    pub block_hist: Vec<u64>,
    /// Smallest block spacing (bit pattern; starts at +inf).
    pub dt_min: u64,
    /// Largest block spacing (bit pattern).
    pub dt_max: u64,
    /// Fault counters mirrored from the engine.
    pub faults: FaultCounterState,
    /// Recovery counters (checkpoints, restores, remasks, ladder costs).
    pub recovery: RecoveryState,
}

impl RunStatState {
    fn encode(&self, e: &mut Enc, version: u32) {
        e.u64(self.particle_steps);
        e.u64(self.blocksteps);
        e.u64(self.max_block);
        e.seq_u64(&self.block_hist);
        e.u64(self.dt_min);
        e.u64(self.dt_max);
        self.faults.encode(e);
        self.recovery.encode(e, version);
    }

    fn decode(d: &mut Dec, version: u32) -> Result<Self, WireError> {
        Ok(Self {
            particle_steps: d.u64()?,
            blocksteps: d.u64()?,
            max_block: d.u64()?,
            block_hist: d.seq_u64()?,
            dt_min: d.u64()?,
            dt_max: d.u64()?,
            faults: FaultCounterState::decode(d)?,
            recovery: RecoveryState::decode(d, version)?,
        })
    }
}

/// Mirror of `grape6_core::stats::RecoveryStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryState {
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Restores from checkpoint.
    pub restores: u64,
    /// Mid-run re-self-tests.
    pub reselftests: u64,
    /// Mirror-based j-redistributions.
    pub redistributions: u64,
    /// Virtual seconds charged to recovery work (bit pattern).
    pub recovery_seconds: u64,
    /// Plain blockstep recomputes (ladder rung 1).  Format v2; a v1
    /// payload decodes as 0, and a checkpoint re-encoded as v1 drops it.
    pub step_retries: u64,
}

impl RecoveryState {
    fn encode(&self, e: &mut Enc, version: u32) {
        e.u64(self.checkpoints_taken);
        e.u64(self.restores);
        e.u64(self.reselftests);
        e.u64(self.redistributions);
        e.u64(self.recovery_seconds);
        if version >= 2 {
            e.u64(self.step_retries);
        }
    }

    fn decode(d: &mut Dec, version: u32) -> Result<Self, WireError> {
        Ok(Self {
            checkpoints_taken: d.u64()?,
            restores: d.u64()?,
            reselftests: d.u64()?,
            redistributions: d.u64()?,
            recovery_seconds: d.u64()?,
            step_retries: if version >= 2 { d.u64()? } else { 0 },
        })
    }
}

/// One rank's endpoint counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetEndpointState {
    /// Rank id.
    pub rank: usize,
    /// Virtual clock at capture (bit pattern).
    pub clock: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Retransmissions observed.
    pub retransmits: u64,
    /// Attempts lost to drops.
    pub dropped_attempts: u64,
    /// Attempts lost to corruption.
    pub corrupt_attempts: u64,
    /// Delayed deliveries.
    pub delayed_messages: u64,
    /// Retry budgets exhausted.
    pub timeouts: u64,
    /// Backoff seconds charged (bit pattern).
    pub backoff_seconds: u64,
}

impl NetEndpointState {
    fn encode(&self, e: &mut Enc) {
        e.size(self.rank);
        e.u64(self.clock);
        e.u64(self.bytes_sent);
        e.u64(self.messages_sent);
        e.u64(self.messages_received);
        e.u64(self.retransmits);
        e.u64(self.dropped_attempts);
        e.u64(self.corrupt_attempts);
        e.u64(self.delayed_messages);
        e.u64(self.timeouts);
        e.u64(self.backoff_seconds);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            rank: d.size()?,
            clock: d.u64()?,
            bytes_sent: d.u64()?,
            messages_sent: d.u64()?,
            messages_received: d.u64()?,
            retransmits: d.u64()?,
            dropped_attempts: d.u64()?,
            corrupt_attempts: d.u64()?,
            delayed_messages: d.u64()?,
            timeouts: d.u64()?,
            backoff_seconds: d.u64()?,
        })
    }
}

/// Tracer phase carried across a restart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceState {
    /// Virtual-time cursor (bit pattern).
    pub vt: u64,
    /// Whether span recording was active.
    pub active: bool,
}

impl TraceState {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.vt);
        e.bool(self.active);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            vt: d.u64()?,
            active: d.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_encoding_roundtrips_everything_json_cannot() {
        for x in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, 1e-308] {
            assert_eq!(unbits(bits(x)).to_bits(), x.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(unbits(bits(nan)).to_bits(), nan.to_bits());
        let v = [1.0, f64::INFINITY, -0.0];
        let back = unbits3(bits3(v));
        for k in 0..3 {
            assert_eq!(back[k].to_bits(), v[k].to_bits());
        }
    }

    #[test]
    fn consistency_check_catches_short_arrays() {
        let mut st = IntegratorState {
            t: 0,
            eps: 0,
            n: 2,
            mass: vec![0; 2],
            pos: vec![[0; 3]; 2],
            vel: vec![[0; 3]; 2],
            acc: vec![[0; 3]; 2],
            jerk: vec![[0; 3]; 2],
            snap: vec![[0; 3]; 2],
            crackle: vec![[0; 3]; 2],
            pot: vec![0; 2],
            t_last: vec![0; 2],
            dt: vec![0; 2],
            stats: RunStatState::default(),
        };
        assert!(st.is_consistent());
        st.dt.pop();
        assert!(!st.is_consistent());
    }

    #[test]
    fn engine_state_roundtrips_through_wire() {
        let es = EngineState {
            machine: (4, 8, 4, 16384),
            plan_seed: 0xDEAD_BEEF,
            n_slots: 2048,
            mag: [bits(1.5), bits(-0.25), bits(f64::MIN_POSITIVE)],
            retries: 3,
            time: bits(0.75),
            pass: 41,
            hw_passes: 97,
            pending_deaths: vec![(vec![2, 1], 50), (vec![0], 64)],
            masked: vec![vec![1, 3, 2], vec![]],
            counters: FaultCounterState {
                selftest_failures: 1,
                units_masked: 2,
                scheduled_deaths: 3,
                reduction_glitches: 4,
                sanity_recomputes: 5,
                exponent_retries: 6,
            },
            vt: bits(12.5),
        };
        let mut e = Enc::new();
        es.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = EngineState::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, es);
    }
}
